"""The benchmark regression guard warns — never fails — on QPS regressions."""

import json
import sys
import warnings
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

from _helpers import BenchmarkRegressionWarning, compare_to_artifact  # noqa: E402


@pytest.fixture()
def reference(tmp_path):
    path = tmp_path / "compiled_inference.json"
    path.write_text(
        json.dumps({"single_query": {"speedup": 3.0}, "fleet": {"qps_improvement": 1.5}})
    )
    return path


KEYS = [("single_query", "speedup"), ("fleet", "qps_improvement")]


class TestCompareToArtifact:
    def test_warns_on_regression_beyond_tolerance(self, reference):
        report = {"single_query": {"speedup": 2.0}, "fleet": {"qps_improvement": 1.6}}
        with pytest.warns(BenchmarkRegressionWarning, match="single_query.speedup"):
            messages = compare_to_artifact(report, reference, KEYS, tolerance=0.2)
        assert len(messages) == 1  # fleet improved, only the speedup warns

    def test_silent_within_tolerance(self, reference):
        report = {"single_query": {"speedup": 2.7}, "fleet": {"qps_improvement": 1.3}}
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert compare_to_artifact(report, reference, KEYS, tolerance=0.2) == []

    def test_missing_reference_is_silent(self, tmp_path):
        report = {"single_query": {"speedup": 0.1}}
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert compare_to_artifact(report, tmp_path / "nope.json", KEYS) == []

    def test_missing_keys_are_skipped(self, reference):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert compare_to_artifact({}, reference, KEYS) == []

    def test_never_raises_only_warns(self, reference):
        """A regression emits a warning, not an exception — red builds are
        reserved for correctness, not machine-dependent timings."""
        report = {"single_query": {"speedup": 0.01}, "fleet": {"qps_improvement": 0.01}}
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            messages = compare_to_artifact(report, reference, KEYS)
        assert len(messages) == 2
        assert all(issubclass(w.category, BenchmarkRegressionWarning) for w in caught)
