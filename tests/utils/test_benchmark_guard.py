"""The benchmark regression gate: warn in the soft band, fail past the hard
gate, escape hatch via ``REPRO_ALLOW_REGRESSION``."""

import json
import sys
import warnings
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

from _helpers import (  # noqa: E402
    BenchmarkRegressionError,
    BenchmarkRegressionWarning,
    compare_to_artifact,
)


@pytest.fixture()
def reference(tmp_path):
    path = tmp_path / "compiled_inference.json"
    path.write_text(
        json.dumps({"single_query": {"speedup": 3.0}, "fleet": {"qps_improvement": 1.5}})
    )
    return path


KEYS = [("single_query", "speedup"), ("fleet", "qps_improvement")]


class TestCompareToArtifact:
    def test_warns_on_regression_beyond_tolerance(self, reference):
        # 2.2/3.0 is a 27% drop: over the 20% warn line, under the 30% gate.
        report = {"single_query": {"speedup": 2.2}, "fleet": {"qps_improvement": 1.6}}
        with pytest.warns(BenchmarkRegressionWarning, match="single_query.speedup"):
            messages = compare_to_artifact(report, reference, KEYS, tolerance=0.2)
        assert len(messages) == 1  # fleet improved, only the speedup warns

    def test_silent_within_tolerance(self, reference):
        report = {"single_query": {"speedup": 2.7}, "fleet": {"qps_improvement": 1.3}}
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert compare_to_artifact(report, reference, KEYS, tolerance=0.2) == []

    def test_missing_reference_is_silent(self, tmp_path):
        report = {"single_query": {"speedup": 0.1}}
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert compare_to_artifact(report, tmp_path / "nope.json", KEYS) == []

    def test_missing_keys_are_skipped(self, reference):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert compare_to_artifact({}, reference, KEYS) == []

    def test_hard_gate_fails_deliberate_regression(self, reference, monkeypatch):
        """A >30% smoke regression is a red build, not a log line."""
        monkeypatch.delenv("REPRO_ALLOW_REGRESSION", raising=False)
        report = {"single_query": {"speedup": 1.0}, "fleet": {"qps_improvement": 1.5}}
        with pytest.raises(BenchmarkRegressionError, match="single_query.speedup"):
            compare_to_artifact(report, reference, KEYS)

    def test_hard_gate_reports_every_failed_metric(self, reference, monkeypatch):
        monkeypatch.delenv("REPRO_ALLOW_REGRESSION", raising=False)
        report = {"single_query": {"speedup": 0.1}, "fleet": {"qps_improvement": 0.1}}
        with pytest.raises(BenchmarkRegressionError) as excinfo:
            compare_to_artifact(report, reference, KEYS)
        assert "single_query.speedup" in str(excinfo.value)
        assert "fleet.qps_improvement" in str(excinfo.value)

    def test_hard_gate_is_an_assertion_error(self, reference, monkeypatch):
        """pytest and plain ``assert``-aware tooling both see a failure."""
        monkeypatch.delenv("REPRO_ALLOW_REGRESSION", raising=False)
        assert issubclass(BenchmarkRegressionError, AssertionError)

    def test_escape_hatch_demotes_failure_to_warning(self, reference, monkeypatch):
        monkeypatch.setenv("REPRO_ALLOW_REGRESSION", "1")
        report = {"single_query": {"speedup": 1.0}, "fleet": {"qps_improvement": 1.5}}
        with pytest.warns(BenchmarkRegressionWarning, match="single_query.speedup"):
            messages = compare_to_artifact(report, reference, KEYS)
        assert len(messages) == 1

    def test_soft_band_never_raises(self, reference, monkeypatch):
        """Between the warn line and the hard gate the build stays green —
        that band absorbs shared-runner timing noise."""
        monkeypatch.delenv("REPRO_ALLOW_REGRESSION", raising=False)
        report = {"single_query": {"speedup": 2.2}, "fleet": {"qps_improvement": 1.2}}
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            messages = compare_to_artifact(report, reference, KEYS)
        assert len(messages) == 2
        assert all(issubclass(w.category, BenchmarkRegressionWarning) for w in caught)

    def test_custom_fail_tolerance(self, reference, monkeypatch):
        monkeypatch.delenv("REPRO_ALLOW_REGRESSION", raising=False)
        report = {"single_query": {"speedup": 2.2}, "fleet": {"qps_improvement": 1.5}}
        with pytest.raises(BenchmarkRegressionError):
            compare_to_artifact(report, reference, KEYS, tolerance=0.1, fail_tolerance=0.15)

    def test_fail_tolerance_tighter_than_warn_tolerance_still_gates(
        self, reference, monkeypatch
    ):
        """The thresholds act independently: a hard gate tighter than the
        warn band must still fail (an 18% drop vs fail_tolerance=0.15)."""
        monkeypatch.delenv("REPRO_ALLOW_REGRESSION", raising=False)
        report = {"single_query": {"speedup": 2.46}, "fleet": {"qps_improvement": 1.5}}
        with pytest.raises(BenchmarkRegressionError, match="single_query.speedup"):
            compare_to_artifact(report, reference, KEYS, tolerance=0.2, fail_tolerance=0.15)
