"""Utilities: seeded RNG, registry, run log, tables."""

import numpy as np
import pytest

from repro.utils import Registry, RunLog, SeedBank, format_float, format_table


class TestSeedBank:
    def test_same_name_same_stream(self):
        bank = SeedBank(3)
        a = bank.child("data").random(5)
        b = bank.child("data").random(5)
        assert np.allclose(a, b)

    def test_different_names_differ(self):
        bank = SeedBank(3)
        assert not np.allclose(bank.child("a").random(5), bank.child("b").random(5))

    def test_different_seeds_differ(self):
        a = SeedBank(1).child("x").random(5)
        b = SeedBank(2).child("x").random(5)
        assert not np.allclose(a, b)

    def test_spawn_count(self):
        assert len(SeedBank(0).spawn(4)) == 4

    def test_spawned_streams_independent(self):
        rngs = SeedBank(0).spawn(2)
        assert not np.allclose(rngs[0].random(5), rngs[1].random(5))


class TestRegistry:
    def test_register_and_get(self):
        reg = Registry("widget")

        @reg.register("a")
        def make_a():
            return "A"

        assert reg.get("a")() == "A"
        assert "a" in reg

    def test_duplicate_rejected(self):
        reg = Registry("widget")
        reg.register("x")(lambda: None)
        with pytest.raises(KeyError):
            reg.register("x")(lambda: None)

    def test_unknown_lists_known(self):
        reg = Registry("widget")
        reg.register("alpha")(lambda: None)
        with pytest.raises(KeyError, match="alpha"):
            reg.get("beta")

    def test_iteration_sorted(self):
        reg = Registry("widget")
        reg.register("b")(lambda: None)
        reg.register("a")(lambda: None)
        assert list(reg) == ["a", "b"]
        assert reg.names() == ["a", "b"]


class TestRunLog:
    def test_records_series(self):
        log = RunLog()
        log.log(1, loss=0.5)
        log.log(2, loss=0.25)
        assert log.series("loss") == [0.5, 0.25]
        assert log.last("loss") == 0.25
        assert len(log) == 2

    def test_missing_key(self):
        log = RunLog()
        log.log(1, loss=0.5)
        assert log.last("accuracy") is None
        assert log.series("accuracy") == []

    def test_echo(self, capsys):
        import sys

        log = RunLog(name="t", echo_every=1, stream=sys.stderr)
        log.log(1, loss=0.5)
        assert "loss=0.5" in capsys.readouterr().err


class TestTables:
    def test_format_float(self):
        assert format_float(0.84591) == "0.8459"
        assert format_float(None) == "-"
        assert format_float(1.0, digits=2) == "1.00"

    def test_table_alignment(self):
        text = format_table(["model", "auc"], [["dnn", "0.82"], ["aw_moe", "0.85"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].index("auc") == lines[2].index("0.82")

    def test_title_included(self):
        text = format_table(["a"], [["1"]], title="Table II")
        assert text.startswith("Table II")

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["1"]])
