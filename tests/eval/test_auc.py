"""AUC metrics (Eq. 12): hand-computed cases and properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.eval import binary_auc, global_auc, session_auc, session_auc_at_k

settings.register_profile("ci", deadline=None, max_examples=30)
settings.load_profile("ci")


class TestBinaryAUC:
    def test_perfect_ranking(self):
        assert binary_auc(np.array([0.9, 0.8, 0.2, 0.1]), np.array([1, 1, 0, 0])) == 1.0

    def test_inverted_ranking(self):
        assert binary_auc(np.array([0.1, 0.9]), np.array([1, 0])) == 0.0

    def test_mixed_pairs(self):
        # Pairs: (0.5 vs 0.4) win, (0.5 vs 0.6) loss, (0.3 vs both) losses.
        auc = binary_auc(np.array([0.5, 0.4, 0.6, 0.3]), np.array([1, 0, 0, 1]))
        assert auc == pytest.approx(0.25)

    def test_ties_count_half(self):
        auc = binary_auc(np.array([0.5, 0.5]), np.array([1, 0]))
        assert auc == pytest.approx(0.5)

    def test_single_class_returns_none(self):
        assert binary_auc(np.array([0.5, 0.4]), np.array([1, 1])) is None
        assert binary_auc(np.array([0.5, 0.4]), np.array([0, 0])) is None

    def test_matches_pairwise_definition(self):
        rng = np.random.default_rng(0)
        scores = rng.random(30)
        labels = (rng.random(30) < 0.4).astype(int)
        pos = scores[labels == 1]
        neg = scores[labels == 0]
        wins = sum((p > n) + 0.5 * (p == n) for p in pos for n in neg)
        expected = wins / (len(pos) * len(neg))
        assert binary_auc(scores, labels) == pytest.approx(expected)

    @given(st.integers(2, 40))
    def test_monotone_transform_invariance(self, n):
        rng = np.random.default_rng(n)
        scores = rng.random(n)
        labels = np.zeros(n)
        labels[: max(1, n // 3)] = 1
        rng.shuffle(labels)
        if labels.min() == labels.max():
            return
        a = binary_auc(scores, labels)
        b = binary_auc(np.exp(3 * scores), labels)
        assert a == pytest.approx(b)


class TestSessionAUC:
    def test_averages_over_sessions(self):
        scores = np.array([0.9, 0.1, 0.1, 0.9])
        labels = np.array([1, 0, 1, 0])
        sessions = np.array([0, 0, 1, 1])
        # session 0 perfect (1.0), session 1 inverted (0.0)
        assert session_auc(scores, labels, sessions) == pytest.approx(0.5)

    def test_skips_single_class_sessions(self):
        scores = np.array([0.9, 0.1, 0.5, 0.6])
        labels = np.array([1, 0, 1, 1])
        sessions = np.array([0, 0, 1, 1])
        assert session_auc(scores, labels, sessions) == pytest.approx(1.0)

    def test_all_single_class_raises(self):
        with pytest.raises(ValueError):
            session_auc(np.array([0.5, 0.6]), np.array([1, 1]), np.array([0, 0]))

    def test_unsorted_session_ids(self):
        scores = np.array([0.9, 0.7, 0.1, 0.6])
        labels = np.array([1, 1, 0, 0])
        sessions = np.array([3, 7, 3, 7])
        # Session 3: 0.9 (pos) vs 0.1 (neg); session 7: 0.7 (pos) vs 0.6 (neg).
        assert session_auc(scores, labels, sessions) == pytest.approx(1.0)


class TestAUCAtK:
    def test_equals_full_auc_when_k_covers_session(self):
        rng = np.random.default_rng(1)
        scores = rng.random(8)
        labels = np.array([1, 0, 1, 0, 1, 0, 0, 0])
        sessions = np.zeros(8)
        full = session_auc(scores, labels, sessions)
        at_k = session_auc_at_k(scores, labels, sessions, k=8)
        assert full == pytest.approx(at_k)

    def test_restricts_to_top_k(self):
        # Top-2 contains one positive and one negative ranked correctly.
        scores = np.array([0.9, 0.8, 0.7, 0.6])
        labels = np.array([1, 0, 0, 1])
        sessions = np.zeros(4)
        assert session_auc_at_k(scores, labels, sessions, k=2) == pytest.approx(1.0)

    def test_skips_sessions_with_single_class_in_top_k(self):
        scores = np.array([0.9, 0.8, 0.1, 0.99, 0.01])
        labels = np.array([1, 1, 0, 1, 0])
        sessions = np.array([0, 0, 0, 1, 1])
        # session 0 top-2 = two positives -> skipped; session 1 perfect
        assert session_auc_at_k(scores, labels, sessions, k=2) == pytest.approx(1.0)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            session_auc_at_k(np.ones(3), np.array([1, 0, 1]), np.zeros(3), k=1)


class TestGlobalAUC:
    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            global_auc(np.array([0.5]), np.array([1.0]))

    def test_value(self):
        assert global_auc(np.array([0.8, 0.3]), np.array([1, 0])) == 1.0
