"""NDCG metrics (Eq. 13)."""

import numpy as np
import pytest

from repro.eval import dcg, session_ndcg


class TestDCG:
    def test_single_relevant_at_top(self):
        assert dcg(np.array([1, 0, 0])) == pytest.approx(1.0)

    def test_discount_applied(self):
        assert dcg(np.array([0, 1])) == pytest.approx(1.0 / np.log2(3))

    def test_cutoff(self):
        assert dcg(np.array([0, 0, 1]), k=2) == 0.0

    def test_empty(self):
        assert dcg(np.array([])) == 0.0

    def test_additivity(self):
        labels = np.array([1, 1, 0, 1])
        expected = 1.0 + 1.0 / np.log2(3) + 1.0 / np.log2(5)
        assert dcg(labels) == pytest.approx(expected)


class TestSessionNDCG:
    def test_perfect_ordering_is_one(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([1, 1, 0, 0])
        assert session_ndcg(scores, labels, np.zeros(4)) == pytest.approx(1.0)

    def test_worst_ordering_below_one(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([1, 1, 0, 0])
        value = session_ndcg(scores, labels, np.zeros(4))
        assert 0 < value < 1

    def test_averaged_over_sessions(self):
        scores = np.array([0.9, 0.1, 0.1, 0.9])
        labels = np.array([1, 0, 1, 0])
        sessions = np.array([0, 0, 1, 1])
        perfect = 1.0
        inverted = (1.0 / np.log2(3)) / 1.0
        assert session_ndcg(scores, labels, sessions) == pytest.approx((perfect + inverted) / 2)

    def test_cutoff_changes_value(self):
        scores = np.array([0.9, 0.8, 0.7, 0.1])
        labels = np.array([0, 0, 0, 1])
        sessions = np.zeros(4)
        full = session_ndcg(scores, labels, sessions)
        at2 = session_ndcg(scores, labels, sessions, k=2)
        assert at2 == 0.0
        assert full > 0.0

    def test_sessions_without_positives_skipped(self):
        scores = np.array([0.9, 0.1, 0.3, 0.2])
        labels = np.array([1, 0, 0, 0])
        sessions = np.array([0, 0, 1, 1])
        assert session_ndcg(scores, labels, sessions) == pytest.approx(1.0)

    def test_all_sessions_without_positives_raise(self):
        with pytest.raises(ValueError):
            session_ndcg(np.array([0.5, 0.6]), np.array([0, 0]), np.zeros(2))

    def test_ndcg_at_10_on_long_session(self):
        rng = np.random.default_rng(2)
        scores = rng.random(30)
        labels = (rng.random(30) < 0.3).astype(float)
        value = session_ndcg(scores, labels, np.zeros(30), k=10)
        assert 0.0 <= value <= 1.0
