"""Expert-utilization statistics."""

import numpy as np
import pytest

from repro.eval.experts import (
    dominant_expert_share,
    expert_usage_by_group,
    gate_entropy,
    routing_divergence,
)


class TestGateEntropy:
    def test_one_hot_routing_zero_entropy(self):
        gates = np.eye(4)[np.array([0, 1, 2, 3, 0])]
        assert gate_entropy(gates) == pytest.approx(0.0, abs=1e-6)

    def test_uniform_routing_max_entropy(self):
        gates = np.ones((10, 4))
        assert gate_entropy(gates) == pytest.approx(1.0, abs=1e-6)

    def test_unnormalized_value_in_nats(self):
        gates = np.ones((5, 4))
        assert gate_entropy(gates, normalize=False) == pytest.approx(np.log(4), abs=1e-6)

    def test_between_bounds(self):
        rng = np.random.default_rng(0)
        gates = rng.random((50, 6))
        assert 0.0 <= gate_entropy(gates) <= 1.0


class TestDominantShare:
    def test_sums_to_one(self):
        rng = np.random.default_rng(1)
        share = dominant_expert_share(rng.random((100, 4)))
        assert share.sum() == pytest.approx(1.0)

    def test_identifies_dominant(self):
        gates = np.zeros((10, 3))
        gates[:, 2] = 1.0
        share = dominant_expert_share(gates)
        assert share[2] == 1.0

    def test_includes_unused_experts(self):
        gates = np.zeros((4, 5))
        gates[:, 0] = 1.0
        assert dominant_expert_share(gates).shape == (5,)


class TestGroupUsage:
    def test_groups_partition(self):
        rng = np.random.default_rng(2)
        gates = rng.random((40, 4))
        groups = np.repeat([0, 1], 20)
        usage = expert_usage_by_group(gates, groups)
        assert set(usage) == {0, 1}
        for dist in usage.values():
            assert dist.sum() == pytest.approx(1.0, abs=1e-6)

    def test_divergence_zero_for_identical_groups(self):
        gates = np.tile(np.array([[1.0, 2.0, 3.0, 4.0]]), (20, 1))
        groups = np.repeat([0, 1], 10)
        assert routing_divergence(gates, groups) == pytest.approx(0.0, abs=1e-9)

    def test_divergence_positive_for_distinct_groups(self):
        gates = np.zeros((20, 2))
        gates[:10, 0] = 1.0
        gates[10:, 1] = 1.0
        groups = np.repeat([0, 1], 10)
        assert routing_divergence(gates, groups) > 0.4

    def test_constant_rows_become_uniform(self):
        gates = np.full((6, 4), 2.5)
        usage = expert_usage_by_group(gates, np.zeros(6))
        assert np.allclose(usage[0], 0.25)
