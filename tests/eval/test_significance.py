"""Bootstrap and z-test significance machinery."""

import numpy as np
import pytest

from repro.eval import paired_bootstrap_pvalue, session_metric_samples, two_proportion_z_test


def _synthetic_scores(n_sessions=60, per_session=8, quality=2.0, seed=0):
    """Scores correlating with labels at the given quality (higher = better)."""
    rng = np.random.default_rng(seed)
    labels = (rng.random(n_sessions * per_session) < 0.3).astype(float)
    sessions = np.repeat(np.arange(n_sessions), per_session)
    scores = quality * labels + rng.normal(0, 1, size=labels.size)
    return scores, labels, sessions


class TestSessionMetricSamples:
    def test_auc_samples_per_session(self):
        scores, labels, sessions = _synthetic_scores()
        values, ids = session_metric_samples(scores, labels, sessions, "auc")
        assert len(values) == len(ids)
        assert np.all((values >= 0) & (values <= 1))

    def test_ndcg_samples(self):
        scores, labels, sessions = _synthetic_scores()
        values, _ = session_metric_samples(scores, labels, sessions, "ndcg", k=5)
        assert np.all((values >= 0) & (values <= 1))

    def test_unknown_metric(self):
        scores, labels, sessions = _synthetic_scores()
        with pytest.raises(ValueError):
            session_metric_samples(scores, labels, sessions, "map")


class TestPairedBootstrap:
    def test_clear_improvement_is_significant(self):
        scores_bad, labels, sessions = _synthetic_scores(quality=0.3, seed=1)
        scores_good, _, _ = _synthetic_scores(quality=3.0, seed=1)
        p = paired_bootstrap_pvalue(
            scores_bad, scores_good, labels, sessions, num_resamples=300,
            rng=np.random.default_rng(2),
        )
        assert p < 0.05

    def test_no_difference_is_insignificant(self):
        scores, labels, sessions = _synthetic_scores(seed=3)
        p = paired_bootstrap_pvalue(
            scores, scores + 1e-9, labels, sessions, num_resamples=300,
            rng=np.random.default_rng(2),
        )
        assert p > 0.2

    def test_regression_has_high_pvalue(self):
        scores_good, labels, sessions = _synthetic_scores(quality=3.0, seed=4)
        scores_bad, _, _ = _synthetic_scores(quality=0.3, seed=4)
        p = paired_bootstrap_pvalue(
            scores_good, scores_bad, labels, sessions, num_resamples=300,
            rng=np.random.default_rng(2),
        )
        assert p > 0.5

    def test_pvalue_never_zero(self):
        scores_bad, labels, sessions = _synthetic_scores(quality=0.0, seed=5)
        scores_good, _, _ = _synthetic_scores(quality=10.0, seed=5)
        p = paired_bootstrap_pvalue(
            scores_bad, scores_good, labels, sessions, num_resamples=200,
            rng=np.random.default_rng(2),
        )
        assert p >= 1.0 / 201

    def test_deterministic_given_rng(self):
        scores_a, labels, sessions = _synthetic_scores(quality=1.0, seed=6)
        scores_b, _, _ = _synthetic_scores(quality=1.5, seed=6)
        p1 = paired_bootstrap_pvalue(
            scores_a, scores_b, labels, sessions, rng=np.random.default_rng(9)
        )
        p2 = paired_bootstrap_pvalue(
            scores_a, scores_b, labels, sessions, rng=np.random.default_rng(9)
        )
        assert p1 == p2


class TestTwoProportionZTest:
    def test_equal_proportions(self):
        z, p = two_proportion_z_test(50, 100, 50, 100)
        assert z == pytest.approx(0.0)
        assert p == pytest.approx(0.5)

    def test_clear_improvement(self):
        z, p = two_proportion_z_test(400, 1000, 480, 1000)
        assert z > 3
        assert p < 0.001

    def test_symmetry(self):
        z_up, _ = two_proportion_z_test(400, 1000, 480, 1000)
        z_down, _ = two_proportion_z_test(480, 1000, 400, 1000)
        assert z_up == pytest.approx(-z_down)

    def test_matches_known_value(self):
        # p1=0.5, p2=0.6, n=100 each: pooled=0.55, se=sqrt(0.55*0.45*0.02)
        z, _ = two_proportion_z_test(50, 100, 60, 100)
        expected = 0.1 / np.sqrt(0.55 * 0.45 * 0.02)
        assert z == pytest.approx(expected, rel=1e-6)

    def test_zero_totals_rejected(self):
        with pytest.raises(ValueError):
            two_proportion_z_test(0, 0, 1, 10)

    def test_degenerate_pooled_variance(self):
        z, p = two_proportion_z_test(0, 10, 0, 10)
        assert z == 0.0
        assert p == 0.5
