"""t-SNE, clustering scores, evaluator driver, GBDT importance driver."""

import numpy as np
import pytest

from repro.core import ModelConfig, build_model
from repro.eval import (
    TSNEParams,
    evaluate_ranking,
    feature_importance_by_user_group,
    fig7_user_groups,
    nearest_centroid_purity,
    predict_scores,
    silhouette_score,
    tsne,
)


def _two_blobs(n=40, gap=4.0, dim=5, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(0, 0.3, (n, dim))
    b = rng.normal(gap, 0.3, (n, dim))
    return np.vstack([a, b]), np.repeat([0, 1], n)


class TestTSNE:
    def test_output_shape(self):
        points, _ = _two_blobs(n=20)
        emb = tsne(points, TSNEParams(num_iters=80), rng=np.random.default_rng(1))
        assert emb.shape == (40, 2)

    def test_separates_blobs(self):
        points, labels = _two_blobs(n=30)
        emb = tsne(points, TSNEParams(num_iters=250), rng=np.random.default_rng(1))
        assert silhouette_score(emb, labels) > 0.5

    def test_deterministic(self):
        points, _ = _two_blobs(n=15)
        a = tsne(points, TSNEParams(num_iters=50), rng=np.random.default_rng(3))
        b = tsne(points, TSNEParams(num_iters=50), rng=np.random.default_rng(3))
        assert np.allclose(a, b)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            tsne(np.zeros((3, 2)))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TSNEParams(perplexity=0.5)
        with pytest.raises(ValueError):
            TSNEParams(num_iters=0)


class TestClusteringScores:
    def test_silhouette_separated(self):
        points, labels = _two_blobs()
        assert silhouette_score(points, labels) > 0.8

    def test_silhouette_overlapping(self):
        rng = np.random.default_rng(0)
        points = rng.normal(0, 1, (60, 3))
        labels = np.repeat([0, 1], 30)
        assert abs(silhouette_score(points, labels)) < 0.2

    def test_silhouette_single_label_rejected(self):
        with pytest.raises(ValueError):
            silhouette_score(np.zeros((4, 2)), np.zeros(4))

    def test_purity_perfect(self):
        points, labels = _two_blobs()
        assert nearest_centroid_purity(points, labels) == 1.0

    def test_purity_random_near_half(self):
        rng = np.random.default_rng(1)
        points = rng.normal(0, 1, (200, 3))
        labels = rng.integers(0, 2, 200)
        assert 0.3 < nearest_centroid_purity(points, labels) < 0.75


class TestFig7Groups:
    def test_group_assignment(self):
        lengths = np.array([0, 5, 5])
        clicks = np.array([0.0, 0.0, 1.0])
        groups = fig7_user_groups(lengths, clicks)
        assert list(groups) == [0, 1, 2]

    def test_new_user_overrides_clicks(self):
        groups = fig7_user_groups(np.array([0]), np.array([3.0]))
        assert groups[0] == 0


class TestEvaluator:
    def test_metric_keys_and_ranges(self, test_set):
        model = build_model("dnn", ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
        metrics = evaluate_ranking(model, test_set)
        assert set(metrics) == {"auc", "auc@10", "ndcg", "ndcg@10"}
        for value in metrics.values():
            assert 0.0 <= value <= 1.0

    def test_scores_reused(self, test_set):
        model = build_model("dnn", ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
        scores = predict_scores(model, test_set)
        a = evaluate_ranking(model, test_set, scores=scores)
        b = evaluate_ranking(model, test_set)
        assert a["auc"] == pytest.approx(b["auc"])

    def test_predict_scores_order_and_range(self, test_set):
        model = build_model("din", ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
        scores = predict_scores(model, test_set, batch_size=64)
        assert scores.shape == (len(test_set),)
        assert np.all((scores > 0) & (scores < 1))


class TestImportanceDriver:
    def test_fig2_pattern_on_unit_world(self, train_set):
        result = feature_importance_by_user_group(train_set, rng=np.random.default_rng(0))
        # The paper's headline observation, reproduced on synthetic data:
        # popularity-side features dominate for category-new users, two-sided
        # features dominate for category-old users.
        assert result.popularity_mass("new") > result.two_sided_mass("new")
        assert result.two_sided_mass("old") > result.two_sided_mass("new")

    def test_importances_normalized(self, train_set):
        result = feature_importance_by_user_group(train_set, rng=np.random.default_rng(0))
        assert result.new_user.sum() == pytest.approx(1.0, abs=1e-6)
        assert result.old_user.sum() == pytest.approx(1.0, abs=1e-6)

    def test_rows_layout(self, train_set):
        result = feature_importance_by_user_group(train_set, rng=np.random.default_rng(0))
        rows = result.rows()
        assert len(rows) == 6
        assert all(len(row) == 3 for row in rows)
