"""Augmentations for contrastive learning."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.masking import (
    augment_mask,
    random_crop,
    random_mask,
    random_reorder,
    sample_in_batch_negatives,
)

settings.register_profile("ci", deadline=None, max_examples=30)
settings.load_profile("ci")


def _mask(rows=4, cols=8, valid=6):
    mask = np.zeros((rows, cols), dtype=np.float32)
    mask[:, :valid] = 1.0
    return mask


class TestRandomMask:
    def test_only_removes_never_adds(self):
        mask = _mask()
        out = random_mask(mask, np.random.default_rng(0), 0.5)
        assert np.all(out <= mask)

    def test_zero_probability_is_identity(self):
        mask = _mask()
        out = random_mask(mask, np.random.default_rng(0), 0.0)
        assert np.array_equal(out, mask)

    def test_probability_one_empties(self):
        out = random_mask(_mask(), np.random.default_rng(0), 1.0)
        assert out.sum() == 0

    def test_expected_removal_rate(self):
        mask = np.ones((200, 50), dtype=np.float32)
        out = random_mask(mask, np.random.default_rng(0), 0.3)
        assert out.mean() == pytest.approx(0.7, abs=0.02)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            random_mask(_mask(), np.random.default_rng(0), 1.5)

    @given(st.floats(0.0, 1.0))
    def test_output_binary(self, p):
        out = random_mask(_mask(), np.random.default_rng(1), p)
        assert set(np.unique(out)) <= {0.0, 1.0}


class TestRandomCrop:
    def test_crop_is_contiguous_over_valid_positions(self):
        mask = _mask(rows=1, cols=10, valid=8)
        out = random_crop(mask, np.random.default_rng(0), ratio=0.5)
        kept = np.flatnonzero(out[0] > 0)
        assert kept.size == 4
        assert np.all(np.diff(kept) == 1)

    def test_ratio_one_keeps_everything(self):
        mask = _mask()
        out = random_crop(mask, np.random.default_rng(0), ratio=1.0)
        assert np.array_equal(out, mask)

    def test_empty_rows_stay_empty(self):
        mask = np.zeros((2, 5), dtype=np.float32)
        out = random_crop(mask, np.random.default_rng(0), ratio=0.5)
        assert out.sum() == 0

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            random_crop(_mask(), np.random.default_rng(0), ratio=0.0)

    def test_keeps_at_least_one(self):
        mask = _mask(rows=1, cols=5, valid=2)
        out = random_crop(mask, np.random.default_rng(0), ratio=0.1)
        assert out.sum() >= 1


class TestRandomReorder:
    def test_preserves_multiset(self):
        items = np.arange(1, 9).reshape(1, 8).astype(np.int32)
        cats = items + 100
        mask = np.ones((1, 8), dtype=np.float32)
        new_items, new_cats = random_reorder(items, cats, mask, np.random.default_rng(0), p=1.0)
        assert sorted(new_items[0]) == sorted(items[0])
        assert sorted(new_cats[0]) == sorted(cats[0])

    def test_items_and_categories_move_together(self):
        items = np.arange(1, 9).reshape(1, 8).astype(np.int32)
        cats = items * 10
        mask = np.ones((1, 8), dtype=np.float32)
        new_items, new_cats = random_reorder(items, cats, mask, np.random.default_rng(0), p=1.0)
        assert np.array_equal(new_cats, new_items * 10)

    def test_does_not_mutate_inputs(self):
        items = np.arange(1, 9).reshape(1, 8).astype(np.int32)
        original = items.copy()
        random_reorder(items, items + 1, np.ones((1, 8), dtype=np.float32), np.random.default_rng(0), p=1.0)
        assert np.array_equal(items, original)

    def test_padded_positions_untouched(self):
        items = np.arange(1, 9).reshape(1, 8).astype(np.int32)
        mask = _mask(rows=1, cols=8, valid=4)
        new_items, _ = random_reorder(items, items.copy(), mask, np.random.default_rng(0), p=1.0)
        assert np.array_equal(new_items[0, 4:], items[0, 4:])


class TestAugmentDispatch:
    def test_mask_strategy(self, test_set):
        batch = test_set.batch_at(np.arange(8))
        out = augment_mask(batch, np.random.default_rng(0), "mask", 0.5)
        assert out.shape == batch["behavior_mask"].shape
        assert np.all(out <= batch["behavior_mask"])

    def test_crop_strategy(self, test_set):
        batch = test_set.batch_at(np.arange(8))
        out = augment_mask(batch, np.random.default_rng(0), "crop", 0.5)
        assert np.all(out <= batch["behavior_mask"])

    def test_reorder_strategy_returns_original_mask(self, test_set):
        batch = test_set.batch_at(np.arange(8))
        original_mask = batch["behavior_mask"].copy()
        out = augment_mask(batch, np.random.default_rng(0), "reorder", 0.5)
        assert np.array_equal(out, original_mask)

    def test_unknown_strategy(self, test_set):
        batch = test_set.batch_at(np.arange(4))
        with pytest.raises(ValueError):
            augment_mask(batch, np.random.default_rng(0), "flip", 0.5)


class TestInBatchNegatives:
    def test_shape(self):
        out = sample_in_batch_negatives(16, 3, np.random.default_rng(0))
        assert out.shape == (16, 3)

    def test_never_self(self):
        out = sample_in_batch_negatives(32, 5, np.random.default_rng(0))
        anchors = np.arange(32)[:, None]
        assert np.all(out != anchors)

    def test_in_range(self):
        out = sample_in_batch_negatives(8, 4, np.random.default_rng(0))
        assert out.min() >= 0
        assert out.max() < 8

    def test_batch_of_one_rejected(self):
        with pytest.raises(ValueError):
            sample_in_batch_negatives(1, 3, np.random.default_rng(0))

    @given(st.integers(2, 64), st.integers(1, 10))
    def test_properties_hold_for_any_size(self, batch, l):
        out = sample_in_batch_negatives(batch, l, np.random.default_rng(2))
        anchors = np.arange(batch)[:, None]
        assert out.shape == (batch, l)
        assert np.all(out != anchors)
        assert out.min() >= 0 and out.max() < batch

    def test_uniform_over_non_self(self):
        counts = np.zeros(4)
        out = sample_in_batch_negatives(4, 2000, np.random.default_rng(3))
        for row in range(4):
            for value in out[row]:
                counts[value] += 1
        # each anchor avoids itself; totals should be roughly balanced
        assert counts.std() / counts.mean() < 0.1
