"""Synthetic-world invariants: the planted structure the experiments rely on."""

import numpy as np
import pytest

from repro.data import WorldConfig, generate_world, make_search_datasets, simulate_search_log
from repro.data.synthetic import ARCHETYPES, build_test_dataset, build_train_dataset

@pytest.fixture(scope="module")
def world():
    return generate_world(WorldConfig.unit(), np.random.default_rng(4))


class TestWorldGeneration:
    def test_item_arrays_sized(self, world):
        cfg = world.config
        assert len(world.item_category) == cfg.num_items
        assert world.item_category.max() < cfg.num_categories

    def test_price_percentiles_uniform_within_category(self, world):
        for cat in range(world.config.num_categories):
            members = world.item_price_pct[world.item_category == cat]
            if members.size >= 4:
                assert 0.0 < members.min() < 0.5
                assert 0.5 < members.max() <= 1.0

    def test_popularity_normalized(self, world):
        assert world.item_popularity.min() >= 0.0
        assert world.item_popularity.max() <= 1.0

    def test_brands_consistent_with_category(self, world):
        per_cat = world.config.brands_per_category
        assert np.all(world.item_brand // per_cat == world.item_category)

    def test_interests_are_distributions(self, world):
        assert np.allclose(world.user_interests.sum(axis=1), 1.0, atol=1e-6)

    def test_some_new_users_exist(self, world):
        empty = sum(1 for h in world.histories if len(h) == 0)
        assert empty > 0

    def test_elderly_have_shorter_histories(self, world):
        lengths = np.array([len(h) for h in world.histories], dtype=float)
        elderly = lengths[world.user_age == 2]
        young = lengths[world.user_age == 0]
        assert elderly.mean() < young.mean()

    def test_histories_capped_at_max_seq_len(self, world):
        assert max(len(h) for h in world.histories) <= world.config.max_seq_len

    def test_deterministic_given_seed(self):
        a = generate_world(WorldConfig.unit(), np.random.default_rng(9))
        b = generate_world(WorldConfig.unit(), np.random.default_rng(9))
        assert np.array_equal(a.item_category, b.item_category)
        assert all(np.array_equal(x, y) for x, y in zip(a.histories, b.histories))


class TestArchetypeSignal:
    """Behaviour sequences must reveal the latent archetype (gate's signal)."""

    def test_price_sensitive_buy_cheaper(self, world):
        means = _mean_history_stat(world, world.item_price_pct)
        price_idx, trend_idx = 0, 2
        assert means[price_idx] < means[trend_idx]

    def test_trend_followers_buy_popular(self, world):
        means = _mean_history_stat(world, world.item_popularity)
        assert means[2] == max(means)

    def test_quality_seekers_buy_quality(self, world):
        means = _mean_history_stat(world, world.item_quality)
        assert means[3] > means[0]

    def test_style_concentration(self, world):
        """Histories cluster near the user's style coordinate."""
        gaps = []
        for user, history in enumerate(world.histories):
            if len(history) >= 3:
                gaps.append(np.abs(world.item_style[history] - world.user_style[user]).mean())
        random_gap = 1.0 / 3.0  # E|U - V| for independent uniforms
        assert np.mean(gaps) < random_gap


def _mean_history_stat(world, item_stat):
    """Mean of an item statistic over histories, grouped by archetype."""
    sums = np.zeros(len(ARCHETYPES))
    counts = np.zeros(len(ARCHETYPES))
    for user, history in enumerate(world.histories):
        if len(history):
            kind = world.user_archetype[user]
            sums[kind] += item_stat[history].sum()
            counts[kind] += len(history)
    return sums / np.maximum(counts, 1)


class TestSessionSimulation:
    def test_log_rows_consistent(self, world):
        log = simulate_search_log(world, 50, np.random.default_rng(1))
        assert len(log.session_id) == len(log.label) == len(log.target_item)
        assert log.behavior_items.shape[0] == len(log.label)

    def test_ids_are_one_based(self, world):
        log = simulate_search_log(world, 50, np.random.default_rng(1))
        assert log.target_item.min() >= 1
        assert log.query.min() >= 1
        assert log.query_category.min() >= 1

    def test_positive_rate_reasonable(self, world):
        log = simulate_search_log(world, 300, np.random.default_rng(1))
        rate = log.label.mean()
        assert 0.03 < rate < 0.4

    def test_start_session_id_offsets(self, world):
        log = simulate_search_log(world, 10, np.random.default_rng(1), start_session_id=100)
        assert log.session_id.min() == 100

    def test_most_candidates_match_query_category(self, world):
        log = simulate_search_log(world, 100, np.random.default_rng(1))
        target_cats = world.item_category[log.target_item - 1] + 1
        match = (target_cats == log.query_category).mean()
        assert match > 0.6


class TestDatasetConstruction:
    def test_train_is_balanced(self, world):
        log = simulate_search_log(world, 200, np.random.default_rng(2))
        train = build_train_dataset(log, np.random.default_rng(3))
        assert train.label.mean() == pytest.approx(0.5, abs=0.02)

    def test_test_sessions_have_both_classes(self, world):
        log = simulate_search_log(world, 200, np.random.default_rng(2))
        test = build_test_dataset(log)
        for session in np.unique(test.session_id):
            labels = test.label[test.session_id == session]
            assert labels.max() == 1.0
            assert labels.min() == 0.0

    def test_pipeline_determinism(self):
        _, train_a, _ = make_search_datasets(WorldConfig.unit(), 100, 50, seed=5)
        _, train_b, _ = make_search_datasets(WorldConfig.unit(), 100, 50, seed=5)
        assert np.array_equal(train_a.label, train_b.label)
        assert np.array_equal(train_a.target_item, train_b.target_item)

    def test_different_seeds_differ(self):
        _, train_a, _ = make_search_datasets(WorldConfig.unit(), 100, 50, seed=5)
        _, train_b, _ = make_search_datasets(WorldConfig.unit(), 100, 50, seed=6)
        assert not np.array_equal(train_a.target_item, train_b.target_item)

    def test_meta_vocab_sizes_cover_ids(self, test_set):
        meta = test_set.meta
        assert test_set.target_item.max() < meta.num_items
        assert test_set.behavior_items.max() < meta.num_items
        assert test_set.query.max() < meta.num_queries
        assert test_set.target_category.max() < meta.num_categories


class TestFig2Structure:
    """The category-new vs category-old label asymmetry behind Fig. 2."""

    def test_category_old_share_substantial(self, train_set):
        cat_cnt = train_set.other_features[:, train_set.meta.feature_index("category_click_cnt")]
        share = (cat_cnt > 0).mean()
        assert 0.2 < share < 0.95

    def test_new_user_positives_skew_popular(self, train_set):
        features = train_set.other_features
        meta = train_set.meta
        cat_cnt = features[:, meta.feature_index("category_click_cnt")]
        pop = features[:, meta.feature_index("popularity")]
        labels = train_set.label
        new = cat_cnt == 0
        if new.sum() > 50:
            pop_gap_new = pop[new & (labels == 1)].mean() - pop[new & (labels == 0)].mean()
            assert pop_gap_new > 0.0
