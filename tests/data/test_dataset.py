"""RankingDataset container and batch iteration."""

import numpy as np
import pytest

from repro.data import RankingDataset, iterate_batches
from repro.data.schema import validate_batch


class TestDatasetShape:
    def test_length(self, test_set):
        assert len(test_set) == len(test_set.label)

    def test_columns_consistent(self, test_set):
        assert test_set.behavior_items.shape == test_set.behavior_mask.shape
        assert test_set.other_features.shape[0] == len(test_set)
        assert test_set.behavior_dense.shape[:2] == test_set.behavior_items.shape

    def test_mismatched_columns_rejected(self, test_set):
        with pytest.raises(ValueError):
            RankingDataset(
                behavior_items=test_set.behavior_items,
                behavior_categories=test_set.behavior_categories,
                behavior_dense=test_set.behavior_dense,
                behavior_mask=test_set.behavior_mask,
                target_item=test_set.target_item[:-1],
                target_category=test_set.target_category,
                target_dense=test_set.target_dense,
                query=test_set.query,
                query_category=test_set.query_category,
                other_features=test_set.other_features,
                label=test_set.label,
                session_id=test_set.session_id,
                user_id=test_set.user_id,
                meta=test_set.meta,
            )


class TestSubset:
    def test_subset_selects_rows(self, test_set):
        idx = np.array([0, 5, 7])
        sub = test_set.subset(idx)
        assert len(sub) == 3
        assert np.allclose(sub.label, test_set.label[idx])

    def test_subset_by_mask_via_flatnonzero(self, test_set):
        positives = test_set.subset(np.flatnonzero(test_set.label == 1))
        assert positives.label.min() == 1.0

    def test_subset_keeps_meta(self, test_set):
        sub = test_set.subset(np.array([0]))
        assert sub.meta is test_set.meta


class TestStatistics:
    def test_session_and_user_counts_positive(self, test_set):
        assert test_set.num_sessions() > 0
        assert test_set.num_users() > 0
        assert test_set.num_users() <= test_set.num_sessions() * 2

    def test_pos_neg_counts_sum(self, test_set):
        assert test_set.positive_count() + test_set.negative_count() == len(test_set)

    def test_pos_neg_ratio(self, test_set):
        expected = test_set.negative_count() / test_set.positive_count()
        assert test_set.pos_neg_ratio() == pytest.approx(expected)

    def test_examples_per_session(self, test_set):
        expected = len(test_set) / test_set.num_sessions()
        assert test_set.examples_per_session() == pytest.approx(expected)

    def test_behavior_lengths_match_mask(self, test_set):
        lengths = test_set.behavior_lengths()
        assert np.all(lengths == test_set.behavior_mask.sum(axis=1))

    def test_num_queries_excludes_padding(self, test_set):
        assert test_set.num_queries() > 0
        assert 0 not in np.unique(test_set.query[test_set.query > 0])


class TestIteration:
    def test_batches_cover_dataset(self, test_set):
        total = sum(len(b["label"]) for b in iterate_batches(test_set, 64))
        assert total == len(test_set)

    def test_batches_validate(self, test_set):
        for batch in iterate_batches(test_set, 32):
            validate_batch(batch)
            break

    def test_drop_last(self, test_set):
        size = 64
        batches = list(iterate_batches(test_set, size, drop_last=True))
        assert all(len(b["label"]) == size for b in batches)

    def test_shuffle_changes_order(self, test_set):
        plain = next(iter(iterate_batches(test_set, 32)))
        shuffled = next(iter(iterate_batches(test_set, 32, rng=np.random.default_rng(0))))
        assert not np.array_equal(plain["target_item"], shuffled["target_item"])

    def test_shuffle_deterministic_by_seed(self, test_set):
        a = next(iter(iterate_batches(test_set, 32, rng=np.random.default_rng(5))))
        b = next(iter(iterate_batches(test_set, 32, rng=np.random.default_rng(5))))
        assert np.array_equal(a["target_item"], b["target_item"])

    def test_invalid_batch_size(self, test_set):
        with pytest.raises(ValueError):
            next(iterate_batches(test_set, 0))
