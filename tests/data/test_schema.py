"""Schema contract: feature layout, batch validation."""

import numpy as np
import pytest

from repro.data.schema import (
    BATCH_KEYS,
    FEATURE_NAMES,
    FIG2_FEATURES,
    DatasetMeta,
    batch_size_of,
    validate_batch,
)


def _meta(**overrides):
    defaults = dict(
        num_items=10,
        num_categories=4,
        num_queries=6,
        num_brands=8,
        num_shops=5,
        max_seq_len=3,
    )
    defaults.update(overrides)
    return DatasetMeta(**defaults)


class TestDatasetMeta:
    def test_num_features_matches_layout(self):
        assert _meta().num_features == len(FEATURE_NAMES)

    def test_feature_index_lookup(self):
        meta = _meta()
        assert meta.feature_index("price") == FEATURE_NAMES.index("price")

    def test_feature_index_unknown(self):
        with pytest.raises(KeyError):
            _meta().feature_index("nonexistent")

    def test_fig2_features_are_subset(self):
        assert set(FIG2_FEATURES) <= set(FEATURE_NAMES)

    def test_item_dense_count(self):
        assert _meta().num_item_dense == 4

    def test_default_task(self):
        assert _meta().task == "search"


def _valid_batch(n=4, m=3, f=len(FEATURE_NAMES)):
    return {
        "behavior_items": np.zeros((n, m), dtype=np.int32),
        "behavior_categories": np.zeros((n, m), dtype=np.int32),
        "behavior_dense": np.zeros((n, m, 4), dtype=np.float32),
        "behavior_mask": np.zeros((n, m), dtype=np.float32),
        "target_item": np.ones(n, dtype=np.int32),
        "target_category": np.ones(n, dtype=np.int32),
        "target_dense": np.zeros((n, 4), dtype=np.float32),
        "query": np.ones(n, dtype=np.int32),
        "query_category": np.ones(n, dtype=np.int32),
        "other_features": np.zeros((n, f), dtype=np.float32),
        "label": np.zeros(n, dtype=np.float32),
        "session_id": np.arange(n, dtype=np.int64),
        "user_id": np.arange(n, dtype=np.int64),
    }


class TestBatchValidation:
    def test_valid_batch_passes(self):
        validate_batch(_valid_batch())

    def test_batch_size(self):
        assert batch_size_of(_valid_batch(7)) == 7

    def test_missing_key_rejected(self):
        batch = _valid_batch()
        del batch["query"]
        with pytest.raises(KeyError):
            validate_batch(batch)

    def test_inconsistent_rows_rejected(self):
        batch = _valid_batch()
        batch["label"] = np.zeros(99, dtype=np.float32)
        with pytest.raises((ValueError, KeyError)):
            validate_batch(batch)

    def test_mask_shape_mismatch_rejected(self):
        batch = _valid_batch()
        batch["behavior_mask"] = np.zeros((4, 99), dtype=np.float32)
        with pytest.raises(ValueError):
            validate_batch(batch)

    def test_all_keys_in_contract(self):
        assert set(_valid_batch()) == set(BATCH_KEYS)
