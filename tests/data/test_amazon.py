"""Amazon-protocol invariants (leave-one-out, 1:1, 90/10 user split)."""

import numpy as np
import pytest

from repro.data import WorldConfig
from repro.data.amazon import make_amazon_datasets


@pytest.fixture(scope="module")
def amazon():
    return make_amazon_datasets(WorldConfig.unit(), seed=13)


class TestProtocol:
    def test_reco_meta(self, amazon):
        _, train, test = amazon
        assert train.meta.task == "reco"
        assert train.meta.num_queries == 1

    def test_one_to_one_labels(self, amazon):
        _, train, test = amazon
        assert train.label.mean() == pytest.approx(0.5)
        assert test.label.mean() == pytest.approx(0.5)

    def test_user_split_disjoint(self, amazon):
        _, train, test = amazon
        assert not set(np.unique(train.user_id)) & set(np.unique(test.user_id))

    def test_split_fraction(self, amazon):
        world, train, test = amazon
        train_users = np.unique(train.user_id).size
        test_users = np.unique(test.user_id).size
        fraction = train_users / (train_users + test_users)
        assert fraction == pytest.approx(0.9, abs=0.05)

    def test_positive_is_last_history_item(self, amazon):
        world, train, _ = amazon
        positives = train.label == 1
        users = train.user_id[positives]
        items = train.target_item[positives] - 1
        for user, item in zip(users[:50], items[:50]):
            assert world.histories[user][-1] == item

    def test_history_excludes_held_out_item_position(self, amazon):
        world, train, _ = amazon
        lengths = train.behavior_lengths()
        for i in range(min(50, len(train))):
            user = train.user_id[i]
            full = len(world.histories[user])
            assert lengths[i] == min(full - 1, world.config.max_seq_len)

    def test_negative_differs_from_positive(self, amazon):
        _, train, _ = amazon
        # rows alternate (positive, negative) per user by construction
        pos_items = train.target_item[train.label == 1]
        neg_items = train.target_item[train.label == 0]
        assert np.all(pos_items != neg_items)

    def test_no_query_ids(self, amazon):
        _, train, test = amazon
        assert train.query.max() == 0
        assert test.query.max() == 0

    def test_session_is_user(self, amazon):
        _, train, _ = amazon
        assert np.array_equal(train.session_id, train.user_id)

    def test_determinism(self):
        _, a, _ = make_amazon_datasets(WorldConfig.unit(), seed=13)
        _, b, _ = make_amazon_datasets(WorldConfig.unit(), seed=13)
        assert np.array_equal(a.target_item, b.target_item)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            make_amazon_datasets(WorldConfig.unit(), seed=1, train_fraction=1.0)
