"""Public feature-assembly API (``repro.data.features``)."""

import numpy as np

from repro.data import (
    UserState,
    assemble_candidate_batch,
    cross_features,
    encode_behavior,
    impression_features,
    item_dense,
)
from repro.data.schema import FEATURE_NAMES, validate_batch


def _active_user(world):
    for user in range(world.num_users):
        if world.history_length(user) >= 3:
            return user
    raise AssertionError("no active user in unit world")


class TestUserState:
    def test_caches_history_arrays(self, unit_world):
        user = _active_user(unit_world)
        state = UserState(unit_world, user)
        history = unit_world.histories[user]
        assert state.length == len(history)
        np.testing.assert_array_equal(state.categories, unit_world.item_category[history])
        np.testing.assert_array_equal(state.brands, unit_world.item_brand[history])

    def test_empty_history(self, unit_world):
        empties = [u for u in range(unit_world.num_users) if unit_world.history_length(u) == 0]
        assert empties, "unit world should contain new users"
        state = UserState(unit_world, empties[0])
        assert state.length == 0


class TestCrossFeatures:
    def test_keys_and_shapes(self, unit_world):
        user = _active_user(unit_world)
        state = UserState(unit_world, user)
        candidates = np.arange(5)
        cross = cross_features(state, unit_world, candidates)
        for key, values in cross.items():
            assert values.shape == (5,), key

    def test_empty_history_defaults(self, unit_world):
        empties = [u for u in range(unit_world.num_users) if unit_world.history_length(u) == 0]
        state = UserState(unit_world, empties[0])
        cross = cross_features(state, unit_world, np.arange(4))
        assert np.all(cross["item_click_cnt"] == 0)
        assert np.all(cross["brand_click_time_diff"] == 1.0)

    def test_item_click_counts_history(self, unit_world):
        user = _active_user(unit_world)
        state = UserState(unit_world, user)
        seen = unit_world.histories[user][0]
        cross = cross_features(state, unit_world, np.array([seen]))
        assert cross["item_click_cnt"][0] >= 1


class TestEncodeBehavior:
    def test_padding_and_mask(self, unit_world):
        user = _active_user(unit_world)
        max_len = unit_world.config.max_seq_len
        items, cats, dense, mask = encode_behavior(unit_world, user, max_len)
        n = min(unit_world.history_length(user), max_len)
        assert items.shape == (max_len,)
        assert dense.shape == (max_len, 4)
        assert mask.sum() == n
        assert np.all(items[n:] == 0)

    def test_item_dense_columns(self, unit_world):
        dense = item_dense(unit_world, np.arange(3))
        np.testing.assert_allclose(dense[:, 0], unit_world.item_price_pct[:3], rtol=1e-6)
        np.testing.assert_allclose(dense[:, 3], unit_world.item_style[:3], rtol=1e-6)


class TestAssembleCandidateBatch:
    def test_batch_is_valid(self, unit_world):
        user = _active_user(unit_world)
        candidates = np.arange(6)
        batch = assemble_candidate_batch(unit_world, user, 1, candidates)
        validate_batch(batch)
        assert batch["label"].shape == (6,)
        np.testing.assert_array_equal(batch["target_item"], candidates + 1)

    def test_precomputed_behavior_identical(self, unit_world):
        """The cached-behaviour path must not change a single byte."""
        user = _active_user(unit_world)
        candidates = np.arange(4)
        fresh = assemble_candidate_batch(unit_world, user, 2, candidates)
        behavior = encode_behavior(unit_world, user, unit_world.config.max_seq_len)
        cached = assemble_candidate_batch(unit_world, user, 2, candidates, behavior=behavior)
        for key in fresh:
            np.testing.assert_array_equal(fresh[key], cached[key], err_msg=key)

    def test_matches_simulated_log_features(self, unit_world):
        """Serving-side assembly equals the offline generator's features."""
        user = _active_user(unit_world)
        state = UserState(unit_world, user)
        candidates = np.arange(5)
        cross = cross_features(state, unit_world, candidates)
        features = impression_features(unit_world, user, candidates, 1, 1, cross, state)
        batch = assemble_candidate_batch(unit_world, user, 1, candidates, spec=1)
        np.testing.assert_array_equal(batch["other_features"], features.astype(np.float32))
        assert features.shape[1] == len(FEATURE_NAMES)

    def test_offline_generator_uses_same_implementation(self):
        """The synthetic log generator scores with these exact functions."""
        import repro.data.synthetic as synthetic

        assert synthetic.cross_features is cross_features
        assert synthetic.impression_features is impression_features
        assert synthetic.encode_behavior is encode_behavior
