"""Long-tail splits and Table I statistics."""

import numpy as np

from repro.data.splits import long_tail_by_history, long_tail_elderly, standard_test_splits
from repro.data.stats import dataset_statistics, table1_rows


class TestLongTailSplits:
    def test_history_split_respects_threshold(self, test_set):
        split = long_tail_by_history(test_set, max_behaviors=3)
        assert np.all(split.behavior_lengths() <= 3)

    def test_history_split_nonempty(self, test_set):
        assert len(long_tail_by_history(test_set, max_behaviors=3)) > 0

    def test_elderly_split_only_elderly(self, test_set):
        split = long_tail_elderly(test_set)
        idx = test_set.meta.feature_index("age_elderly")
        assert np.all(split.other_features[:, idx] == 1.0)

    def test_elderly_are_long_tail(self, test_set):
        elderly = long_tail_elderly(test_set)
        assert elderly.behavior_lengths().mean() < test_set.behavior_lengths().mean()

    def test_standard_splits_keys(self, test_set):
        splits = standard_test_splits(test_set)
        assert set(splits) == {"full", "long_tail_1", "long_tail_2"}
        assert splits["full"] is test_set

    def test_splits_are_subsets(self, test_set):
        splits = standard_test_splits(test_set)
        assert len(splits["long_tail_1"]) < len(test_set)
        assert len(splits["long_tail_2"]) < len(test_set)


class TestTable1:
    def test_statistics_keys(self, test_set):
        stats = dataset_statistics(test_set)
        assert "# Sessions" in stats
        assert "Pos : Neg" in stats

    def test_balanced_set_reports_one_to_one(self, train_set):
        stats = dataset_statistics(train_set)
        assert stats["Pos : Neg"] == "1 : 1"

    def test_imbalanced_set_reports_ratio(self, test_set):
        stats = dataset_statistics(test_set)
        assert stats["Pos : Neg"].startswith("1 : ")
        assert stats["Pos : Neg"] != "1 : 1"

    def test_rows_align_with_splits(self, test_set):
        rows = table1_rows({"full": test_set, "lt1": long_tail_by_history(test_set)})
        assert len(rows) == 6
        assert all(len(row) == 3 for row in rows)

    def test_examples_count_formatting(self, test_set):
        stats = dataset_statistics(test_set)
        assert stats["# Examples"] == f"{len(test_set):,}"
