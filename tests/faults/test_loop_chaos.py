"""OnlineLoop under injected chaos: retries, quarantine, rollback, soak."""

import json

import numpy as np
import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    TransientFault,
    default_chaos_plan,
    run_chaos_soak,
)
from repro.obs import AlertManager
from repro.online import (
    CanaryGate,
    ClickLog,
    ClickModelConfig,
    IncrementalTrainer,
    ModelRegistry,
    OnlineLoop,
    PositionBiasedClickModel,
)
from repro.serving import DegradationPolicy, ManualClock, ShardedCluster, ZipfLoadGenerator


def _chaos_loop(
    tmp_path,
    unit_world,
    make_model,
    train_config,
    plan,
    watch_cycles=0,
    alerts=None,
    policy=None,
    breaker_cooldown_s=0.05,
):
    """The standard loop harness with the fault injector threaded everywhere."""
    clock = ManualClock()
    inj = FaultInjector(plan, sleeper=clock.advance, clock=clock.now)
    trainer = IncrementalTrainer(
        make_model(trained=True), train_config, seed=5, injector=inj
    )
    cluster = ShardedCluster(
        unit_world,
        make_model(trained=False),
        num_shards=2,
        seed=0,
        max_batch_size=4,
        flush_deadline_ms=5.0,
        cache_capacity=128,
        clock=clock,
        policy=policy,
        injector=inj,
        breaker_cooldown_s=breaker_cooldown_s,
    )
    inj.events = cluster.control.events
    loop = OnlineLoop(
        world=unit_world,
        cluster=cluster,
        trainer=trainer,
        model_factory=lambda: make_model(trained=False),
        registry=ModelRegistry(
            str(tmp_path / "registry"), clock=lambda: 0.0, injector=inj
        ),
        canary=CanaryGate(tolerance=1.0, injector=inj),
        click_model=PositionBiasedClickModel(
            unit_world, np.random.default_rng(3), ClickModelConfig()
        ),
        click_log=ClickLog(path=str(tmp_path / "clicks.jsonl"), injector=inj),
        clock=clock,
        seed=11,
        alerts=alerts,
        watch_cycles=watch_cycles,
        retry_backoff_s=0.01,
    )
    return loop, inj


def _events(unit_world, count, seed=7):
    return ZipfLoadGenerator(
        np.random.default_rng(seed), world=unit_world, target_qps=500.0
    ).generate(count)


class TestTransientRetry:
    def test_transient_train_and_canary_faults_are_retried(
        self, tmp_path, unit_world, make_model, online_train_config
    ):
        plan = FaultPlan(
            specs=[
                FaultSpec("trainer.update", "transient", times=1),
                FaultSpec("canary.judge", "transient", times=1),
            ]
        )
        loop, _ = _chaos_loop(
            tmp_path, unit_world, make_model, online_train_config, plan
        )
        loop.bootstrap()
        report = loop.run_cycle(_events(unit_world, 100))
        # Both stages hiccuped once and completed on retry.
        assert report.candidate_version == 2
        assert report.canary is not None
        assert loop.production_version == 2
        retries = loop.cluster.control.events.events("retry")
        assert {e.attrs["stage"] for e in retries} == {"train", "canary"}
        assert all(e.attrs["attempt"] == 1 for e in retries)

    def test_retry_exhaustion_reraises(
        self, tmp_path, unit_world, make_model, online_train_config
    ):
        plan = FaultPlan(
            specs=[FaultSpec("trainer.update", "transient", times=None)]
        )
        loop, _ = _chaos_loop(
            tmp_path, unit_world, make_model, online_train_config, plan
        )
        loop.bootstrap()
        with pytest.raises(TransientFault):
            loop.run_cycle(_events(unit_world, 100))
        retries = loop.cluster.control.events.events("retry")
        assert len(retries) == loop.retry_attempts  # every attempt logged
        assert loop.production_version == 1  # production untouched


class TestDeployRecovery:
    def test_corrupt_candidate_is_quarantined_and_rolled_back(
        self, tmp_path, unit_world, make_model, online_train_config
    ):
        # after=1 spares the bootstrap registration: the first *refresh*
        # candidate's checkpoint is the one corrupted on disk.
        plan = FaultPlan(
            specs=[FaultSpec("registry.checkpoint", "corrupt", after=1, times=1)]
        )
        loop, _ = _chaos_loop(
            tmp_path, unit_world, make_model, online_train_config, plan
        )
        loop.bootstrap()
        report = loop.run_cycle(_events(unit_world, 100))
        assert report.candidate_version == 2
        assert report.rollback is not None
        assert report.rollback["reason"] == "deploy_failed:CorruptCheckpointError"
        assert report.rollback["quarantined"] is True
        assert report.rollback["restored"] == 1
        # Registry: parent back in production, candidate quarantined forever.
        assert loop.production_version == 1
        assert loop.registry.get(2).status == "quarantined"
        with pytest.raises(ValueError):
            loop.registry.promote(2)
        # Fleet: never touched the corrupt candidate.
        assert loop.cluster.model_version == "v0001"
        counts = loop.cluster.control.events.counts()
        assert counts.get("quarantine") == 1
        assert counts.get("rollback") == 1
        # The loop heals: the next cycle's candidate deploys normally off
        # the restored parent lineage.
        follow_up = loop.run_cycle(_events(unit_world, 100, seed=8))
        assert follow_up.rollback is None
        assert loop.production_version == follow_up.candidate_version == 3

    def test_mid_swap_crash_is_rolled_back(
        self, tmp_path, unit_world, make_model, online_train_config
    ):
        plan = FaultPlan(
            specs=[
                FaultSpec(
                    "swap.shard", "crash", after=1, times=1, match={"shard": 1}
                )
            ]
        )
        loop, _ = _chaos_loop(
            tmp_path, unit_world, make_model, online_train_config, plan
        )
        loop.bootstrap()
        report = loop.run_cycle(_events(unit_world, 100))
        assert report.rollback is not None
        assert report.rollback["reason"] == "deploy_failed:SwapFailed"
        assert report.rollback["quarantined"] is False
        assert loop.production_version == 1
        assert loop.registry.get(2).status == "rejected"
        # The cluster rolled its own shards back: consistent old generation.
        assert [w.engine.model_version for w in loop.cluster.workers] == [
            "v0001",
            "v0001",
        ]


class TestWatchWindow:
    def test_alert_inside_watch_window_demotes_the_fresh_version(
        self, tmp_path, unit_world, make_model, online_train_config
    ):
        # Shard 0 starts crashing during cycle 2 — after cycle 1 promoted a
        # fresh version.  The open breaker fires the default resilience rule
        # inside the watch window, demoting the promotion back to its parent.
        plan = FaultPlan(
            specs=[
                FaultSpec(
                    "batcher.submit", "crash", after=40, times=6, match={"shard": 0}
                )
            ]
        )
        loop, _ = _chaos_loop(
            tmp_path,
            unit_world,
            make_model,
            online_train_config,
            plan,
            watch_cycles=2,
            alerts=AlertManager(["open-breakers: open_breakers >= 1"]),
            breaker_cooldown_s=60.0,  # stays open for the whole cycle
        )
        loop.bootstrap()
        first = loop.run_cycle(_events(unit_world, 60))
        assert first.candidate_version == 2
        assert loop.production_version == 2
        second = loop.run_cycle(_events(unit_world, 60, seed=8))
        assert second.rollback is not None
        assert second.rollback["reason"] == "alert:open-breakers"
        assert second.rollback["version"] == 2
        assert second.rollback["restored"] == 1
        assert loop.registry.get(2).status == "rejected"
        rollback_events = loop.cluster.control.events.events("rollback")
        assert rollback_events[0].attrs["reason"] == "alert:open-breakers"


class TestStateRecovery:
    def test_loop_surfaces_recovered_state_as_events(
        self, tmp_path, unit_world, make_model, online_train_config
    ):
        # Damage both persistence surfaces, then build a loop over them.
        registry_root = str(tmp_path / "registry")
        seed_registry = ModelRegistry(registry_root, clock=lambda: 0.0)
        seed_registry.register(make_model())
        seed_registry.register(make_model())
        with open(f"{registry_root}/registry.json", "w", encoding="utf-8") as handle:
            handle.write('{"versions": [{"torn')
        clicks_path = tmp_path / "clicks.jsonl"
        log = ClickLog(path=str(clicks_path))
        log.log_session(0, 0, np.array([1, 2]), np.array([1.0, 0.0]))
        with open(clicks_path, "a", encoding="utf-8") as handle:
            handle.write('{"session_id": 1, "torn\n')

        loop, _ = _chaos_loop(
            tmp_path, unit_world, make_model, online_train_config, FaultPlan()
        )
        events = loop.cluster.control.events.events("state_recovered")
        assert {e.attrs["component"] for e in events} == {"registry", "click_log"}
        registry_event = next(e for e in events if e.attrs["component"] == "registry")
        assert registry_event.attrs["source"] == "backup"
        log_event = next(e for e in events if e.attrs["component"] == "click_log")
        assert log_event.attrs["dropped"] == 1


class TestChaosSoak:
    def test_soak_answers_every_request_and_recovers(
        self, tmp_path, unit_world, make_model, online_train_config
    ):
        plan = default_chaos_plan(seed=3, shards=2)
        loop, inj = _chaos_loop(
            tmp_path,
            unit_world,
            make_model,
            online_train_config,
            plan,
            policy=DegradationPolicy(),
        )
        generator = ZipfLoadGenerator(
            np.random.default_rng(7), world=unit_world, target_qps=500.0
        )
        result = run_chaos_soak(
            loop, generator, cycles=3, events_per_cycle=60, injector=inj
        )
        # The availability invariant: degraded beats dropped — always.
        assert result["submitted"] == 180
        assert result["dropped"] == 0
        assert result["faults_fired"] > 0
        assert result["rollbacks"] >= 1
        assert result["event_counts"].get("fault_injected") == result["faults_fired"]
        json.dumps(result)  # the report is a serializable artifact
        # Both persistence surfaces restart clean after the beating.
        reloaded = ModelRegistry(str(tmp_path / "registry"), clock=lambda: 0.0)
        assert reloaded.production is not None
        recovered = ClickLog(path=str(tmp_path / "clicks.jsonl"))
        assert recovered.dropped_records == 2  # the two torn appends
        assert recovered.recovered_sessions == 180 - 2
