"""Durable ClickLog: torn-append recovery, id continuity, clean restarts."""

import numpy as np

from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.online import ClickLog


def _log_n(log, n, start_user=0):
    for offset in range(n):
        log.log_session(
            user=start_user + offset,
            query_category=offset % 3,
            items=np.array([1, 2, 3]),
            clicks=np.array([1.0, 0.0, 0.0]),
            model_version="v0001",
            timestamp=float(offset),
        )


class TestDurability:
    def test_clean_restart_recovers_everything(self, tmp_path):
        path = str(tmp_path / "clicks.jsonl")
        log = ClickLog(path=path)
        _log_n(log, 5)
        reloaded = ClickLog(path=path)
        assert len(reloaded) == 5
        assert reloaded.recovered_sessions == 5
        assert reloaded.dropped_records == 0
        first = reloaded.records[0]
        assert first.session_id == 0
        assert first.items.tolist() == [1, 2, 3]
        assert first.clicks.tolist() == [1.0, 0.0, 0.0]
        assert first.model_version == "v0001"

    def test_recovered_history_is_pre_consumed(self, tmp_path):
        path = str(tmp_path / "clicks.jsonl")
        _log_n(ClickLog(path=path), 4)
        reloaded = ClickLog(path=path)
        assert reloaded.lag == 0
        assert reloaded.read_new() == []
        # New traffic after the restart is unread as usual.
        _log_n(reloaded, 2, start_user=100)
        assert reloaded.lag == 2
        assert [r.user for r in reloaded.read_new()] == [100, 101]

    def test_session_ids_continue_after_restart(self, tmp_path):
        path = str(tmp_path / "clicks.jsonl")
        _log_n(ClickLog(path=path), 3)
        reloaded = ClickLog(path=path)
        record = reloaded.log_session(
            user=9, query_category=0, items=np.array([4]), clicks=np.array([1.0])
        )
        assert record.session_id == 3  # continues, never reuses

    def test_in_memory_log_unchanged(self):
        log = ClickLog()
        _log_n(log, 3)
        assert log.path is None
        assert log.lag == 3


class TestTornAppends:
    def test_torn_append_dropped_on_recovery(self, tmp_path):
        path = str(tmp_path / "clicks.jsonl")
        inj = FaultInjector(
            FaultPlan(
                specs=[
                    FaultSpec("clicklog.append", "torn_write", after=2, times=1)
                ]
            )
        )
        log = ClickLog(path=path, injector=inj)
        _log_n(log, 5)  # session 2's line is truncated mid-write
        assert log.torn_writes == 1
        reloaded = ClickLog(path=path)
        assert reloaded.dropped_records == 1
        assert [r.session_id for r in reloaded.records] == [0, 1, 3, 4]
        # The damaged file was rewritten clean: next restart drops nothing.
        again = ClickLog(path=path)
        assert again.dropped_records == 0
        assert len(again) == 4

    def test_ids_continue_past_a_dropped_tail(self, tmp_path):
        path = str(tmp_path / "clicks.jsonl")
        inj = FaultInjector(
            FaultPlan(
                specs=[
                    FaultSpec("clicklog.append", "torn_write", after=2, times=None)
                ]
            )
        )
        log = ClickLog(path=path, injector=inj)
        _log_n(log, 3)  # last session torn
        reloaded = ClickLog(path=path)
        assert [r.session_id for r in reloaded.records] == [0, 1]
        record = reloaded.log_session(
            user=1, query_category=0, items=np.array([7]), clicks=np.array([0.0])
        )
        assert record.session_id == 2  # the torn id is reused only after it died
