"""Shard failover: breaker-gated rerouting and the last-resort tier."""

from repro.faults import CircuitBreaker, FaultInjector, FaultPlan, FaultSpec
from repro.serving import (
    TIER_POPULARITY,
    ManualClock,
    ShardedCluster,
    shard_for_user,
)


def _users_on_shard(shard, num_shards, count=8):
    users = [u for u in range(200) if shard_for_user(u, num_shards) == shard]
    assert len(users) >= count
    return users[:count]


def _cluster(world, model, clock, injector, num_shards=2, **kwargs):
    kwargs.setdefault("max_batch_size", 100)
    kwargs.setdefault("flush_deadline_ms", 1e6)
    return ShardedCluster(
        world,
        model,
        num_shards=num_shards,
        seed=0,
        clock=clock.now,
        injector=injector,
        breaker_failure_threshold=3,
        breaker_cooldown_s=0.05,
        **kwargs,
    )


class TestFailover:
    def test_crashing_shard_reroutes_and_trips_its_breaker(
        self, unit_world, make_model
    ):
        clock = ManualClock()
        inj = FaultInjector(
            FaultPlan(
                specs=[
                    FaultSpec("batcher.submit", "crash", times=3, match={"shard": 0})
                ]
            )
        )
        cluster = _cluster(unit_world, make_model(), clock, inj)
        users = _users_on_shard(0, 2, count=4)
        for user in users[:3]:
            cluster.submit(user, 0)  # crash on shard 0, rerouted to shard 1
        counts = cluster.control.events.counts()
        assert counts.get("shard_failover") == 3
        assert counts.get("circuit_open") == 1
        assert cluster.open_breakers == 1
        assert cluster.workers[0].breaker.state == CircuitBreaker.OPEN
        # The rerouted queries actually landed on the sibling's queue.
        assert cluster.workers[1].batcher.pending == 3
        assert cluster.workers[0].batcher.pending == 0
        # While open, shard 0 is skipped without an attempt: the injector
        # (already spent anyway) sees no new visit.
        visits_before = inj.fired()
        cluster.submit(users[3], 0)
        assert inj.fired() == visits_before
        assert cluster.workers[1].batcher.pending == 4

    def test_breaker_closes_after_cooldown(self, unit_world, make_model):
        clock = ManualClock()
        inj = FaultInjector(
            FaultPlan(
                specs=[
                    FaultSpec("batcher.submit", "crash", times=3, match={"shard": 0})
                ]
            )
        )
        cluster = _cluster(unit_world, make_model(), clock, inj)
        users = _users_on_shard(0, 2, count=4)
        for user in users[:3]:
            cluster.submit(user, 0)
        assert cluster.open_breakers == 1
        clock.advance(0.06)  # past the 50 ms cooldown
        cluster.submit(users[3], 0)  # half-open trial; fault spent -> success
        assert cluster.open_breakers == 0
        assert cluster.workers[0].breaker.state == CircuitBreaker.CLOSED
        assert cluster.control.events.counts().get("circuit_closed") == 1
        assert cluster.workers[0].batcher.pending == 1  # served at home again

    def test_rerouting_is_deterministic(self, unit_world, make_model):
        def run():
            clock = ManualClock()
            inj = FaultInjector(
                FaultPlan(
                    specs=[
                        FaultSpec(
                            "batcher.submit", "crash", times=None, match={"shard": 1}
                        )
                    ]
                )
            )
            cluster = _cluster(unit_world, make_model(), clock, inj, num_shards=3)
            for user in range(30):
                cluster.submit(user, user % 3)
            return [
                (worker.shard_id, [q.user for q in worker.batcher._pending])
                for worker in cluster.workers
            ]

        assert run() == run()

    def test_all_shards_down_still_answers(self, unit_world, make_model):
        clock = ManualClock()
        inj = FaultInjector(
            FaultPlan(specs=[FaultSpec("batcher.submit", "crash", times=None)])
        )
        cluster = _cluster(unit_world, make_model(), clock, inj, num_shards=1)
        submitted = 6
        answered = []
        for user in range(submitted):
            answered.extend(cluster.submit(user, 0))
        # Zero dropped: every submit produced a (last-resort) response.
        assert len(answered) == submitted
        assert all(r.tier == TIER_POPULARITY for r in answered)
        assert all(r.items.size > 0 for r in answered)
        shed_events = cluster.control.events.events("load_shed")
        assert {e.attrs["reason"] for e in shed_events} == {"all_shards_unavailable"}
        merged = cluster.merged_metrics().summary()["degradation"]
        # First 3 submits crash-then-reroute until the breaker opens; all 6
        # are answered and counted as shed popularity responses.
        assert merged["shed"] == submitted
        assert merged["tiers"][TIER_POPULARITY] == submitted
