"""Degradation ladder: shedding, deadline budget, tier fallbacks, identity."""

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.retrieval import CascadeConfig
from repro.serving import (
    TIER_FULL,
    TIER_POPULARITY,
    TIER_PREFILTER,
    DegradationPolicy,
    ManualClock,
    ShardedCluster,
)


def _cluster(world, model, clock, policy=None, injector=None, **kwargs):
    kwargs.setdefault("num_shards", 1)
    kwargs.setdefault("max_batch_size", 4)
    kwargs.setdefault("flush_deadline_ms", 1e6)
    return ShardedCluster(
        world,
        model,
        seed=0,
        clock=clock.now,
        policy=policy,
        injector=injector,
        **kwargs,
    )


@pytest.fixture()
def world(unit_world):
    return unit_world


class TestAdmissionControl:
    def test_bounded_queue_sheds(self, world, make_model):
        clock = ManualClock()
        policy = DegradationPolicy(deadline_ms=1e6, max_queue=2)
        cluster = _cluster(world, make_model(), clock, policy=policy)
        assert cluster.submit(0, 0) == []
        assert cluster.submit(1, 0) == []
        shed = cluster.submit(2, 0)  # queue full: answered immediately
        assert len(shed) == 1
        assert shed[0].tier == TIER_POPULARITY
        assert shed[0].items.size > 0
        full = cluster.flush()
        assert [r.tier for r in full] == [TIER_FULL, TIER_FULL]
        worker = cluster.workers[0]
        assert worker.metrics.summary()["degradation"]["shed"] == 1
        assert worker.metrics.events.counts().get("load_shed") == 1
        # Nothing dropped: 3 submitted, 3 answered.
        assert worker.metrics.summary()["queries"] == 3

    def test_stale_queue_sheds(self, world, make_model):
        clock = ManualClock()
        policy = DegradationPolicy(deadline_ms=50.0)
        cluster = _cluster(world, make_model(), clock, policy=policy)
        cluster.submit(0, 0)
        clock.advance(0.1)  # oldest pending is now 100 ms stale
        shed = cluster.submit(1, 0)
        assert len(shed) == 1 and shed[0].tier == TIER_POPULARITY

    def test_popularity_ranking_is_deterministic(self, world, make_model):
        clock = ManualClock()
        cluster = _cluster(world, make_model(), clock)
        engine = cluster.workers[0].engine
        first = engine.degraded_ranking(0, 0, TIER_POPULARITY)
        second = engine.degraded_ranking(0, 0, TIER_POPULARITY)
        assert first[2] == TIER_POPULARITY
        assert np.array_equal(first[0], second[0])
        assert np.array_equal(first[1], second[1])


class TestDeadlineBudget:
    def test_slow_retrieval_drops_a_tier(self, world, make_model):
        clock = ManualClock()
        inj = FaultInjector(
            FaultPlan(
                specs=[
                    FaultSpec("engine.retrieve", "latency", latency_ms=100.0, times=1)
                ]
            ),
            sleeper=clock.advance,
        )
        policy = DegradationPolicy(deadline_ms=50.0)  # budget: 25 ms
        cluster = _cluster(world, make_model(), clock, policy=policy, injector=inj)
        degraded = cluster.submit(0, 0)
        assert len(degraded) == 1
        # No cascade on this fleet, so the prefilter request lands one tier
        # further down; the reason still records why it degraded.
        assert degraded[0].tier == TIER_POPULARITY
        events = cluster.workers[0].metrics.events.events("degraded")
        assert events[0].attrs["reason"] == "deadline_budget"
        # The fault is spent: the next submit queues for the full tier.
        assert cluster.submit(1, 0) == []

    def test_budget_degrade_serves_prefilter_with_cascade(self, world, make_model):
        clock = ManualClock()
        inj = FaultInjector(
            FaultPlan(
                specs=[
                    FaultSpec("engine.retrieve", "latency", latency_ms=100.0, times=1)
                ]
            ),
            sleeper=clock.advance,
        )
        policy = DegradationPolicy(deadline_ms=50.0)
        cluster = _cluster(
            world,
            make_model(trained=True),
            clock,
            policy=policy,
            injector=inj,
            cascade=CascadeConfig(retrieve_n=32, prune=8, nprobe=2),
        )
        degraded = cluster.submit(0, 0)
        assert len(degraded) == 1
        assert degraded[0].tier == TIER_PREFILTER
        assert degraded[0].items.size > 0


class TestFaultFallbacks:
    def test_retrieval_crash_answers_from_popularity(self, world, make_model):
        clock = ManualClock()
        inj = FaultInjector(
            FaultPlan(specs=[FaultSpec("engine.retrieve", "crash", times=1)])
        )
        cluster = _cluster(
            world, make_model(), clock, policy=DegradationPolicy(), injector=inj
        )
        result = cluster.submit(0, 0)
        assert len(result) == 1 and result[0].tier == TIER_POPULARITY
        events = cluster.workers[0].metrics.events.events("degraded")
        assert events[0].attrs["reason"] == "retrieve_failure"

    def test_flush_failure_degrades_the_whole_batch(self, world, make_model):
        clock = ManualClock()
        inj = FaultInjector(
            FaultPlan(specs=[FaultSpec("batcher.flush", "crash", times=1)])
        )
        cluster = _cluster(
            world,
            make_model(),
            clock,
            policy=DegradationPolicy(),
            injector=inj,
            max_batch_size=2,
        )
        cluster.submit(0, 0)
        results = cluster.submit(1, 0)  # size trigger -> flush -> injected crash
        assert len(results) == 2  # flush never raises; both queries answered
        assert all(r.tier == TIER_POPULARITY for r in results)
        reasons = {
            e.attrs["reason"]
            for e in cluster.workers[0].metrics.events.events("degraded")
        }
        assert reasons == {"flush:CrashFault"}
        assert cluster.workers[0].breaker.failures_total == 1
        # Next batch is healthy again and the breaker heals.
        cluster.submit(2, 0)
        full = cluster.submit(3, 0)
        assert [r.tier for r in full] == [TIER_FULL, TIER_FULL]


class TestDisabledPathIdentity:
    def test_armed_but_empty_injector_is_bitwise_identical(self, world, make_model):
        """No specs + generous policy must reproduce the plain fleet exactly."""

        def run(policy, injector):
            clock = ManualClock()
            cluster = _cluster(
                world,
                make_model(trained=True),
                clock,
                policy=policy,
                injector=injector,
            )
            results = []
            for user in range(12):
                results.extend(cluster.submit(user, user % 3))
                clock.advance(0.001)
            results.extend(cluster.flush())
            return results

        plain = run(policy=None, injector=None)
        armed = run(
            policy=DegradationPolicy(deadline_ms=1e9),
            injector=FaultInjector(FaultPlan()),
        )
        assert len(plain) == len(armed) > 0
        for a, b in zip(plain, armed):
            assert a.user == b.user
            assert a.tier == b.tier == TIER_FULL
            assert np.array_equal(a.items, b.items)
            assert np.array_equal(a.scores, b.scores)
