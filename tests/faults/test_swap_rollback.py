"""Transactional hot swap: a mid-drain failure never leaves a mixed fleet."""

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.serving import ManualClock, ShardedCluster, SwapFailed, shard_for_user


def _cluster(world, model, injector=None):
    return ShardedCluster(
        world,
        model,
        num_shards=2,
        seed=0,
        max_batch_size=100,
        flush_deadline_ms=1e6,
        clock=ManualClock().now,
        injector=injector,
    )


def _one_user_per_shard():
    users = {}
    for user in range(100):
        users.setdefault(shard_for_user(user, 2), user)
        if len(users) == 2:
            return users[0], users[1]
    raise AssertionError("hash did not cover both shards")


@pytest.fixture()
def failing_swap_cluster(unit_world, make_model):
    """Fleet on v0001 with the *next* swap rigged to crash at shard 1.

    ``after=1`` spares the bootstrap swap's visit, so the fault lands on
    the second shard of the v0002 deploy — after shard 0 already swapped.
    """
    inj = FaultInjector(
        FaultPlan(
            specs=[
                FaultSpec("swap.shard", "crash", after=1, times=1, match={"shard": 1})
            ]
        )
    )
    cluster = _cluster(unit_world, make_model(trained=True), injector=inj)
    cluster.swap_model(make_model(trained=True), "v0001")
    return cluster


class TestSwapRollback:
    def test_failed_swap_rolls_every_shard_back(
        self, failing_swap_cluster, make_model
    ):
        cluster = failing_swap_cluster
        with pytest.raises(SwapFailed, match="shard 1"):
            cluster.swap_model(make_model(trained=False), "v0002")
        # Consistent generation: all shards old, never mixed.
        assert cluster.model_version == "v0001"
        assert [w.engine.model_version for w in cluster.workers] == ["v0001", "v0001"]
        assert cluster.control.events.counts().get("rollback") == 1
        event = cluster.control.events.events("rollback")[0]
        assert event.attrs["version"] == "v0002"
        assert event.attrs["swapped_shards"] == 1

    def test_mid_drain_results_are_delivered_from_the_old_model(
        self, failing_swap_cluster, make_model
    ):
        cluster = failing_swap_cluster
        user_a, user_b = _one_user_per_shard()
        cluster.submit(user_a, 0)
        cluster.submit(user_b, 1)
        with pytest.raises(SwapFailed) as excinfo:
            cluster.swap_model(make_model(trained=False), "v0002")
        drained = excinfo.value.drained
        # Both shards' pending queries were flushed before the crash and
        # scored by the old generation — nothing dropped, nothing mixed.
        assert sorted(r.user for r in drained) == sorted([user_a, user_b])
        assert {r.model_version for r in drained} == {"v0001"}
        assert all(w.batcher.pending == 0 for w in cluster.workers)

    def test_post_failure_serving_matches_a_fleet_that_never_swapped(
        self, unit_world, make_model, failing_swap_cluster
    ):
        cluster = failing_swap_cluster
        control = _cluster(unit_world, make_model(trained=True))
        control.swap_model(make_model(trained=True), "v0001")

        with pytest.raises(SwapFailed):
            cluster.swap_model(make_model(trained=False), "v0002")
        control.flush()  # mirror the failed swap's drain (empty here)

        for user in range(10):
            got = cluster.submit(user, user % 3)
            want = control.submit(user, user % 3)
            assert len(got) == len(want)
        got, want = cluster.flush(), control.flush()
        assert len(got) == len(want) > 0
        for a, b in zip(got, want):
            assert a.user == b.user
            assert a.model_version == b.model_version == "v0001"
            assert np.array_equal(a.items, b.items)
            assert np.array_equal(a.scores, b.scores)

    def test_retry_after_rollback_succeeds(self, failing_swap_cluster, make_model):
        cluster = failing_swap_cluster
        replacement = make_model(trained=False)
        with pytest.raises(SwapFailed):
            cluster.swap_model(replacement, "v0002")
        cluster.swap_model(replacement, "v0002")  # fault spent: clean swap
        assert [w.engine.model_version for w in cluster.workers] == ["v0002", "v0002"]
        assert cluster.control.events.counts().get("rollback") == 1
