"""CircuitBreaker state machine on a manual clock."""

import pytest

from repro.faults import CircuitBreaker
from repro.serving import ManualClock


@pytest.fixture()
def clock():
    return ManualClock()


@pytest.fixture()
def breaker(clock):
    return CircuitBreaker(failure_threshold=3, cooldown_s=1.0, clock=clock)


class TestTrip:
    def test_closed_allows(self, breaker):
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_opens_after_consecutive_failures(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.opens == 1

    def test_success_resets_the_streak(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED


class TestRecovery:
    def _trip(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN

    def test_cooldown_gates_half_open(self, breaker, clock):
        self._trip(breaker)
        clock.advance(0.5)
        assert not breaker.allow()
        clock.advance(0.6)
        assert breaker.allow()  # admits the trial request
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_trial_success_closes(self, breaker, clock):
        self._trip(breaker)
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_trial_failure_retrips_immediately(self, breaker, clock):
        self._trip(breaker)
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 2
        assert not breaker.allow()

    def test_success_threshold_requires_streak(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=1.0, success_threshold=2, clock=clock
        )
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED


class TestStatus:
    def test_counters_and_status(self, breaker):
        breaker.record_success()
        for _ in range(3):
            breaker.record_failure()
        status = breaker.status()
        assert status["state"] == CircuitBreaker.OPEN
        assert status["opens"] == 1
        assert status["failures"] == 3
        assert status["successes"] == 1

    def test_validation(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0, clock=clock)
        with pytest.raises(ValueError):
            CircuitBreaker(success_threshold=0, clock=clock)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=-1.0, clock=clock)
