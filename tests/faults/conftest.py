"""Fixtures for the fault/chaos tests: a trained model + fleet parts.

Mirrors ``tests/online/conftest.py`` (directory-scoped fixtures don't cross
test packages); the session-scoped world/dataset fixtures come from the
top-level conftest.
"""

import pytest

from repro.core import ModelConfig, TrainConfig, build_model, train_model
from repro.utils.rng import generator


@pytest.fixture(scope="session")
def trained_state(unit_world_and_data):
    """State dict of one briefly-trained AW-MoE on the unit world."""
    _, train, _ = unit_world_and_data
    model = build_model("aw_moe", ModelConfig.unit(), train.meta, generator(0))
    train_model(
        model, train, TrainConfig(epochs=1, batch_size=64, learning_rate=3e-3), seed=8
    )
    return model.state_dict()


@pytest.fixture()
def make_model(unit_world_and_data, trained_state):
    """Factory for architecture-identical models; ``trained=True`` warm-loads
    the session's trained weights (each call returns an independent copy)."""
    _, train, _ = unit_world_and_data

    def factory(trained: bool = False, init_seed: int = 1):
        model = build_model(
            "aw_moe", ModelConfig.unit(), train.meta, generator(init_seed)
        )
        if trained:
            model.load_state_dict(trained_state)
        return model

    return factory


@pytest.fixture()
def online_train_config():
    return TrainConfig(epochs=1, batch_size=64, learning_rate=1e-3)
