"""Process-fleet chaos: SIGKILL mid-batch, the default fleet drill, and
the extended default plan/rule set."""

import time

import numpy as np
import pytest

from repro.faults import (
    FaultInjector,
    default_chaos_plan,
    default_fault_alert_rules,
    default_fleet_chaos_plan,
    run_fleet_soak,
)
from repro.infer import shared_memory_available
from repro.obs import AlertManager
from repro.serving import FleetSupervisor, ZipfLoadGenerator
from repro.serving.fleet import fleet_config

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="POSIX shared memory unavailable"
)


@pytest.fixture()
def generator(unit_world):
    return ZipfLoadGenerator(np.random.default_rng(5), world=unit_world)


def _slab_segments():
    import os

    return [n for n in os.listdir("/dev/shm") if n.startswith("repro_slab_")]


class TestDefaultPlanExtensions:
    def test_default_chaos_plan_covers_the_fleet_points(self):
        points = {spec.point for spec in default_chaos_plan().specs}
        assert {"worker.exec", "worker.heartbeat", "slab.publish"} <= points

    def test_fleet_points_are_inert_in_process(self):
        # The in-process path never visits worker.* / slab.* points, and
        # per-spec RNG streams mean appending them cannot shift the
        # schedules of the pre-existing specs.
        injector = FaultInjector(default_chaos_plan())
        for _ in range(50):
            try:
                injector.fire("trainer.update")
            except Exception:
                pass
        assert all(
            record["point"].startswith("trainer.") for record in injector.log
        )
        assert injector.fired("worker.exec") == 0
        assert injector.fired("slab.publish") == 0

    def test_default_rules_include_fleet_health(self):
        rules = default_fault_alert_rules()
        names = {rule.split(":")[0] for rule in rules}
        assert {"worker-flap", "worker-quarantine", "fleet-capacity"} <= names
        # Parse cleanly and stay quiet on a snapshot without fleet scalars:
        # absent data must not page the in-process path.
        manager = AlertManager(rules)
        fired = manager.evaluate({"shed_rate": 0.0, "open_breakers": 0.0}, now=0.0)
        assert fired == []

    def test_fleet_rules_fire_on_bad_telemetry(self):
        manager = AlertManager(default_fault_alert_rules())
        fired = {
            transition.rule.name
            for transition in manager.evaluate(
                {"worker_restarts": 5.0, "quarantined_workers": 1.0,
                 "workers_available": 0.0},
                now=0.0,
            )
        }
        assert {"worker-flap", "worker-quarantine", "fleet-capacity"} <= fired


class TestSigkillMidBatch:
    def test_zero_drops_and_restart_within_deadline(
        self, unit_world, make_model, generator
    ):
        # Satellite 1: SIGKILL a worker while its batcher holds queued
        # requests; nothing may drop and the supervisor must restart it
        # within the heartbeat deadline plus backoff.
        config = fleet_config(
            num_workers=2,
            max_batch_size=8,
            flush_deadline_ms=1e6,  # keep requests queued in the batcher
            heartbeat_deadline_s=0.5,
            restart_backoff_s=0.02,
        )
        with FleetSupervisor(unit_world, make_model(), config) as fleet:
            traffic = generator.generate(30)
            results = []
            killed_at = None
            for index, event in enumerate(traffic):
                results.extend(fleet.submit(event.user, event.query_category))
                if index == 9:
                    assert fleet.kill_worker(0) is not None
                    killed_at = time.monotonic()
            results.extend(fleet.flush())
            deadline = killed_at + config.heartbeat_deadline_s + 1.0
            while time.monotonic() < deadline:
                fleet.poll()
                if fleet.workers[0].state == "healthy":
                    break
                time.sleep(0.01)
            recovered_in = time.monotonic() - killed_at
            assert fleet.workers[0].state == "healthy"
            assert recovered_in < config.heartbeat_deadline_s + 1.0
            assert len(results) >= len(traffic)  # zero drops (at-least-once)
            assert {r.user for r in results} >= {e.user for e in traffic}
            counts = fleet.control.events.counts()
            assert counts.get("worker_died", 0) >= 1
            assert counts.get("worker_restarted", 0) >= 1


class TestFleetSoak:
    def test_default_fleet_drill_survives_with_zero_drops(
        self, unit_world, make_model, generator
    ):
        # The full drill: worker 0 OOM-killed mid-batch, the last worker
        # declared hung after a lost-heartbeat burst, the first post-
        # bootstrap publish torn, and worker 0's first respawn failing
        # transiently.  Invariants: zero drops, >= 1 automatic restart,
        # no leaked shared-memory segments.
        plan = default_fleet_chaos_plan(seed=3, workers=2)
        config = fleet_config(
            num_workers=2,
            heartbeat_interval_s=0.02,
            heartbeat_deadline_s=0.2,
            restart_backoff_s=0.02,
        )
        fleet = FleetSupervisor(
            unit_world, make_model(), config, version="v1", fault_plan=plan
        )
        try:
            report = run_fleet_soak(
                fleet,
                generator,
                events=120,
                swap_models=[(make_model(trained=True), "v2")],
                settle_s=0.5,
            )
        finally:
            fleet.stop()
        assert report["dropped"] <= 0  # at-least-once: duplicates allowed
        assert report["restarts"] >= 1
        assert report["swaps"] == 1
        assert report["generation"] == 1
        assert report["event_counts"].get("worker_died", 0) >= 1
        # The torn publish was retried: two unlink reasons show up.
        assert report["event_counts"].get("slab_unlinked", 0) >= 2
        assert not _slab_segments()  # nothing leaked

    def test_soak_report_is_json_serializable(
        self, unit_world, make_model, generator
    ):
        import json

        config = fleet_config(num_workers=2)
        with FleetSupervisor(unit_world, make_model(), config) as fleet:
            report = run_fleet_soak(fleet, generator, events=20)
        parsed = json.loads(json.dumps(report))
        assert parsed["submitted"] == 20
        assert parsed["dropped"] <= 0
        assert parsed["telemetry"]["workers_available"] == 2.0
