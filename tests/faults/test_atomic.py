"""Atomic writes and torn-tail recovery: old state or new state, never half."""

import json

import pytest

from repro.faults import FaultInjector, FaultPlan, FaultSpec, TransientFault
from repro.utils import atomic_write_bytes, atomic_write_text, crc32_bytes, recover_jsonl


class TestAtomicWrite:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "state.bin"
        atomic_write_bytes(str(path), b"hello")
        assert path.read_bytes() == b"hello"
        atomic_write_text(str(path), "world")
        assert path.read_text() == "world"

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "state.bin"
        atomic_write_bytes(str(path), b"x")
        assert path.read_bytes() == b"x"

    def test_torn_write_leaves_destination_untouched(self, tmp_path):
        path = tmp_path / "state.bin"
        atomic_write_bytes(str(path), b"previous-good-state")
        inj = FaultInjector(
            FaultPlan(
                specs=[
                    FaultSpec("registry.save_index", "torn_write", truncate_at=0.5)
                ]
            )
        )
        with pytest.raises(TransientFault):
            atomic_write_bytes(
                str(path), b"new-state", injector=inj, point="registry.save_index"
            )
        # The published file is the previous state; the torn bytes are in tmp.
        assert path.read_bytes() == b"previous-good-state"
        tmp = tmp_path / "state.bin.tmp"
        assert tmp.read_bytes() == b"new-state"[: int(len(b"new-state") * 0.5)]
        # Retrying (fault spent) succeeds.
        atomic_write_bytes(
            str(path), b"new-state", injector=inj, point="registry.save_index"
        )
        assert path.read_bytes() == b"new-state"

    def test_crc32_is_stable(self):
        assert crc32_bytes(b"abc") == crc32_bytes(b"abc")
        assert crc32_bytes(b"abc") != crc32_bytes(b"abd")


class TestRecoverJsonl:
    def test_missing_file(self, tmp_path):
        assert recover_jsonl(str(tmp_path / "nope.jsonl")) == ([], 0)

    def test_clean_file(self, tmp_path):
        path = tmp_path / "log.jsonl"
        rows = [{"i": 0}, {"i": 1}]
        path.write_text("".join(json.dumps(row) + "\n" for row in rows))
        records, dropped = recover_jsonl(str(path))
        assert records == rows
        assert dropped == 0

    def test_torn_tail_dropped(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text(json.dumps({"i": 0}) + "\n" + '{"i": 1, "x"\n')
        records, dropped = recover_jsonl(str(path))
        assert records == [{"i": 0}]
        assert dropped == 1

    def test_non_object_lines_dropped(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"i": 0}\n[1, 2]\n42\n\n{"i": 1}\n')
        records, dropped = recover_jsonl(str(path))
        assert records == [{"i": 0}, {"i": 1}]
        assert dropped == 2
