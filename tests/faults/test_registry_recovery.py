"""ModelRegistry crash-safety: checksums, quarantine, index recovery."""

import json
import os

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.online import CorruptCheckpointError, ModelRegistry


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(str(tmp_path / "registry"), clock=lambda: 0.0)


class TestCheckpointIntegrity:
    def test_register_records_a_checksum(self, registry, make_model):
        entry = registry.register(make_model())
        assert entry.checksum is not None
        # And a clean load verifies against it.
        registry.load_into(entry.version, make_model())

    def test_corrupted_checkpoint_raises_typed_error(self, tmp_path, make_model):
        inj = FaultInjector(
            FaultPlan(specs=[FaultSpec("registry.checkpoint", "corrupt")])
        )
        registry = ModelRegistry(
            str(tmp_path / "registry"), clock=lambda: 0.0, injector=inj
        )
        entry = registry.register(make_model())
        with pytest.raises(CorruptCheckpointError, match="CRC32"):
            registry.load_into(entry.version, make_model())

    def test_manual_bit_flip_is_caught(self, registry, make_model):
        entry = registry.register(make_model())
        with open(entry.path, "r+b") as handle:
            handle.seek(os.path.getsize(entry.path) // 2)
            handle.write(b"\xff\xff\xff\xff")
        with pytest.raises(CorruptCheckpointError):
            registry.load_into(entry.version, make_model())

    def test_missing_checkpoint_file(self, registry, make_model):
        entry = registry.register(make_model())
        os.remove(entry.path)
        with pytest.raises(CorruptCheckpointError, match="missing"):
            registry.load_into(entry.version, make_model())

    def test_non_finite_restored_tensors_are_caught(self, registry, make_model):
        # A NaN-poisoned model checkpoints cleanly (the CRC matches what was
        # written); the finiteness check is the layer that catches it.
        model = make_model()
        state = model.state_dict()
        name = next(iter(state))
        poisoned = dict(state)
        poisoned[name] = np.full_like(state[name], np.nan)
        model.load_state_dict(poisoned)
        entry = registry.register(model)
        with pytest.raises(CorruptCheckpointError, match="non-finite"):
            registry.load_into(entry.version, make_model())

    def test_pre_checksum_records_still_load(self, registry, make_model):
        entry = registry.register(make_model())
        entry.checksum = None  # simulate a record written before checksums
        registry.load_into(entry.version, make_model())


class TestQuarantine:
    def test_quarantined_cannot_be_promoted(self, registry, make_model):
        entry = registry.register(make_model())
        registry.quarantine(entry.version)
        assert registry.get(entry.version).status == "quarantined"
        with pytest.raises(ValueError, match="quarantined"):
            registry.promote(entry.version)

    def test_production_cannot_be_quarantined(self, registry, make_model):
        entry = registry.register(make_model())
        registry.promote(entry.version)
        with pytest.raises(ValueError, match="production"):
            registry.quarantine(entry.version)

    def test_quarantine_persists(self, tmp_path, make_model):
        root = str(tmp_path / "registry")
        registry = ModelRegistry(root, clock=lambda: 0.0)
        entry = registry.register(make_model())
        registry.quarantine(entry.version)
        reloaded = ModelRegistry(root, clock=lambda: 0.0)
        assert reloaded.get(entry.version).status == "quarantined"


class TestIndexRecovery:
    def test_torn_index_write_is_absorbed(self, tmp_path, make_model):
        inj = FaultInjector(
            FaultPlan(
                specs=[FaultSpec("registry.save_index", "torn_write", times=1)]
            )
        )
        root = str(tmp_path / "registry")
        registry = ModelRegistry(root, clock=lambda: 0.0, injector=inj)
        entry = registry.register(make_model())  # save torn once, then retried
        assert registry.torn_index_writes == 1
        # The published index is whole and CRC-valid.
        reloaded = ModelRegistry(root, clock=lambda: 0.0)
        assert reloaded.recovery is None
        assert reloaded.get(entry.version).checksum == entry.checksum

    def test_corrupt_index_recovers_from_backup(self, tmp_path, make_model):
        root = str(tmp_path / "registry")
        registry = ModelRegistry(root, clock=lambda: 0.0)
        registry.register(make_model())
        registry.register(make_model())  # second save leaves a .bak of the first
        index = os.path.join(root, "registry.json")
        with open(index, "w", encoding="utf-8") as handle:
            handle.write('{"versions": [{"torn...')
        reloaded = ModelRegistry(root, clock=lambda: 0.0)
        assert reloaded.recovery is not None
        assert reloaded.recovery["source"] == "backup"
        # The backup held v1; the checkpoint scan re-found v2 (as candidate).
        assert sorted(v.version for v in reloaded.versions) == [1, 2]
        assert os.path.exists(index + ".corrupt")
        # The repaired index is persisted: a third load is clean.
        assert ModelRegistry(root, clock=lambda: 0.0).recovery is None

    def test_crc_mismatch_detected(self, tmp_path, make_model):
        root = str(tmp_path / "registry")
        registry = ModelRegistry(root, clock=lambda: 0.0)
        registry.register(make_model())
        index = os.path.join(root, "registry.json")
        with open(index, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["versions"][0]["metrics"] = {"auc": 0.99}  # tampered
        with open(index, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        reloaded = ModelRegistry(root, clock=lambda: 0.0)
        assert reloaded.recovery is not None  # CRC caught the mutation

    def test_rebuild_from_checkpoint_scan(self, tmp_path, make_model):
        root = str(tmp_path / "registry")
        registry = ModelRegistry(root, clock=lambda: 0.0)
        v1 = registry.register(make_model())
        registry.register(make_model())
        os.remove(os.path.join(root, "registry.json"))
        bak = os.path.join(root, "registry.json.bak")
        if os.path.exists(bak):
            os.remove(bak)
        reloaded = ModelRegistry(root, clock=lambda: 0.0)
        assert reloaded.recovery is not None
        assert reloaded.recovery["source"] == "scan"
        assert sorted(v.version for v in reloaded.versions) == [1, 2]
        # Lifecycle was lost with the index: everything is a candidate, with
        # a freshly computed checksum that still verifies the bytes.
        assert all(v.status == "candidate" for v in reloaded.versions)
        assert reloaded.get(1).checksum == v1.checksum
        reloaded.load_into(1, make_model())

    def test_scan_quarantines_unreadable_checkpoints(self, tmp_path, make_model):
        root = str(tmp_path / "registry")
        registry = ModelRegistry(root, clock=lambda: 0.0)
        registry.register(make_model())
        registry.register(make_model())
        # v2's file is garbage; the index is gone.
        v2_path = os.path.join(root, "v0002.npz")
        with open(v2_path, "wb") as handle:
            handle.write(b"not a checkpoint")
        os.remove(os.path.join(root, "registry.json"))
        bak = os.path.join(root, "registry.json.bak")
        if os.path.exists(bak):
            os.remove(bak)
        reloaded = ModelRegistry(root, clock=lambda: 0.0)
        assert [v.version for v in reloaded.versions] == [1]
        assert os.path.exists(v2_path + ".corrupt")
        assert not os.path.exists(v2_path)
