"""FaultInjector: deterministic schedules, gates, filters, and the no-op."""

import json

import pytest

from repro.faults import (
    NULL_INJECTOR,
    CrashFault,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    TransientFault,
)
from repro.obs import EventLog


class TestFaultSpecValidation:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            FaultSpec("no.such.point", "crash")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("batcher.submit", "explode")

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("batcher.submit", "crash", probability=0.0)
        with pytest.raises(ValueError):
            FaultSpec("batcher.submit", "crash", probability=1.5)

    def test_bad_counts_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("batcher.submit", "crash", after=-1)
        with pytest.raises(ValueError):
            FaultSpec("batcher.submit", "crash", times=0)


class TestGates:
    def test_after_skips_leading_visits(self):
        inj = FaultInjector(
            FaultPlan(specs=[FaultSpec("batcher.submit", "crash", after=2, times=1)])
        )
        inj.fire("batcher.submit")
        inj.fire("batcher.submit")
        with pytest.raises(CrashFault):
            inj.fire("batcher.submit")

    def test_times_caps_firings(self):
        inj = FaultInjector(
            FaultPlan(specs=[FaultSpec("batcher.submit", "transient", times=2)])
        )
        for _ in range(2):
            with pytest.raises(TransientFault):
                inj.fire("batcher.submit")
        inj.fire("batcher.submit")  # exhausted: clean
        assert inj.fired("batcher.submit") == 2

    def test_match_filters_on_context(self):
        inj = FaultInjector(
            FaultPlan(
                specs=[
                    FaultSpec("batcher.submit", "crash", times=None, match={"shard": 1})
                ]
            )
        )
        inj.fire("batcher.submit", shard=0)  # clean
        with pytest.raises(CrashFault):
            inj.fire("batcher.submit", shard=1)

    def test_bound_context_is_merged_and_call_site_wins(self):
        inj = FaultInjector(
            FaultPlan(
                specs=[
                    FaultSpec("batcher.submit", "crash", times=None, match={"shard": 1})
                ]
            )
        )
        bound = inj.bind(shard=1)
        with pytest.raises(CrashFault):
            bound.fire("batcher.submit")
        bound.fire("batcher.submit", shard=0)  # explicit ctx overrides bound

    def test_latency_uses_the_sleeper(self):
        slept = []
        inj = FaultInjector(
            FaultPlan(
                specs=[FaultSpec("engine.retrieve", "latency", latency_ms=25.0)]
            ),
            sleeper=slept.append,
        )
        inj.fire("engine.retrieve")
        assert slept == [0.025]


class TestDeterminism:
    def _schedule(self, plan, visits=200):
        inj = FaultInjector(plan)
        fired = []
        for visit in range(visits):
            try:
                inj.fire("batcher.submit")
            except CrashFault:
                fired.append(visit)
        return fired

    def test_same_plan_same_schedule(self):
        plan = FaultPlan(
            seed=3,
            specs=[FaultSpec("batcher.submit", "crash", probability=0.3, times=None)],
        )
        assert self._schedule(plan) == self._schedule(plan)
        assert self._schedule(plan)  # and it actually fires

    def test_adding_a_spec_never_shifts_earlier_specs(self):
        base = FaultSpec("batcher.submit", "crash", probability=0.3, times=None)
        extra = FaultSpec("canary.judge", "transient", probability=0.5, times=None)
        alone = self._schedule(FaultPlan(seed=3, specs=[base]))
        with_extra = self._schedule(FaultPlan(seed=3, specs=[base, extra]))
        assert alone == with_extra

    def test_different_seed_different_schedule(self):
        spec = FaultSpec("batcher.submit", "crash", probability=0.3, times=None)
        assert self._schedule(FaultPlan(seed=0, specs=[spec])) != self._schedule(
            FaultPlan(seed=1, specs=[spec])
        )


class TestSideChannels:
    def test_truncate_fraction(self):
        inj = FaultInjector(
            FaultPlan(
                specs=[FaultSpec("clicklog.append", "torn_write", truncate_at=0.25)]
            )
        )
        assert inj.truncate_fraction("clicklog.append") == 0.25
        assert inj.truncate_fraction("clicklog.append") is None  # times=1 spent

    def test_corrupt_file_flips_bytes(self, tmp_path):
        path = tmp_path / "blob.bin"
        original = bytes(range(200))
        path.write_bytes(original)
        inj = FaultInjector(
            FaultPlan(specs=[FaultSpec("registry.checkpoint", "corrupt")])
        )
        assert inj.corrupt_file("registry.checkpoint", str(path)) is True
        mutated = path.read_bytes()
        assert mutated != original
        assert len(mutated) == len(original)  # flipped in place, not truncated
        assert inj.corrupt_file("registry.checkpoint", str(path)) is False

    def test_fired_log_and_events(self, tmp_path):
        events = EventLog()
        inj = FaultInjector(
            FaultPlan(specs=[FaultSpec("trainer.update", "transient")]),
            events=events,
        )
        with pytest.raises(TransientFault):
            inj.fire("trainer.update", update=4)
        assert inj.fired() == 1
        assert inj.log[0]["point"] == "trainer.update"
        assert inj.log[0]["update"] == 4
        assert events.counts()["fault_injected"] == 1
        out = tmp_path / "faults.jsonl"
        inj.to_jsonl(str(out))
        lines = out.read_text().splitlines()
        assert json.loads(lines[0])["kind"] == "transient"


class TestNullInjector:
    def test_everything_is_a_no_op(self, tmp_path):
        NULL_INJECTOR.fire("batcher.submit", shard=0)
        assert NULL_INJECTOR.truncate_fraction("clicklog.append") is None
        assert NULL_INJECTOR.corrupt_file("registry.checkpoint", "/nope") is False
        assert NULL_INJECTOR.bind(shard=1) is NULL_INJECTOR
        assert NULL_INJECTOR.fired() == 0
        assert not NULL_INJECTOR.enabled
        out = tmp_path / "empty.jsonl"
        NULL_INJECTOR.to_jsonl(str(out))
        assert out.read_text() == ""
