"""End-to-end integration: full pipelines from world to metrics."""

import numpy as np
import pytest

from repro.core import ModelConfig, TrainConfig, build_model, train_model
from repro.data import WorldConfig
from repro.data.amazon import make_amazon_datasets
from repro.data.splits import standard_test_splits
from repro.eval import evaluate_ranking, paired_bootstrap_pvalue, predict_scores
from repro.eval.auc import global_auc
from repro.nn import load_module, save_module
from repro.utils import SeedBank


class TestSearchPipeline:
    @pytest.fixture(scope="class")
    def trained(self, unit_world_and_data):
        _, train, test = unit_world_and_data
        bank = SeedBank(31)
        config = TrainConfig(epochs=2, batch_size=64, learning_rate=3e-3)
        models = {}
        for name in ["dnn", "aw_moe"]:
            model = build_model(name, ModelConfig.unit(), train.meta, bank.child(name))
            train_model(model, train, config, seed=8)
            models[name] = model
        return models, test

    def test_models_beat_chance(self, trained):
        models, test = trained
        for name, model in models.items():
            metrics = evaluate_ranking(model, test)
            assert metrics["auc"] > 0.55, f"{name} failed to learn"

    def test_long_tail_splits_evaluable(self, trained):
        models, test = trained
        splits = standard_test_splits(test)
        for split in splits.values():
            metrics = evaluate_ranking(models["aw_moe"], split)
            assert 0.0 <= metrics["auc"] <= 1.0

    def test_bootstrap_pvalue_runs_between_models(self, trained):
        models, test = trained
        scores_a = predict_scores(models["dnn"], test)
        scores_b = predict_scores(models["aw_moe"], test)
        p = paired_bootstrap_pvalue(
            scores_a, scores_b, test.label, test.session_id,
            num_resamples=100, rng=np.random.default_rng(0),
        )
        assert 0.0 < p <= 1.0

    def test_checkpoint_round_trip(self, trained, tmp_path):
        models, test = trained
        model = models["aw_moe"]
        path = str(tmp_path / "awmoe")
        save_module(model, path)
        clone = build_model("aw_moe", ModelConfig.unit(), test.meta, np.random.default_rng(99))
        load_module(clone, path)
        batch = test.batch_at(np.arange(32))
        assert np.allclose(model.predict_logits(batch), clone.predict_logits(batch), atol=1e-6)


class TestContrastivePipeline:
    def test_cl_training_end_to_end(self, unit_world_and_data):
        _, train, test = unit_world_and_data
        bank = SeedBank(33)
        model = build_model("aw_moe", ModelConfig.unit(), train.meta, bank.child("m"))
        config = TrainConfig(epochs=2, batch_size=64, learning_rate=3e-3).with_contrastive()
        log = train_model(model, train, config, seed=9)
        assert log.last("cl_loss") is not None
        metrics = evaluate_ranking(model, test)
        assert metrics["auc"] > 0.55

    def test_cl_pulls_masked_view_towards_anchor(self, unit_world_and_data):
        """The intended effect of §III-D: after CL training, a user's masked
        view is closer (in gate space) to their own anchor than other users
        are on average."""
        _, train, test = unit_world_and_data
        bank = SeedBank(34)
        model = build_model("aw_moe", ModelConfig.unit(), train.meta, bank.child("m"))
        config = TrainConfig(epochs=3, batch_size=64, learning_rate=3e-3).with_contrastive()
        train_model(model, train, config, seed=10)

        from repro.data.masking import random_mask

        batch = test.batch_at(np.arange(128))
        anchor = model.gate_outputs(batch)
        masked = random_mask(batch["behavior_mask"], np.random.default_rng(5), 0.3)
        import repro.nn as nn

        with nn.no_grad():
            positive = model.gate_vector(batch, mask_override=masked).numpy()
        own = (anchor * positive).sum(axis=1)
        shuffled = (anchor * np.roll(positive, 1, axis=0)).sum(axis=1)
        assert own.mean() > shuffled.mean()


class TestRecoPipeline:
    def test_amazon_end_to_end(self):
        _, train, test = make_amazon_datasets(WorldConfig.unit(), seed=17)
        bank = SeedBank(35)
        model = build_model("aw_moe", ModelConfig.unit(task="reco"), train.meta, bank.child("m"))
        train_model(model, train, TrainConfig(epochs=3, batch_size=64, learning_rate=3e-3), seed=11)
        auc = global_auc(predict_scores(model, test), test.label)
        assert auc > 0.55

    def test_gate_uses_target_in_reco(self):
        _, train, _ = make_amazon_datasets(WorldConfig.unit(), seed=17)
        model = build_model("aw_moe", ModelConfig.unit(task="reco"), train.meta, np.random.default_rng(0))
        batch = train.batch_at(np.arange(8))
        base = model.gate_outputs(batch)
        rolled = {k: v.copy() for k, v in batch.items()}
        rolled["target_item"] = np.roll(rolled["target_item"], 1)
        rolled["target_category"] = np.roll(rolled["target_category"], 1)
        rolled["target_dense"] = np.roll(rolled["target_dense"], 1, axis=0)
        assert not np.allclose(base, model.gate_outputs(rolled))


class TestGateRepresentations:
    def test_gate_vectors_vary_by_user_group(self, unit_world_and_data):
        """The mechanism behind Fig. 7: after training, gate outputs of
        new users differ from those of old users."""
        _, train, test = unit_world_and_data
        bank = SeedBank(36)
        model = build_model("aw_moe", ModelConfig.unit(), train.meta, bank.child("m"))
        train_model(model, train, TrainConfig(epochs=2, batch_size=64, learning_rate=3e-3), seed=12)
        batch = test.batch_at(np.arange(len(test)))
        gates = model.gate_outputs(batch)
        lengths = test.behavior_lengths()
        new_users = lengths == 0
        if new_users.sum() >= 2 and (~new_users).sum() >= 2:
            centroid_new = gates[new_users].mean(axis=0)
            centroid_old = gates[~new_users].mean(axis=0)
            assert not np.allclose(centroid_new, centroid_old, atol=1e-3)
