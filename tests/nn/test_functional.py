"""Functional API aliases delegate to the tensor methods."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F

RNG = np.random.default_rng(21)


class TestFunctionalAliases:
    def test_relu(self):
        x = Tensor(np.array([-1.0, 2.0]))
        assert np.allclose(F.relu(x).numpy(), x.relu().numpy())

    def test_sigmoid(self):
        x = Tensor(RNG.random(5))
        assert np.allclose(F.sigmoid(x).numpy(), x.sigmoid().numpy())

    def test_tanh_exp_log_sqrt_abs(self):
        x = Tensor(RNG.random(5) + 0.5)
        assert np.allclose(F.tanh(x).numpy(), x.tanh().numpy())
        assert np.allclose(F.exp(x).numpy(), x.exp().numpy())
        assert np.allclose(F.log(x).numpy(), x.log().numpy())
        assert np.allclose(F.sqrt(x).numpy(), x.sqrt().numpy())
        assert np.allclose(F.abs(x).numpy(), x.abs().numpy())

    def test_leaky_relu_slope(self):
        x = Tensor(np.array([-2.0]))
        assert F.leaky_relu(x, 0.5).numpy()[0] == pytest.approx(-1.0)

    def test_clip(self):
        x = Tensor(np.array([-1.0, 0.5, 2.0]))
        assert list(F.clip(x, 0.0, 1.0).numpy()) == [0.0, 0.5, 1.0]

    def test_matmul(self):
        a = Tensor(RNG.random((2, 3)))
        b = Tensor(RNG.random((3, 4)))
        assert np.allclose(F.matmul(a, b).numpy(), a.matmul(b).numpy())

    def test_free_functions_reexported(self):
        x = Tensor(RNG.random((2, 3)))
        assert np.allclose(F.softmax(x).numpy().sum(axis=-1), 1.0, atol=1e-6)
        joined = F.concat([x, x], axis=1)
        assert joined.shape == (2, 6)

    def test_gradients_flow_through_aliases(self):
        x = Tensor(RNG.random((2, 2)), requires_grad=True, dtype=np.float64)
        F.relu(F.matmul(x, x)).sum().backward()
        assert x.grad is not None
