"""Optimizers and schedulers."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, AdamW, CosineLR, Parameter, StepLR, clip_grad_norm


def quadratic_step(optimizer, param, target=0.0):
    """One gradient step on f(w) = 0.5 (w - target)^2."""
    param.grad = param.data - target
    optimizer.step()


class TestSGD:
    def test_plain_step(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1)
        quadratic_step(opt, p)
        assert p.numpy()[0] == pytest.approx(0.9)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0], dtype=np.float32))
        opt = SGD([p], lr=0.3)
        for _ in range(50):
            quadratic_step(opt, p)
        assert abs(p.numpy()[0]) < 1e-3

    def test_momentum_accelerates(self):
        p_plain = Parameter(np.array([5.0], dtype=np.float32))
        p_momentum = Parameter(np.array([5.0], dtype=np.float32))
        plain = SGD([p_plain], lr=0.05)
        momentum = SGD([p_momentum], lr=0.05, momentum=0.9)
        for _ in range(10):
            quadratic_step(plain, p_plain)
            quadratic_step(momentum, p_momentum)
        assert abs(p_momentum.numpy()[0]) < abs(p_plain.numpy()[0])

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert p.numpy()[0] == pytest.approx(0.9)

    def test_skips_params_without_grad(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        SGD([p], lr=0.1).step()
        assert p.numpy()[0] == 1.0

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_non_positive_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)


class TestAdam:
    def test_first_step_size_is_lr(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = Adam([p], lr=0.1)
        p.grad = np.array([0.5], dtype=np.float32)
        opt.step()
        # Bias correction makes the first step ≈ lr * sign(grad).
        assert p.numpy()[0] == pytest.approx(1.0 - 0.1, abs=1e-4)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([3.0], dtype=np.float32))
        opt = Adam([p], lr=0.2)
        for _ in range(150):
            quadratic_step(opt, p)
        assert abs(p.numpy()[0]) < 5e-2

    def test_zero_grad(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = Adam([p], lr=0.1)
        p.grad = np.ones(1, dtype=np.float32)
        opt.zero_grad()
        assert p.grad is None


class TestAdamW:
    def test_decay_is_decoupled(self):
        # With zero gradient, AdamW still shrinks weights; classic Adam with
        # folded-in decay would move them through the adaptive scaling.
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert p.numpy()[0] == pytest.approx(1.0 - 0.1 * 0.5, abs=1e-6)

    def test_paper_default_lr(self):
        opt = AdamW([Parameter(np.zeros(1))])
        assert opt.lr == pytest.approx(1e-4)

    def test_converges(self):
        p = Parameter(np.array([2.0], dtype=np.float32))
        opt = AdamW([p], lr=0.2, weight_decay=0.0)
        for _ in range(100):
            quadratic_step(opt, p)
        assert abs(p.numpy()[0]) < 1e-2


class TestSchedulers:
    def test_step_lr_halves(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert opt.lr == 0.5

    def test_step_lr_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepLR(SGD([Parameter(np.zeros(1))], lr=1.0), step_size=0)

    def test_cosine_reaches_min(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = CosineLR(opt, total_steps=10, min_lr=0.1)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.1, abs=1e-6)

    def test_cosine_monotone_decrease(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = CosineLR(opt, total_steps=5)
        values = []
        for _ in range(5):
            sched.step()
            values.append(opt.lr)
        assert values == sorted(values, reverse=True)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 0.1, dtype=np.float32)
        norm = clip_grad_norm([p], max_norm=10.0)
        assert norm == pytest.approx(0.2)
        assert np.allclose(p.grad, 0.1)

    def test_clips_to_max_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0, dtype=np.float32)
        clip_grad_norm([p], max_norm=1.0)
        total = np.sqrt((p.grad.astype(np.float64) ** 2).sum())
        assert total == pytest.approx(1.0, rel=1e-5)

    def test_global_norm_across_params(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        a.grad = np.array([3.0], dtype=np.float32)
        b.grad = np.array([4.0], dtype=np.float32)
        norm = clip_grad_norm([a, b], max_norm=100.0)
        assert norm == pytest.approx(5.0)
