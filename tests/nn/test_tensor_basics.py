"""Tensor construction, introspection and non-autograd behaviour."""

import numpy as np
import pytest

from repro.nn import Tensor, is_grad_enabled, no_grad


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float32

    def test_from_array_keeps_values(self):
        data = np.arange(6, dtype=np.float64).reshape(2, 3)
        t = Tensor(data)
        assert np.allclose(t.numpy(), data)

    def test_dtype_override(self):
        t = Tensor([1.0], dtype=np.float64)
        assert t.dtype == np.float64

    def test_from_tensor_copies_reference(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert np.allclose(b.numpy(), a.numpy())

    def test_requires_grad_flag(self):
        assert Tensor([1.0], requires_grad=True).requires_grad
        assert not Tensor([1.0]).requires_grad

    def test_scalar(self):
        t = Tensor(3.5)
        assert t.shape == ()
        assert t.item() == pytest.approx(3.5)


class TestIntrospection:
    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.shape == (2, 3, 4)
        assert t.ndim == 3
        assert t.size == 24

    def test_len(self):
        assert len(Tensor(np.zeros((5, 2)))) == 5

    def test_repr_mentions_shape(self):
        assert "shape=(2, 2)" in repr(Tensor(np.zeros((2, 2))))

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad=True" in repr(Tensor([1.0], requires_grad=True))

    def test_item_requires_single_element(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()


class TestDetach:
    def test_detach_shares_data(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert d.numpy() is t.numpy()
        assert not d.requires_grad

    def test_detach_cuts_graph(self):
        t = Tensor([1.0], requires_grad=True)
        out = (t * 2.0).detach() * 3.0
        assert not out.requires_grad

    def test_copy_is_independent(self):
        t = Tensor([1.0, 2.0])
        c = t.copy()
        c.data[0] = 99.0
        assert t.numpy()[0] == 1.0


class TestNoGrad:
    def test_context_disables_recording(self):
        t = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = t * 2.0
        assert not out.requires_grad

    def test_context_restores_flag(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_nested_contexts(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()

    def test_requires_grad_suppressed_inside(self):
        with no_grad():
            t = Tensor([1.0], requires_grad=True)
        assert not t.requires_grad


class TestComparisons:
    def test_gt_returns_array(self):
        result = Tensor([1.0, 3.0]) > 2.0
        assert isinstance(result, np.ndarray)
        assert list(result) == [False, True]

    def test_comparison_with_tensor(self):
        a = Tensor([1.0, 5.0])
        b = Tensor([2.0, 2.0])
        assert list(a < b) == [True, False]
        assert list(a >= b) == [False, True]
        assert list(a <= b) == [True, False]


class TestBackwardErrors:
    def test_backward_on_non_grad_tensor(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_shape_mismatch(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        out = t * 2.0
        with pytest.raises(ValueError):
            out.backward(np.ones(3))

    def test_grad_accumulates_across_uses(self):
        t = Tensor([2.0], requires_grad=True)
        out = t * 3.0 + t * 4.0
        out.backward()
        assert t.grad[0] == pytest.approx(7.0)
