"""Module/Parameter infrastructure: registration, traversal, state dicts."""

import numpy as np
import pytest

from repro.nn import Linear, Module, Parameter, Tensor

RNG = np.random.default_rng(9)


class _Child(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones((2, 2)))

    def forward(self, x):
        return x.matmul(self.weight)


class _Parent(Module):
    def __init__(self):
        super().__init__()
        self.alpha = Parameter(np.zeros(3))
        self.child = _Child()
        self.tail = Linear(2, 1, RNG)

    def forward(self, x):
        return self.tail(self.child(x))


class TestRegistration:
    def test_parameters_collected_recursively(self):
        model = _Parent()
        names = [name for name, _ in model.named_parameters()]
        assert names == ["alpha", "child.weight", "tail.weight", "tail.bias"]

    def test_num_parameters(self):
        model = _Parent()
        assert model.num_parameters() == 3 + 4 + 2 + 1

    def test_modules_iteration(self):
        model = _Parent()
        kinds = [type(m).__name__ for m in model.modules()]
        assert kinds == ["_Parent", "_Child", "Linear"]

    def test_reassignment_replaces_parameter(self):
        model = _Child()
        model.weight = Parameter(np.zeros((2, 2)))
        assert len(model.parameters()) == 1
        assert np.allclose(model.parameters()[0].numpy(), 0.0)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestModes:
    def test_train_eval_propagates(self):
        model = _Parent()
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears(self):
        model = _Child()
        out = model(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None


class TestStateDict:
    def test_round_trip(self):
        a, b = _Parent(), _Parent()
        for param in a.parameters():
            param.data[:] = RNG.random(param.shape).astype(np.float32)
        b.load_state_dict(a.state_dict())
        for pa, pb in zip(a.parameters(), b.parameters()):
            assert np.allclose(pa.numpy(), pb.numpy())

    def test_state_dict_is_a_copy(self):
        model = _Child()
        state = model.state_dict()
        state["weight"][0, 0] = 99.0
        assert model.weight.numpy()[0, 0] == 1.0

    def test_missing_key_rejected(self):
        model = _Parent()
        state = model.state_dict()
        del state["alpha"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_unexpected_key_rejected(self):
        model = _Child()
        state = model.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        model = _Child()
        state = {"weight": np.zeros((3, 3))}
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_loading_does_not_alias_source(self):
        model = _Child()
        source = {"weight": np.full((2, 2), 5.0)}
        model.load_state_dict(source)
        source["weight"][0, 0] = -1.0
        assert model.weight.numpy()[0, 0] == 5.0
