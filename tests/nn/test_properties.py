"""Property-based tests (hypothesis) for the autograd core."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor, concat, linear, softmax
from repro.nn.tensor import _unbroadcast

settings.register_profile("ci", deadline=None, max_examples=40)
settings.load_profile("ci")


def small_arrays(min_dims=1, max_dims=3):
    return hnp.arrays(
        dtype=np.float64,
        shape=hnp.array_shapes(min_dims=min_dims, max_dims=max_dims, min_side=1, max_side=5),
        elements=st.floats(-10, 10, allow_nan=False),
    )


class TestAlgebraicProperties:
    @given(small_arrays(), small_arrays())
    def test_addition_commutes_when_shapes_match(self, a, b):
        if a.shape != b.shape:
            return
        left = (Tensor(a, dtype=np.float64) + Tensor(b, dtype=np.float64)).numpy()
        right = (Tensor(b, dtype=np.float64) + Tensor(a, dtype=np.float64)).numpy()
        assert np.allclose(left, right)

    @given(small_arrays())
    def test_double_negation(self, a):
        t = Tensor(a, dtype=np.float64)
        assert np.allclose((-(-t)).numpy(), a)

    @given(small_arrays())
    def test_exp_log_inverse(self, a):
        t = Tensor(np.abs(a) + 0.5, dtype=np.float64)
        assert np.allclose(t.log().exp().numpy(), t.numpy(), rtol=1e-8)

    @given(small_arrays())
    def test_relu_idempotent(self, a):
        t = Tensor(a, dtype=np.float64)
        once = t.relu().numpy()
        twice = t.relu().relu().numpy()
        assert np.allclose(once, twice)

    @given(small_arrays())
    def test_sum_equals_numpy(self, a):
        assert np.allclose(Tensor(a, dtype=np.float64).sum().numpy(), a.sum())

    @given(small_arrays(min_dims=2, max_dims=2))
    def test_transpose_involution(self, a):
        t = Tensor(a, dtype=np.float64)
        assert np.allclose(t.transpose().transpose().numpy(), a)


class TestGradientProperties:
    @given(small_arrays())
    def test_sum_gradient_is_ones(self, a):
        t = Tensor(a, requires_grad=True, dtype=np.float64)
        t.sum().backward()
        assert np.allclose(t.grad, np.ones_like(a))

    @given(small_arrays())
    def test_linear_gradient_is_coefficient(self, a):
        t = Tensor(a, requires_grad=True, dtype=np.float64)
        (t * 3.0).sum().backward()
        assert np.allclose(t.grad, 3.0)

    @given(small_arrays())
    def test_gradient_accumulates_linearly(self, a):
        t = Tensor(a, requires_grad=True, dtype=np.float64)
        (t + t).sum().backward()
        assert np.allclose(t.grad, 2.0)


class TestUnbroadcast:
    @given(
        hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=4),
    )
    def test_unbroadcast_restores_shape(self, shape):
        rng = np.random.default_rng(0)
        broadcast_shape = (3,) + shape
        grad = rng.random(broadcast_shape)
        reduced = _unbroadcast(grad, shape)
        assert reduced.shape == shape

    @given(st.integers(1, 5), st.integers(1, 5))
    def test_unbroadcast_sums_stretched_axes(self, rows, cols):
        grad = np.ones((rows, cols))
        reduced = _unbroadcast(grad, (1, cols))
        assert reduced.shape == (1, cols)
        assert np.allclose(reduced, rows)


class TestSoftmaxProperties:
    @given(small_arrays(min_dims=2, max_dims=2))
    def test_softmax_simplex(self, a):
        out = softmax(Tensor(a, dtype=np.float64), axis=-1).numpy()
        assert np.all(out >= 0)
        assert np.allclose(out.sum(axis=-1), 1.0)

    @given(small_arrays(min_dims=2, max_dims=2), st.floats(-50, 50))
    def test_softmax_shift_invariance(self, a, shift):
        base = softmax(Tensor(a, dtype=np.float64), axis=-1).numpy()
        shifted = softmax(Tensor(a + shift, dtype=np.float64), axis=-1).numpy()
        assert np.allclose(base, shifted, atol=1e-8)


class TestPackedLinearProperties:
    """The packed-expert GEMM path: one (K, in, out) batched op must behave
    exactly like K independent 2-D linears — forward and backward — for any
    shape hypothesis throws at it."""

    @given(
        st.integers(1, 5),  # K experts
        st.integers(1, 6),  # batch
        st.integers(1, 5),  # in features
        st.integers(1, 5),  # out features
        st.booleans(),  # relu
        st.integers(0, 2**31 - 1),
    )
    def test_packed_forward_matches_per_expert(self, k, batch, din, dout, relu, seed):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(size=(batch, din)), dtype=np.float64)
        w = Tensor(rng.normal(size=(k, din, dout)), dtype=np.float64)
        b = Tensor(rng.normal(size=(k, dout)), dtype=np.float64)
        packed = linear(x, w, b, activation="relu" if relu else None).numpy()
        for expert in range(k):
            reference = x.numpy() @ w.numpy()[expert] + b.numpy()[expert]
            if relu:
                reference = np.maximum(reference, 0.0)
            assert np.allclose(packed[expert], reference, atol=1e-10)

    @given(
        st.integers(1, 4),
        st.integers(1, 5),
        st.integers(1, 4),
        st.integers(1, 4),
        st.integers(0, 2**31 - 1),
    )
    def test_packed_gradients_match_per_expert(self, k, batch, din, dout, seed):
        rng = np.random.default_rng(seed)
        x_data = rng.normal(size=(batch, din))
        w_data = rng.normal(size=(k, din, dout))
        b_data = rng.normal(size=(k, dout))
        upstream = rng.normal(size=(k, batch, dout))

        x = Tensor(x_data, requires_grad=True, dtype=np.float64)
        w = Tensor(w_data, requires_grad=True, dtype=np.float64)
        b = Tensor(b_data, requires_grad=True, dtype=np.float64)
        linear(x, w, b).backward(upstream)

        x_grad = np.zeros_like(x_data)
        for expert in range(k):
            xe = Tensor(x_data, requires_grad=True, dtype=np.float64)
            we = Tensor(w_data[expert], requires_grad=True, dtype=np.float64)
            be = Tensor(b_data[expert], requires_grad=True, dtype=np.float64)
            (xe.matmul(we) + be).backward(upstream[expert])
            assert np.allclose(w.grad[expert], we.grad, atol=1e-9)
            assert np.allclose(b.grad[expert], be.grad, atol=1e-9)
            x_grad += xe.grad
        assert np.allclose(x.grad, x_grad, atol=1e-9)

    @given(
        st.integers(1, 5),
        st.integers(1, 6),
        st.integers(1, 5),
        st.integers(1, 5),
        st.integers(0, 2**31 - 1),
    )
    def test_fused_linear_matches_composed_ops(self, batch, m, din, dout, seed):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(size=(batch, m, din)), requires_grad=True, dtype=np.float64)
        w = Tensor(rng.normal(size=(din, dout)), requires_grad=True, dtype=np.float64)
        b = Tensor(rng.normal(size=(dout,)), requires_grad=True, dtype=np.float64)
        fused = linear(x, w, b, activation="relu")
        fused.sum().backward()
        fused_grads = (x.grad.copy(), w.grad.copy(), b.grad.copy())

        x2 = Tensor(x.numpy(), requires_grad=True, dtype=np.float64)
        w2 = Tensor(w.numpy(), requires_grad=True, dtype=np.float64)
        b2 = Tensor(b.numpy(), requires_grad=True, dtype=np.float64)
        reference = (x2.reshape(-1, din).matmul(w2) + b2).relu().reshape(batch, m, dout)
        assert np.allclose(fused.numpy(), reference.numpy(), atol=1e-10)
        reference.sum().backward()
        for fused_grad, ref_grad in zip(fused_grads, (x2.grad, w2.grad, b2.grad)):
            assert np.allclose(fused_grad, ref_grad, atol=1e-9)


class TestConcatProperties:
    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4))
    def test_concat_split_round_trip(self, a_cols, b_cols, rows):
        rng = np.random.default_rng(1)
        a = rng.random((rows, a_cols))
        b = rng.random((rows, b_cols))
        joined = concat([Tensor(a, dtype=np.float64), Tensor(b, dtype=np.float64)], axis=1)
        assert np.allclose(joined.numpy()[:, :a_cols], a)
        assert np.allclose(joined.numpy()[:, a_cols:], b)

    @given(st.integers(2, 5))
    def test_concat_gradient_splits(self, n):
        rng = np.random.default_rng(2)
        parts = [Tensor(rng.random(3), requires_grad=True, dtype=np.float64) for _ in range(n)]
        out = concat(parts, axis=0)
        out.backward(np.arange(3 * n, dtype=np.float64))
        for i, part in enumerate(parts):
            assert np.allclose(part.grad, np.arange(3 * i, 3 * (i + 1)))
