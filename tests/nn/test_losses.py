"""Loss functions: values against hand computations, stability, gradients."""

import numpy as np
import pytest

from repro.nn import (
    Tensor,
    bce_with_logits,
    binary_cross_entropy,
    info_nce,
    mse_loss,
    softmax_cross_entropy,
)
from repro.nn.gradcheck import check_gradients

RNG = np.random.default_rng(3)


def assert_grad_ok(func, inputs, **kwargs):
    ok, message = check_gradients(func, inputs, **kwargs)
    assert ok, message


class TestBCEWithLogits:
    def test_matches_manual_formula(self):
        logits = np.array([0.5, -1.0, 2.0])
        targets = np.array([1.0, 0.0, 1.0])
        probs = 1 / (1 + np.exp(-logits))
        expected = -np.mean(targets * np.log(probs) + (1 - targets) * np.log(1 - probs))
        loss = bce_with_logits(Tensor(logits, dtype=np.float64), targets)
        assert loss.item() == pytest.approx(expected, rel=1e-6)

    def test_zero_logits_gives_log2(self):
        loss = bce_with_logits(Tensor(np.zeros(4)), np.array([0.0, 1.0, 0.0, 1.0]))
        assert loss.item() == pytest.approx(np.log(2), rel=1e-5)

    def test_stable_at_extreme_logits(self):
        loss = bce_with_logits(Tensor(np.array([1000.0, -1000.0])), np.array([1.0, 0.0]))
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_stable_at_extreme_wrong_logits(self):
        loss = bce_with_logits(Tensor(np.array([1000.0])), np.array([0.0]))
        assert np.isfinite(loss.item())
        assert loss.item() == pytest.approx(1000.0, rel=1e-3)

    def test_gradient(self):
        targets = np.array([1.0, 0.0, 1.0, 0.0])
        assert_grad_ok(lambda ts: bce_with_logits(ts[0], targets), [RNG.random(4) * 2 - 1])

    def test_gradient_is_sigmoid_minus_target_over_n(self):
        logits = Tensor(np.array([0.0, 2.0]), requires_grad=True, dtype=np.float64)
        targets = np.array([1.0, 0.0])
        bce_with_logits(logits, targets).backward()
        sig = 1 / (1 + np.exp(-logits.numpy()))
        assert np.allclose(logits.grad, (sig - targets) / 2, atol=1e-7)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bce_with_logits(Tensor(np.zeros(3)), np.zeros(4))

    def test_accepts_tensor_targets(self):
        loss = bce_with_logits(Tensor(np.zeros(2)), Tensor(np.array([0.0, 1.0])))
        assert np.isfinite(loss.item())


class TestBinaryCrossEntropy:
    def test_matches_bce_with_logits(self):
        logits = np.array([0.3, -0.7, 1.2])
        targets = np.array([1.0, 0.0, 1.0])
        a = bce_with_logits(Tensor(logits, dtype=np.float64), targets).item()
        probs = Tensor(1 / (1 + np.exp(-logits)), dtype=np.float64)
        b = binary_cross_entropy(probs, targets).item()
        assert a == pytest.approx(b, rel=1e-5)

    def test_clipping_prevents_infinity(self):
        loss = binary_cross_entropy(Tensor(np.array([0.0, 1.0])), np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())


class TestMSE:
    def test_value(self):
        loss = mse_loss(Tensor(np.array([1.0, 2.0])), np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_zero_at_perfect_fit(self):
        x = RNG.random(5)
        assert mse_loss(Tensor(x), x).item() == pytest.approx(0.0, abs=1e-10)

    def test_grad(self):
        y = RNG.random(4)
        assert_grad_ok(lambda ts: mse_loss(ts[0], y), [RNG.random(4)])


class TestSoftmaxCrossEntropy:
    def test_matches_manual(self):
        logits = RNG.random((3, 4))
        labels = np.array([0, 3, 1])
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(3), labels].mean()
        loss = softmax_cross_entropy(Tensor(logits, dtype=np.float64), labels)
        assert loss.item() == pytest.approx(expected, rel=1e-6)

    def test_uniform_logits_give_log_classes(self):
        loss = softmax_cross_entropy(Tensor(np.zeros((2, 5))), np.array([0, 4]))
        assert loss.item() == pytest.approx(np.log(5), rel=1e-5)

    def test_grad(self):
        labels = np.array([1, 0, 2])
        assert_grad_ok(
            lambda ts: softmax_cross_entropy(ts[0], labels), [RNG.random((3, 3))]
        )

    def test_rejects_1d_logits(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(Tensor(np.zeros(3)), np.array([0]))


class TestInfoNCE:
    def test_identical_positive_beats_random_negative(self):
        anchor = RNG.random((4, 8))
        aligned = info_nce(Tensor(anchor), Tensor(anchor), Tensor(RNG.random((4, 2, 8)) * 0.01))
        shuffled = info_nce(
            Tensor(anchor), Tensor(RNG.random((4, 8))), Tensor(anchor[:, None, :] * np.ones((4, 2, 8)))
        )
        assert aligned.item() < shuffled.item()

    def test_matches_manual_single_example(self):
        anchor = np.array([[1.0, 0.0]])
        positive = np.array([[1.0, 0.0]])
        negatives = np.array([[[0.0, 1.0]]])
        pos_sim, neg_sim = 1.0, 0.0
        expected = -np.log(np.exp(pos_sim) / (np.exp(pos_sim) + np.exp(neg_sim)))
        loss = info_nce(Tensor(anchor), Tensor(positive), Tensor(negatives))
        assert loss.item() == pytest.approx(expected, rel=1e-5)

    def test_temperature_scales_similarities(self):
        anchor = RNG.random((3, 4))
        positive = RNG.random((3, 4))
        negatives = RNG.random((3, 2, 4))
        hot = info_nce(Tensor(anchor), Tensor(positive), Tensor(negatives), temperature=0.1)
        cold = info_nce(Tensor(anchor), Tensor(positive), Tensor(negatives), temperature=10.0)
        assert hot.item() != pytest.approx(cold.item())

    def test_gradients_flow_to_all_inputs(self):
        assert_grad_ok(
            lambda ts: info_nce(ts[0], ts[1], ts[2]),
            [RNG.random((3, 4)), RNG.random((3, 4)), RNG.random((3, 2, 4))],
        )

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            info_nce(Tensor(np.zeros((2, 3))), Tensor(np.zeros((3, 3))), Tensor(np.zeros((2, 1, 3))))
        with pytest.raises(ValueError):
            info_nce(Tensor(np.zeros((2, 3))), Tensor(np.zeros((2, 3))), Tensor(np.zeros((2, 3))))
