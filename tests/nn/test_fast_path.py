"""The fused training kernels: ``linear`` op, fast-math mode, GradArena."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    GradArena,
    Linear,
    Tensor,
    active_arena,
    fast_math,
    is_fast_math,
    linear,
    no_grad,
)
from repro.nn.gradcheck import check_gradients


def _tensors(rng, *shapes, dtype=np.float64):
    return [Tensor(rng.normal(size=s), requires_grad=True, dtype=dtype) for s in shapes]


class TestLinearOp:
    def test_matches_composed_ops_2d(self):
        rng = np.random.default_rng(0)
        x, w, b = _tensors(rng, (5, 3), (3, 4), (4,))
        fused = linear(x, w, b, activation="relu")
        reference = (x.matmul(w) + b).relu()
        assert np.allclose(fused.numpy(), reference.numpy())

    def test_matches_composed_ops_leading_dims(self):
        rng = np.random.default_rng(1)
        x, w, b = _tensors(rng, (2, 6, 3), (3, 4), (4,))
        fused = linear(x, w, b)
        reference = x.reshape(-1, 3).matmul(w) + b
        assert fused.shape == (2, 6, 4)
        assert np.allclose(fused.numpy().reshape(-1, 4), reference.numpy())

    def test_packed_matches_per_slice(self):
        rng = np.random.default_rng(2)
        x, w, b = _tensors(rng, (5, 3), (4, 3, 2), (4, 2))
        fused = linear(x, w, b, activation="relu")
        assert fused.shape == (4, 5, 2)
        for k in range(4):
            ref = np.maximum(x.numpy() @ w.numpy()[k] + b.numpy()[k], 0.0)
            assert np.allclose(fused.numpy()[k], ref)

    def test_packed_per_slice_inputs(self):
        rng = np.random.default_rng(3)
        x, w = _tensors(rng, (4, 5, 3), (4, 3, 2))
        fused = linear(x, w)
        for k in range(4):
            assert np.allclose(fused.numpy()[k], x.numpy()[k] @ w.numpy()[k])

    def test_gradcheck_2d(self):
        rng = np.random.default_rng(4)
        ok, message = check_gradients(
            lambda ts: linear(ts[0], ts[1], ts[2]),
            [rng.normal(size=(5, 3)), rng.normal(size=(3, 4)), rng.normal(size=(4,))],
        )
        assert ok, message

    def test_gradcheck_relu(self):
        rng = np.random.default_rng(5)
        # Keep pre-activations away from the ReLU kink so central differences
        # are well defined.
        x = rng.normal(size=(6, 3))
        w = rng.normal(size=(3, 4))
        b = rng.normal(size=(4,)) + 3.0
        ok, message = check_gradients(
            lambda ts: linear(ts[0], ts[1], ts[2], activation="relu"), [x, w, b]
        )
        assert ok, message

    def test_gradcheck_packed(self):
        rng = np.random.default_rng(6)
        ok, message = check_gradients(
            lambda ts: linear(ts[0], ts[1], ts[2]),
            [rng.normal(size=(5, 3)), rng.normal(size=(4, 3, 2)), rng.normal(size=(4, 2))],
        )
        assert ok, message

    def test_gradcheck_packed_per_slice_inputs(self):
        rng = np.random.default_rng(7)
        ok, message = check_gradients(
            lambda ts: linear(ts[0], ts[1]),
            [rng.normal(size=(4, 5, 3)), rng.normal(size=(4, 3, 2))],
        )
        assert ok, message

    def test_gradients_match_composed_ops(self):
        rng = np.random.default_rng(8)
        data = [rng.normal(size=(5, 3)), rng.normal(size=(3, 4)), rng.normal(size=(4,))]
        fused_inputs = _tensors_from(data)
        linear(fused_inputs[0], fused_inputs[1], fused_inputs[2], activation="relu").sum().backward()
        ref_inputs = _tensors_from(data)
        (ref_inputs[0].matmul(ref_inputs[1]) + ref_inputs[2]).relu().sum().backward()
        for fused_t, ref_t in zip(fused_inputs, ref_inputs):
            assert np.allclose(fused_t.grad, ref_t.grad)

    def test_second_contribution_accumulates(self):
        rng = np.random.default_rng(9)
        x, w = _tensors(rng, (5, 3), (3, 4))
        out = linear(x, w) + linear(x, w)
        out.sum().backward()
        single_x, single_w = _tensors_from([x.numpy(), w.numpy()])
        linear(single_x, single_w).sum().backward()
        assert np.allclose(x.grad, 2 * single_x.grad)
        assert np.allclose(w.grad, 2 * single_w.grad)

    def test_no_grad_fast_path(self):
        rng = np.random.default_rng(10)
        x, w = _tensors(rng, (5, 3), (3, 4))
        with no_grad():
            out = linear(x, w)
        assert not out.requires_grad
        assert out._backward is None

    def test_rejects_unfusable_activation(self):
        rng = np.random.default_rng(11)
        x, w = _tensors(rng, (5, 3), (3, 4))
        with pytest.raises(ValueError, match="cannot fuse"):
            linear(x, w, activation="sigmoid")

    def test_rejects_shape_mismatch(self):
        rng = np.random.default_rng(12)
        x, w = _tensors(rng, (5, 3), (2, 4))
        with pytest.raises(ValueError, match="expected input features"):
            linear(x, w)

    def test_rejects_bad_packed_bias(self):
        rng = np.random.default_rng(13)
        x, w, b = _tensors(rng, (5, 3), (4, 3, 2), (2,))
        with pytest.raises(ValueError, match="packed bias"):
            linear(x, w, b)


def _tensors_from(arrays):
    return [Tensor(a, requires_grad=True, dtype=np.float64) for a in arrays]


class TestFastMathMode:
    def test_default_off(self):
        assert not is_fast_math()
        assert active_arena() is None

    def test_context_sets_and_restores(self):
        arena = GradArena()
        with fast_math(arena):
            assert is_fast_math()
            assert active_arena() is arena
        assert not is_fast_math()
        assert active_arena() is None

    def test_nesting_restores_outer_arena(self):
        outer, inner = GradArena(), GradArena()
        with fast_math(outer):
            with fast_math(inner):
                assert active_arena() is inner
            assert active_arena() is outer

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with fast_math():
                raise RuntimeError("boom")
        assert not is_fast_math()

    def test_linear_layer_fused_output_matches_eager(self):
        rng = np.random.default_rng(3)
        layer = Linear(6, 4, rng)
        x = Tensor(rng.normal(size=(5, 6)).astype(np.float32))
        eager = layer(x).numpy()
        with fast_math():
            fused = layer(x).numpy()
        assert np.allclose(eager, fused, atol=1e-6)

    def test_mlp_fused_matches_eager_with_grads(self):
        rng = np.random.default_rng(4)
        mlp = MLP(6, [8, 3], rng, activation="relu")
        data = rng.normal(size=(5, 6)).astype(np.float32)
        eager_out = mlp(Tensor(data))
        eager_out.sum().backward()
        eager_grads = {name: p.grad.copy() for name, p in mlp.named_parameters()}
        for p in mlp.parameters():
            p.grad = None
        with fast_math():
            fused_out = mlp(Tensor(data))
            fused_out.sum().backward()
        assert np.allclose(eager_out.numpy(), fused_out.numpy(), atol=1e-6)
        for name, p in mlp.named_parameters():
            assert np.allclose(eager_grads[name], p.grad, atol=1e-5), name


class TestGradArena:
    def test_lease_release_reuses_buffer(self):
        arena = GradArena()
        first = arena.lease((3, 4), np.float32)
        arena.release(first)
        second = arena.lease((3, 4), np.float32)
        assert second is first
        assert arena.stats()["allocations"] == 1
        assert arena.stats()["reuses"] == 1

    def test_lease_distinguishes_shape_and_dtype(self):
        arena = GradArena()
        arena.release(arena.lease((3,), np.float32))
        assert arena.lease((3,), np.float64).dtype == np.float64
        assert arena.stats()["allocations"] == 2

    def test_lease_zeros(self):
        arena = GradArena()
        buffer = arena.lease((4,), np.float32)
        buffer[:] = 7.0
        arena.release(buffer)
        assert np.all(arena.lease_zeros((4,), np.float32) == 0.0)

    def test_release_none_is_noop(self):
        arena = GradArena()
        arena.release(None)
        assert arena.stats()["pooled"] == 0

    def test_release_grads_clears_and_pools(self):
        arena = GradArena()
        param = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        param.grad = np.ones(3, dtype=np.float32)
        arena.release_grads([param])
        assert param.grad is None
        assert arena.stats()["pooled"] == 1

    def test_backward_under_arena_matches_reference(self):
        rng = np.random.default_rng(5)
        data = [rng.normal(size=(4, 3)), rng.normal(size=(3, 2))]
        reference = _tensors_from(data)
        ((reference[0].matmul(reference[1])).relu().sum()).backward()
        arena = GradArena()
        with fast_math(arena):
            fast = _tensors_from(data)
            ((fast[0].matmul(fast[1])).relu().sum()).backward()
        for ref_t, fast_t in zip(reference, fast):
            assert np.array_equal(ref_t.grad, fast_t.grad)

    def test_backward_recycles_intermediate_grads(self):
        arena = GradArena()
        with fast_math(arena):
            x = Tensor(np.ones((4, 3)), requires_grad=True, dtype=np.float64)
            hidden = (x * 2.0).relu()
            hidden.sum().backward()
        # Leaf keeps its gradient for the optimizer...
        assert x.grad is not None
        # ...but the intermediates returned theirs to the pool.
        assert hidden.grad is None
        assert arena.stats()["pooled"] > 0

    def test_steady_state_stops_allocating(self):
        arena = GradArena()
        rng = np.random.default_rng(6)
        w = Tensor(rng.normal(size=(3, 2)), requires_grad=True, dtype=np.float64)
        for step in range(3):
            with fast_math(arena):
                x = Tensor(rng.normal(size=(4, 3)), dtype=np.float64)
                linear(x, w).sum().backward()
            arena.release_grads([w])
            if step == 0:
                warm = arena.stats()["allocations"]
        assert arena.stats()["allocations"] == warm
