"""Layer behaviour: shapes, modes, parameter registration, edge cases."""

import numpy as np
import pytest

from repro.nn import (
    Dropout,
    Embedding,
    Identity,
    LayerNorm,
    Linear,
    MLP,
    Sequential,
    Tensor,
)
from repro.nn.layers import apply_activation

RNG = np.random.default_rng(5)


class TestLinear:
    def test_output_shape_2d(self):
        layer = Linear(4, 3, RNG)
        assert layer(Tensor(np.ones((7, 4)))).shape == (7, 3)

    def test_output_shape_3d(self):
        layer = Linear(4, 3, RNG)
        assert layer(Tensor(np.ones((2, 5, 4)))).shape == (2, 5, 3)

    def test_no_bias(self):
        layer = Linear(4, 3, RNG, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_bias_adds_constant(self):
        layer = Linear(2, 2, RNG)
        layer.weight.data[:] = 0.0
        layer.bias.data[:] = np.array([1.0, -1.0])
        out = layer(Tensor(np.ones((1, 2))))
        assert list(out.numpy()[0]) == [1.0, -1.0]

    def test_wrong_input_dim_rejected(self):
        with pytest.raises(ValueError):
            Linear(4, 3, RNG)(Tensor(np.ones((2, 5))))

    def test_matches_manual_matmul(self):
        layer = Linear(3, 2, RNG)
        x = RNG.random((4, 3)).astype(np.float32)
        expected = x @ layer.weight.numpy() + layer.bias.numpy()
        assert np.allclose(layer(Tensor(x)).numpy(), expected, atol=1e-6)


class TestEmbedding:
    def test_lookup_shape(self):
        table = Embedding(10, 4, RNG)
        assert table(np.array([[1, 2, 3]])).shape == (1, 3, 4)

    def test_out_of_range_rejected(self):
        table = Embedding(10, 4, RNG)
        with pytest.raises(IndexError):
            table(np.array([10]))
        with pytest.raises(IndexError):
            table(np.array([-1]))

    def test_empty_indices_ok(self):
        table = Embedding(10, 4, RNG)
        assert table(np.empty((0,), dtype=np.int64)).shape == (0, 4)

    def test_gradient_reaches_table(self):
        table = Embedding(5, 3, RNG)
        out = table(np.array([1, 1]))
        out.sum().backward()
        assert table.weight.grad is not None
        assert np.allclose(table.weight.grad[1], 2.0)


class TestDropout:
    def test_identity_in_eval_mode(self):
        drop = Dropout(0.5, RNG)
        drop.eval()
        x = Tensor(np.ones((4, 4)))
        assert np.allclose(drop(x).numpy(), 1.0)

    def test_masks_in_train_mode(self):
        drop = Dropout(0.5, np.random.default_rng(0))
        drop.train()
        out = drop(Tensor(np.ones((100, 100))))
        zeros = (out.numpy() == 0).mean()
        assert 0.4 < zeros < 0.6

    def test_inverted_scaling_preserves_mean(self):
        drop = Dropout(0.3, np.random.default_rng(0))
        drop.train()
        out = drop(Tensor(np.ones((200, 200))))
        assert out.numpy().mean() == pytest.approx(1.0, abs=0.05)

    def test_zero_probability_is_identity(self):
        drop = Dropout(0.0, RNG)
        drop.train()
        x = Tensor(RNG.random((3, 3)))
        assert np.allclose(drop(x).numpy(), x.numpy())

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            Dropout(1.0, RNG)
        with pytest.raises(ValueError):
            Dropout(-0.1, RNG)


class TestLayerNorm:
    def test_output_normalized(self):
        norm = LayerNorm(8)
        out = norm(Tensor(RNG.random((4, 8)) * 10 + 3)).numpy()
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_learnable_scale_and_shift(self):
        norm = LayerNorm(4)
        norm.gamma.data[:] = 2.0
        norm.beta.data[:] = 1.0
        out = norm(Tensor(RNG.random((3, 4)))).numpy()
        assert out.mean(axis=-1) == pytest.approx(np.ones(3), abs=1e-4)

    def test_gradients_flow(self):
        norm = LayerNorm(4)
        out = norm(Tensor(RNG.random((3, 4)), requires_grad=True))
        out.sum().backward()
        assert norm.gamma.grad is not None
        assert norm.beta.grad is not None


class TestSequential:
    def test_applies_in_order(self):
        seq = Sequential(Identity(), Identity())
        x = Tensor(np.ones(3))
        assert np.allclose(seq(x).numpy(), 1.0)

    def test_len_and_getitem(self):
        first = Identity()
        seq = Sequential(first, Identity(), Identity())
        assert len(seq) == 3
        assert seq[0] is first

    def test_registers_child_parameters(self):
        seq = Sequential(Linear(2, 3, RNG), Linear(3, 1, RNG))
        assert len(seq.parameters()) == 4


class TestMLP:
    def test_paper_expert_shape(self):
        mlp = MLP(128, [512, 256, 1], RNG)
        assert mlp(Tensor(np.ones((2, 128)))).shape == (2, 1)
        assert mlp.out_features == 1

    def test_hidden_activation_applied(self):
        mlp = MLP(2, [3, 1], RNG, activation="relu")
        for layer in mlp._linears:
            layer.weight.data[:] = -1.0
            layer.bias.data[:] = 0.0
        out = mlp(Tensor(np.ones((1, 2))))
        # Hidden output is relu(-2) = 0, final linear layer gives 0.
        assert out.numpy()[0, 0] == 0.0

    def test_output_activation(self):
        mlp = MLP(2, [3, 1], RNG, output_activation="sigmoid")
        out = mlp(Tensor(RNG.random((5, 2)))).numpy()
        assert np.all((out > 0) & (out < 1))

    def test_dropout_only_on_hidden_layers(self):
        mlp = MLP(4, [8, 8, 1], RNG, dropout=0.5)
        assert mlp._dropouts[-1] is None
        assert mlp._dropouts[0] is not None

    def test_empty_hidden_sizes_rejected(self):
        with pytest.raises(ValueError):
            MLP(4, [], RNG)

    def test_3d_input(self):
        mlp = MLP(4, [8, 2], RNG)
        assert mlp(Tensor(np.ones((2, 5, 4)))).shape == (2, 5, 2)


class TestActivationDispatch:
    def test_known_names(self):
        x = Tensor(np.array([-1.0, 1.0]))
        assert np.allclose(apply_activation(x, None).numpy(), x.numpy())
        assert np.allclose(apply_activation(x, "linear").numpy(), x.numpy())
        assert apply_activation(x, "relu").numpy()[0] == 0.0
        assert apply_activation(x, "tanh").numpy()[1] == pytest.approx(np.tanh(1.0), rel=1e-5)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            apply_activation(Tensor(np.ones(2)), "swishish")
