"""Finite-difference gradient checks for every Tensor method op."""

import numpy as np
import pytest

from repro.nn.gradcheck import check_gradients

RNG = np.random.default_rng(42)


def assert_grad_ok(func, inputs, **kwargs):
    ok, message = check_gradients(func, inputs, **kwargs)
    assert ok, message


class TestArithmeticGrads:
    def test_add(self):
        assert_grad_ok(lambda ts: ts[0] + ts[1], [RNG.random((3, 4)), RNG.random((3, 4))])

    def test_add_broadcast_row(self):
        assert_grad_ok(lambda ts: ts[0] + ts[1], [RNG.random((3, 4)), RNG.random((4,))])

    def test_add_broadcast_column(self):
        assert_grad_ok(lambda ts: ts[0] + ts[1], [RNG.random((3, 4)), RNG.random((3, 1))])

    def test_add_scalar_constant(self):
        assert_grad_ok(lambda ts: ts[0] + 2.5, [RNG.random((2, 3))])

    def test_radd(self):
        assert_grad_ok(lambda ts: 1.5 + ts[0], [RNG.random(4)])

    def test_sub(self):
        assert_grad_ok(lambda ts: ts[0] - ts[1], [RNG.random((3, 4)), RNG.random((3, 4))])

    def test_rsub(self):
        assert_grad_ok(lambda ts: 1.0 - ts[0], [RNG.random(5)])

    def test_sub_broadcast(self):
        assert_grad_ok(lambda ts: ts[0] - ts[1], [RNG.random((2, 3, 4)), RNG.random((4,))])

    def test_mul(self):
        assert_grad_ok(lambda ts: ts[0] * ts[1], [RNG.random((3, 4)), RNG.random((3, 4))])

    def test_mul_broadcast(self):
        assert_grad_ok(lambda ts: ts[0] * ts[1], [RNG.random((2, 3, 4)), RNG.random((3, 1))])

    def test_div(self):
        assert_grad_ok(
            lambda ts: ts[0] / ts[1], [RNG.random((3, 4)), RNG.random((3, 4)) + 0.5]
        )

    def test_rdiv(self):
        assert_grad_ok(lambda ts: 2.0 / ts[0], [RNG.random(4) + 0.5])

    def test_neg(self):
        assert_grad_ok(lambda ts: -ts[0], [RNG.random((2, 2))])

    def test_pow_square(self):
        assert_grad_ok(lambda ts: ts[0] ** 2, [RNG.random((3, 3)) + 0.1])

    def test_pow_fractional(self):
        assert_grad_ok(lambda ts: ts[0] ** 0.5, [RNG.random(5) + 0.5])

    def test_pow_rejects_tensor_exponent(self):
        from repro.nn import Tensor

        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])


class TestNonlinearityGrads:
    def test_exp(self):
        assert_grad_ok(lambda ts: ts[0].exp(), [RNG.random((3, 3)) - 0.5])

    def test_log(self):
        assert_grad_ok(lambda ts: ts[0].log(), [RNG.random((3, 3)) + 0.5])

    def test_sqrt(self):
        assert_grad_ok(lambda ts: ts[0].sqrt(), [RNG.random(6) + 0.5])

    def test_abs(self):
        assert_grad_ok(lambda ts: ts[0].abs(), [RNG.random(6) + 0.2])

    def test_relu(self):
        # Offset from zero so finite differences never straddle the kink.
        assert_grad_ok(lambda ts: ts[0].relu(), [RNG.random((4, 4)) - 0.5 + 1e-2])

    def test_leaky_relu(self):
        assert_grad_ok(lambda ts: ts[0].leaky_relu(0.1), [RNG.random((4, 4)) - 0.5 + 1e-2])

    def test_sigmoid(self):
        assert_grad_ok(lambda ts: ts[0].sigmoid(), [RNG.random((3, 4)) * 4 - 2])

    def test_sigmoid_extreme_values_stable(self):
        from repro.nn import Tensor

        t = Tensor(np.array([-500.0, 500.0]), dtype=np.float64)
        out = t.sigmoid()
        assert np.all(np.isfinite(out.numpy()))
        assert out.numpy()[0] == pytest.approx(0.0, abs=1e-12)
        assert out.numpy()[1] == pytest.approx(1.0, abs=1e-12)

    def test_tanh(self):
        assert_grad_ok(lambda ts: ts[0].tanh(), [RNG.random((3, 4)) * 2 - 1])

    def test_clip(self):
        assert_grad_ok(
            lambda ts: ts[0].clip(0.2, 0.8), [np.array([0.1, 0.5, 0.95, 0.3])]
        )


class TestReductionGrads:
    def test_sum_all(self):
        assert_grad_ok(lambda ts: ts[0].sum(), [RNG.random((3, 4))])

    def test_sum_axis0(self):
        assert_grad_ok(lambda ts: ts[0].sum(axis=0), [RNG.random((3, 4))])

    def test_sum_axis1_keepdims(self):
        assert_grad_ok(lambda ts: ts[0].sum(axis=1, keepdims=True), [RNG.random((3, 4))])

    def test_sum_negative_axis(self):
        assert_grad_ok(lambda ts: ts[0].sum(axis=-1), [RNG.random((2, 3, 4))])

    def test_mean_all(self):
        assert_grad_ok(lambda ts: ts[0].mean(), [RNG.random((3, 4))])

    def test_mean_axis(self):
        assert_grad_ok(lambda ts: ts[0].mean(axis=1), [RNG.random((3, 4))])

    def test_max_all(self):
        assert_grad_ok(lambda ts: ts[0].max(), [RNG.permutation(12).reshape(3, 4) * 1.0])

    def test_max_axis(self):
        assert_grad_ok(lambda ts: ts[0].max(axis=1), [RNG.permutation(12).reshape(3, 4) * 1.0])

    def test_max_ties_split_gradient(self):
        from repro.nn import Tensor

        t = Tensor(np.array([[1.0, 1.0, 0.0]]), requires_grad=True, dtype=np.float64)
        t.max(axis=1).backward(np.ones(1))
        assert t.grad[0, 0] == pytest.approx(0.5)
        assert t.grad[0, 1] == pytest.approx(0.5)
        assert t.grad[0, 2] == pytest.approx(0.0)

    def test_min(self):
        assert_grad_ok(lambda ts: ts[0].min(axis=0), [RNG.permutation(12).reshape(3, 4) * 1.0])


class TestMatmulGrads:
    def test_matmul_2d(self):
        assert_grad_ok(
            lambda ts: ts[0].matmul(ts[1]), [RNG.random((3, 4)), RNG.random((4, 5))]
        )

    def test_matmul_batched(self):
        assert_grad_ok(
            lambda ts: ts[0].matmul(ts[1]),
            [RNG.random((2, 3, 4)), RNG.random((2, 4, 5))],
        )

    def test_matmul_broadcast_batch(self):
        assert_grad_ok(
            lambda ts: ts[0].matmul(ts[1]), [RNG.random((2, 3, 4)), RNG.random((4, 5))]
        )

    def test_matmul_operator(self):
        assert_grad_ok(lambda ts: ts[0] @ ts[1], [RNG.random((2, 3)), RNG.random((3, 2))])

    def test_matmul_rejects_1d(self):
        from repro.nn import Tensor

        with pytest.raises(ValueError):
            Tensor(np.ones(3)).matmul(Tensor(np.ones((3, 2))))


class TestShapeGrads:
    def test_reshape(self):
        assert_grad_ok(lambda ts: ts[0].reshape(4, 3), [RNG.random((3, 4))])

    def test_reshape_tuple_argument(self):
        assert_grad_ok(lambda ts: ts[0].reshape((2, 6)), [RNG.random((3, 4))])

    def test_reshape_flatten(self):
        assert_grad_ok(lambda ts: ts[0].reshape(-1, 2), [RNG.random((3, 4))])

    def test_transpose_default(self):
        assert_grad_ok(lambda ts: ts[0].transpose(), [RNG.random((3, 4))])

    def test_transpose_axes(self):
        assert_grad_ok(lambda ts: ts[0].transpose(1, 2, 0), [RNG.random((2, 3, 4))])

    def test_swapaxes(self):
        assert_grad_ok(lambda ts: ts[0].swapaxes(0, 1), [RNG.random((2, 3, 4))])

    def test_expand_dims(self):
        assert_grad_ok(lambda ts: ts[0].expand_dims(1), [RNG.random((3, 4))])

    def test_squeeze(self):
        assert_grad_ok(lambda ts: ts[0].squeeze(1), [RNG.random((3, 1, 4))])

    def test_broadcast_to(self):
        assert_grad_ok(lambda ts: ts[0].broadcast_to((5, 3)), [RNG.random((1, 3))])

    def test_broadcast_to_new_axis(self):
        assert_grad_ok(lambda ts: ts[0].expand_dims(0).broadcast_to((4, 3)), [RNG.random(3)])

    def test_getitem_slice(self):
        assert_grad_ok(lambda ts: ts[0][1:3], [RNG.random((5, 2))])

    def test_getitem_integer_array(self):
        idx = np.array([0, 2, 2])
        assert_grad_ok(lambda ts: ts[0][idx], [RNG.random((4, 3))])


class TestCompositeGrads:
    def test_two_layer_network(self):
        def network(ts):
            hidden = ts[0].matmul(ts[1]).relu()
            return hidden.matmul(ts[2]).sigmoid().sum()

        assert_grad_ok(
            network,
            [RNG.random((4, 3)) - 0.4, RNG.random((3, 5)) - 0.5, RNG.random((5, 1)) - 0.5],
        )

    def test_attention_like_pattern(self):
        def attention(ts):
            seq, key = ts
            weights = (seq * key.expand_dims(0).broadcast_to(seq.shape)).sum(axis=1)
            return (seq * weights.expand_dims(1)).sum(axis=0).mean()

        assert_grad_ok(attention, [RNG.random((5, 3)), RNG.random(3)])

    def test_diamond_graph_accumulation(self):
        def diamond(ts):
            x = ts[0]
            a = x * 2.0
            b = x.exp()
            return (a * b).sum()

        assert_grad_ok(diamond, [RNG.random((3, 3)) * 0.5])
