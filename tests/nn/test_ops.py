"""Forward values and gradients of free-function ops."""

import numpy as np
import pytest

from repro.nn import Tensor, concat, embedding, log_softmax, logsumexp, masked_fill
from repro.nn import maximum, minimum, softmax, stack, take, where
from repro.nn.gradcheck import check_gradients

RNG = np.random.default_rng(7)


def assert_grad_ok(func, inputs, **kwargs):
    ok, message = check_gradients(func, inputs, **kwargs)
    assert ok, message


class TestConcat:
    def test_forward_last_axis(self):
        a, b = Tensor(np.ones((2, 3))), Tensor(np.zeros((2, 2)))
        out = concat([a, b], axis=-1)
        assert out.shape == (2, 5)
        assert np.allclose(out.numpy()[:, :3], 1.0)

    def test_forward_axis0(self):
        out = concat([Tensor(np.ones((2, 3))), Tensor(np.zeros((1, 3)))], axis=0)
        assert out.shape == (3, 3)

    def test_grad(self):
        assert_grad_ok(
            lambda ts: concat(list(ts), axis=1), [RNG.random((2, 3)), RNG.random((2, 4))]
        )

    def test_grad_middle_axis(self):
        assert_grad_ok(
            lambda ts: concat(list(ts), axis=1),
            [RNG.random((2, 2, 3)), RNG.random((2, 4, 3))],
        )

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            concat([])


class TestStack:
    def test_forward(self):
        out = stack([Tensor(np.ones(3)), Tensor(np.zeros(3))], axis=0)
        assert out.shape == (2, 3)

    def test_grad(self):
        assert_grad_ok(lambda ts: stack(list(ts), axis=1), [RNG.random(4), RNG.random(4)])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            stack([])


class TestWhere:
    def test_forward(self):
        cond = np.array([True, False, True])
        out = where(cond, Tensor(np.ones(3)), Tensor(np.zeros(3)))
        assert list(out.numpy()) == [1.0, 0.0, 1.0]

    def test_grad_routes_by_condition(self):
        cond = RNG.random((3, 4)) > 0.5
        assert_grad_ok(
            lambda ts: where(cond, ts[0], ts[1]), [RNG.random((3, 4)), RNG.random((3, 4))]
        )

    def test_maximum_matches_numpy(self):
        a, b = RNG.random(10), RNG.random(10)
        out = maximum(Tensor(a), Tensor(b))
        assert np.allclose(out.numpy(), np.maximum(a, b), atol=1e-6)

    def test_minimum_matches_numpy(self):
        a, b = RNG.random(10), RNG.random(10)
        out = minimum(Tensor(a), Tensor(b))
        assert np.allclose(out.numpy(), np.minimum(a, b), atol=1e-6)


class TestEmbedding:
    def test_forward_shape(self):
        table = Tensor(RNG.random((10, 4)))
        out = embedding(table, np.array([[1, 2], [3, 0]]))
        assert out.shape == (2, 2, 4)

    def test_forward_values(self):
        table = Tensor(np.arange(12, dtype=np.float32).reshape(4, 3))
        out = embedding(table, np.array([2]))
        assert list(out.numpy()[0]) == [6.0, 7.0, 8.0]

    def test_grad_scatter_add(self):
        table = Tensor(RNG.random((5, 3)), requires_grad=True, dtype=np.float64)
        idx = np.array([1, 1, 2])
        out = embedding(table, idx)
        out.backward(np.ones((3, 3)))
        assert np.allclose(table.grad[1], 2.0)  # id 1 used twice
        assert np.allclose(table.grad[2], 1.0)
        assert np.allclose(table.grad[0], 0.0)

    def test_gradcheck(self):
        idx = np.array([[0, 3], [2, 2]])
        assert_grad_ok(lambda ts: embedding(ts[0], idx), [RNG.random((4, 3))])

    def test_rejects_float_indices(self):
        with pytest.raises(TypeError):
            embedding(Tensor(np.ones((3, 2))), np.array([0.5]))


class TestTake:
    def test_forward(self):
        t = Tensor(np.arange(12, dtype=np.float32).reshape(4, 3))
        out = take(t, np.array([0, 2]), axis=0)
        assert out.shape == (2, 3)
        assert out.numpy()[1, 0] == 6.0

    def test_grad_axis0(self):
        idx = np.array([0, 2, 2])
        assert_grad_ok(lambda ts: take(ts[0], idx, axis=0), [RNG.random((4, 3))])

    def test_grad_2d_indices(self):
        idx = np.array([[0, 1], [2, 0]])
        assert_grad_ok(lambda ts: take(ts[0], idx, axis=0), [RNG.random((3, 2))])


class TestSoftmax:
    def test_rows_sum_to_one(self):
        out = softmax(Tensor(RNG.random((4, 5))), axis=-1)
        assert np.allclose(out.numpy().sum(axis=-1), 1.0, atol=1e-6)

    def test_invariant_to_shift(self):
        x = RNG.random((3, 4))
        a = softmax(Tensor(x), axis=-1).numpy()
        b = softmax(Tensor(x + 100.0), axis=-1).numpy()
        assert np.allclose(a, b, atol=1e-5)

    def test_grad(self):
        assert_grad_ok(lambda ts: softmax(ts[0], axis=-1), [RNG.random((3, 4))])

    def test_grad_axis0(self):
        assert_grad_ok(lambda ts: softmax(ts[0], axis=0), [RNG.random((3, 4))])

    def test_stable_for_large_inputs(self):
        out = softmax(Tensor(np.array([[1000.0, 1000.0]])), axis=-1)
        assert np.allclose(out.numpy(), 0.5)


class TestLogSoftmax:
    def test_matches_log_of_softmax(self):
        x = RNG.random((3, 4))
        expected = np.log(softmax(Tensor(x)).numpy())
        assert np.allclose(log_softmax(Tensor(x)).numpy(), expected, atol=1e-6)

    def test_grad(self):
        assert_grad_ok(lambda ts: log_softmax(ts[0], axis=-1), [RNG.random((3, 4))])


class TestLogsumexp:
    def test_matches_naive(self):
        x = RNG.random((3, 4))
        expected = np.log(np.exp(x).sum(axis=1))
        assert np.allclose(logsumexp(Tensor(x), axis=1).numpy(), expected, atol=1e-6)

    def test_keepdims(self):
        out = logsumexp(Tensor(RNG.random((3, 4))), axis=1, keepdims=True)
        assert out.shape == (3, 1)

    def test_stable_for_large_inputs(self):
        out = logsumexp(Tensor(np.array([[1000.0, 999.0]])), axis=1)
        assert np.isfinite(out.numpy()).all()

    def test_grad(self):
        assert_grad_ok(lambda ts: logsumexp(ts[0], axis=1), [RNG.random((3, 4))])

    def test_grad_keepdims(self):
        assert_grad_ok(lambda ts: logsumexp(ts[0], axis=0, keepdims=True), [RNG.random((3, 4))])


class TestMaskedFill:
    def test_forward(self):
        mask = np.array([True, False, True])
        out = masked_fill(Tensor(np.ones(3)), mask, -5.0)
        assert list(out.numpy()) == [-5.0, 1.0, -5.0]

    def test_grad_blocked_at_masked_positions(self):
        t = Tensor(np.ones(3), requires_grad=True, dtype=np.float64)
        mask = np.array([True, False, False])
        masked_fill(t, mask, 0.0).sum().backward()
        assert list(t.grad) == [0.0, 1.0, 1.0]

    def test_gradcheck(self):
        mask = RNG.random((3, 4)) > 0.5
        assert_grad_ok(lambda ts: masked_fill(ts[0], mask, 2.0), [RNG.random((3, 4))])
