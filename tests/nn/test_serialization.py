"""Checkpoint save/load round trips."""

import numpy as np
import pytest

from repro.nn import MLP, Tensor, load_module, load_state, save_module, save_state

RNG = np.random.default_rng(11)


class TestStateFiles:
    def test_round_trip(self, tmp_path):
        state = {"a.weight": RNG.random((3, 2)), "b": np.zeros(4)}
        path = str(tmp_path / "ckpt.npz")
        save_state(state, path)
        loaded = load_state(path)
        assert set(loaded) == set(state)
        assert np.allclose(loaded["a.weight"], state["a.weight"])

    def test_extension_appended_on_load(self, tmp_path):
        path = str(tmp_path / "model")
        save_state({"x": np.ones(2)}, path)
        loaded = load_state(path)  # no .npz given
        assert np.allclose(loaded["x"], 1.0)

    def test_creates_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "ckpt")
        save_state({"x": np.ones(1)}, path)
        assert np.allclose(load_state(path)["x"], 1.0)


class TestModuleCheckpoint:
    def test_module_round_trip(self, tmp_path):
        source = MLP(4, [8, 2], RNG)
        clone = MLP(4, [8, 2], np.random.default_rng(99))
        path = str(tmp_path / "mlp")
        save_module(source, path)
        load_module(clone, path)
        x = Tensor(RNG.random((3, 4)).astype(np.float32))
        assert np.allclose(source(x).numpy(), clone(x).numpy(), atol=1e-7)

    def test_load_into_wrong_architecture_fails(self, tmp_path):
        source = MLP(4, [8, 2], RNG)
        other = MLP(4, [16, 2], RNG)
        path = str(tmp_path / "mlp")
        save_module(source, path)
        with pytest.raises((KeyError, ValueError)):
            load_module(other, path)
