"""Checkpoint save/load round trips (parameters, optimizer state, training state)."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    AdamW,
    SGD,
    Tensor,
    load_module,
    load_optimizer_state,
    load_state,
    load_training_state,
    mse_loss,
    optimizer_state,
    save_module,
    save_state,
    save_training_state,
)

RNG = np.random.default_rng(11)


class TestStateFiles:
    def test_round_trip(self, tmp_path):
        state = {"a.weight": RNG.random((3, 2)), "b": np.zeros(4)}
        path = str(tmp_path / "ckpt.npz")
        save_state(state, path)
        loaded = load_state(path)
        assert set(loaded) == set(state)
        assert np.allclose(loaded["a.weight"], state["a.weight"])

    def test_extension_appended_on_load(self, tmp_path):
        path = str(tmp_path / "model")
        save_state({"x": np.ones(2)}, path)
        loaded = load_state(path)  # no .npz given
        assert np.allclose(loaded["x"], 1.0)

    def test_creates_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "ckpt")
        save_state({"x": np.ones(1)}, path)
        assert np.allclose(load_state(path)["x"], 1.0)


def _train_steps(model, optimizer, steps, seed):
    """Deterministic regression steps so optimizer state evolves."""
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        x = Tensor(rng.random((8, 4)).astype(np.float32))
        y = Tensor(rng.random((8, 2)).astype(np.float32))
        loss = mse_loss(model(x), y)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()


class TestOptimizerState:
    def test_adamw_state_round_trip(self):
        model = MLP(4, [8, 2], np.random.default_rng(0))
        optimizer = AdamW(model.parameters(), lr=1e-3)
        _train_steps(model, optimizer, 5, seed=1)
        state = optimizer_state(optimizer)
        assert int(state["step_count"]) == 5

        clone_model = MLP(4, [8, 2], np.random.default_rng(0))
        clone_model.load_state_dict(model.state_dict())
        clone_optimizer = AdamW(clone_model.parameters(), lr=1e-3)
        load_optimizer_state(clone_optimizer, state)
        assert clone_optimizer._step_count == 5
        for index in optimizer._m:
            np.testing.assert_array_equal(optimizer._m[index], clone_optimizer._m[index])
            np.testing.assert_array_equal(optimizer._v[index], clone_optimizer._v[index])

    def test_save_load_continue_training_equivalence(self, tmp_path):
        """The satellite requirement: save → load → continue training is
        identical to uninterrupted training (moments + step counts survive)."""
        reference = MLP(4, [8, 2], np.random.default_rng(0))
        ref_optimizer = AdamW(reference.parameters(), lr=1e-3)
        _train_steps(reference, ref_optimizer, 10, seed=1)

        interrupted = MLP(4, [8, 2], np.random.default_rng(0))
        int_optimizer = AdamW(interrupted.parameters(), lr=1e-3)
        rng = np.random.default_rng(1)
        for _ in range(6):  # same stream as _train_steps' first 6 draws
            x = Tensor(rng.random((8, 4)).astype(np.float32))
            y = Tensor(rng.random((8, 2)).astype(np.float32))
            loss = mse_loss(interrupted(x), y)
            int_optimizer.zero_grad()
            loss.backward()
            int_optimizer.step()
        path = str(tmp_path / "training")
        save_training_state(path, interrupted, [int_optimizer], extra={"epoch": 3})

        resumed = MLP(4, [8, 2], np.random.default_rng(99))
        res_optimizer = AdamW(resumed.parameters(), lr=1e-3)
        extra = load_training_state(path, resumed, [res_optimizer])
        assert extra == {"epoch": 3.0}
        for _ in range(4):  # finish the remaining steps on the same stream
            x = Tensor(rng.random((8, 4)).astype(np.float32))
            y = Tensor(rng.random((8, 2)).astype(np.float32))
            loss = mse_loss(resumed(x), y)
            res_optimizer.zero_grad()
            loss.backward()
            res_optimizer.step()

        for (name, want), (_, got) in zip(
            sorted(reference.state_dict().items()), sorted(resumed.state_dict().items())
        ):
            np.testing.assert_array_equal(want, got, err_msg=name)

    def test_cold_optimizer_diverges_without_state(self, tmp_path):
        """Control: restoring only the weights (fresh optimizer) does NOT
        reproduce uninterrupted training — the moment buffers matter."""
        reference = MLP(4, [8, 2], np.random.default_rng(0))
        ref_optimizer = AdamW(reference.parameters(), lr=1e-3)
        _train_steps(reference, ref_optimizer, 10, seed=1)

        cold = MLP(4, [8, 2], np.random.default_rng(0))
        warm_opt = AdamW(cold.parameters(), lr=1e-3)
        _train_steps(cold, warm_opt, 6, seed=1)
        path = str(tmp_path / "weights")
        save_module(cold, path)
        reloaded = MLP(4, [8, 2], np.random.default_rng(0))
        load_module(reloaded, path)
        cold_opt = AdamW(reloaded.parameters(), lr=1e-3)  # moments lost
        rng = np.random.default_rng(1)
        for _ in range(6):  # skip the consumed draws
            rng.random((8, 4)), rng.random((8, 2))
        for _ in range(4):
            x = Tensor(rng.random((8, 4)).astype(np.float32))
            y = Tensor(rng.random((8, 2)).astype(np.float32))
            loss = mse_loss(reloaded(x), y)
            cold_opt.zero_grad()
            loss.backward()
            cold_opt.step()
        diverged = any(
            not np.array_equal(a, b)
            for a, b in zip(
                reference.state_dict().values(), reloaded.state_dict().values()
            )
        )
        assert diverged

    def test_sgd_velocity_round_trip(self):
        model = MLP(4, [8, 2], np.random.default_rng(0))
        optimizer = SGD(model.parameters(), lr=1e-2, momentum=0.9)
        _train_steps(model, optimizer, 3, seed=2)
        state = optimizer_state(optimizer)
        clone = SGD(model.parameters(), lr=1e-2, momentum=0.9)
        load_optimizer_state(clone, state)
        for index in optimizer._velocity:
            np.testing.assert_array_equal(
                optimizer._velocity[index], clone._velocity[index]
            )

    def test_buffer_shape_mismatch_rejected(self):
        model = MLP(4, [8, 2], np.random.default_rng(0))
        optimizer = AdamW(model.parameters(), lr=1e-3)
        _train_steps(model, optimizer, 2, seed=0)
        state = optimizer_state(optimizer)
        other = MLP(4, [16, 2], np.random.default_rng(0))
        other_optimizer = AdamW(other.parameters(), lr=1e-3)
        with pytest.raises(ValueError):
            load_optimizer_state(other_optimizer, state)

    def test_optimizer_count_mismatch_rejected(self, tmp_path):
        model = MLP(4, [8, 2], np.random.default_rng(0))
        optimizer = AdamW(model.parameters(), lr=1e-3)
        path = str(tmp_path / "ckpt")
        save_training_state(path, model, [optimizer])
        with pytest.raises(ValueError):
            load_training_state(path, model, [optimizer, AdamW(model.parameters(), lr=1e-3)])

    def test_model_only_restore_from_training_state(self, tmp_path):
        """Serving restores weights from a training checkpoint without
        rebuilding optimizers."""
        model = MLP(4, [8, 2], np.random.default_rng(0))
        optimizer = AdamW(model.parameters(), lr=1e-3)
        _train_steps(model, optimizer, 3, seed=4)
        path = str(tmp_path / "ckpt")
        save_training_state(path, model, [optimizer])
        serving = MLP(4, [8, 2], np.random.default_rng(5))
        load_training_state(path, serving, ())
        x = Tensor(RNG.random((3, 4)).astype(np.float32))
        np.testing.assert_array_equal(model(x).numpy(), serving(x).numpy())


class TestModuleCheckpoint:
    def test_module_round_trip(self, tmp_path):
        source = MLP(4, [8, 2], RNG)
        clone = MLP(4, [8, 2], np.random.default_rng(99))
        path = str(tmp_path / "mlp")
        save_module(source, path)
        load_module(clone, path)
        x = Tensor(RNG.random((3, 4)).astype(np.float32))
        assert np.allclose(source(x).numpy(), clone(x).numpy(), atol=1e-7)

    def test_load_into_wrong_architecture_fails(self, tmp_path):
        source = MLP(4, [8, 2], RNG)
        other = MLP(4, [16, 2], RNG)
        path = str(tmp_path / "mlp")
        save_module(source, path)
        with pytest.raises((KeyError, ValueError)):
            load_module(other, path)
