"""Shadow-sampled live recall: sampling, oracle agreement, fleet wiring."""

import numpy as np
import pytest

from repro.core import ModelConfig, build_model
from repro.obs import MetricsRegistry, ShadowRecallMonitor
from repro.retrieval import CascadeConfig, RetrievalProbe
from repro.serving import SearchEngine, ShardedCluster, ZipfLoadGenerator, replay


@pytest.fixture()
def model(test_set):
    return build_model(
        "aw_moe", ModelConfig.unit(), test_set.meta, np.random.default_rng(0)
    )


class TestSamplingDecision:
    def test_rate_bounds_and_counters(self):
        monitor = ShadowRecallMonitor(rate=0.0)
        assert not any(monitor.should_sample() for _ in range(50))
        assert monitor.requests == 50
        always = ShadowRecallMonitor(rate=1.0)
        assert all(always.should_sample() for _ in range(10))

    def test_partial_rate_is_seeded_and_roughly_proportional(self):
        def decisions(seed):
            monitor = ShadowRecallMonitor(rate=0.2, seed=seed)
            return [monitor.should_sample() for _ in range(500)]

        assert decisions(3) == decisions(3)
        assert 50 < sum(decisions(3)) < 150  # ~100 expected

    def test_validation(self):
        with pytest.raises(ValueError):
            ShadowRecallMonitor(rate=1.5)
        with pytest.raises(ValueError):
            ShadowRecallMonitor(k=0)
        with pytest.raises(ValueError):
            ShadowRecallMonitor().observe(1.2)


class TestBookkeeping:
    def test_running_mean_and_gauge(self):
        registry = MetricsRegistry()
        monitor = ShadowRecallMonitor(rate=1.0, registry=registry)
        monitor.observe(1.0)
        monitor.observe(0.5)
        assert monitor.recall_at_k == pytest.approx(0.75)
        assert registry.gauge("retrieval_recall_at_k").value == pytest.approx(0.75)
        assert monitor.stats()["samples"] == 2

    def test_merge_pools_counts_and_sums(self):
        a, b = ShadowRecallMonitor(rate=1.0), ShadowRecallMonitor(rate=1.0)
        for _ in range(3):
            a.should_sample()
        a.observe(1.0)
        b.should_sample()
        b.observe(0.0)
        merged = a.merge(b)
        assert merged.requests == 4
        assert merged.samples == 2
        assert merged.recall_at_k == pytest.approx(0.5)
        assert merged.histogram.count == 2
        with pytest.raises(ValueError):
            a.merge(ShadowRecallMonitor(k=5))


class TestEngineShadowProbe:
    def test_exhaustive_cascade_scores_perfect_recall(self, unit_world, model):
        """The oracle is the exhaustive cascade's own surface, so a cascade
        in exhaustive-parity mode must shadow-measure recall exactly 1.0."""
        monitor = ShadowRecallMonitor(rate=1.0, k=10)
        engine = SearchEngine(
            unit_world,
            model,
            np.random.default_rng(1),
            cascade=CascadeConfig.exhaustive(),
            shadow_recall=monitor,
        )
        for user, category in [(1, 1), (2, 2), (3, 1), (5, 3)]:
            engine.retrieve(category, user=user)
        assert monitor.samples == 4
        assert monitor.recall_at_k == 1.0

    def test_lossy_cascade_matches_retrieval_probe_oracle(self, unit_world, model):
        """Shadow recall over a replayed query set agrees with the canary
        RetrievalProbe on the same queries — same oracle, same answer."""
        config = CascadeConfig(retrieve_n=32, prune=16, nprobe=2)
        queries = [(user, user % unit_world.config.num_categories)
                   for user in range(1, 21)]
        monitor = ShadowRecallMonitor(rate=1.0, k=10)
        engine = SearchEngine(
            unit_world,
            model,
            np.random.default_rng(1),
            cascade=config,
            shadow_recall=monitor,
        )
        for user, category in queries:
            engine.retrieve(category, user=user)
        probe = RetrievalProbe(
            unit_world, config, queries=queries, k=10, min_recall=0.0
        )
        _, probe_recall = probe.check(model)
        assert monitor.samples == len(queries)
        assert monitor.recall_at_k == pytest.approx(probe_recall, abs=0.02)

    def test_unsampled_calls_do_not_run_the_oracle(self, unit_world, model):
        monitor = ShadowRecallMonitor(rate=0.0)
        engine = SearchEngine(
            unit_world,
            model,
            np.random.default_rng(1),
            cascade=CascadeConfig(retrieve_n=32, prune=16, nprobe=2),
            shadow_recall=monitor,
        )
        engine.retrieve(1, user=1)
        assert monitor.requests == 1
        assert monitor.samples == 0

    def test_cluster_runtime_attachment(self, unit_world, model):
        """The benchmark/ops pattern: time a fleet clean, then switch the
        shared monitor on — every shard's engine starts consulting it."""
        cluster = ShardedCluster(
            unit_world,
            model,
            num_shards=2,
            seed=0,
            cascade=CascadeConfig(retrieve_n=32, prune=16, nprobe=2),
        )
        events = ZipfLoadGenerator(
            np.random.default_rng(5), world=unit_world
        ).generate(6)
        replay(cluster, events)
        monitor = ShadowRecallMonitor(rate=1.0, k=10)
        assert monitor.requests == 0
        cluster.attach_shadow_recall(monitor)
        replay(cluster, events)
        assert monitor.requests == 6
        assert monitor.samples == 6
        assert 0.0 <= monitor.recall_at_k <= 1.0
        cluster.attach_shadow_recall(None)
        replay(cluster, events)
        assert monitor.requests == 6  # detached: no longer consulted

    def test_sampling_path_without_cascade_never_samples(self, unit_world, model):
        """Shadow recall is a cascade quality probe: the plain sampling
        retrieval path (no cascade) does not consult the monitor."""
        monitor = ShadowRecallMonitor(rate=1.0)
        engine = SearchEngine(
            unit_world, model, np.random.default_rng(1), shadow_recall=monitor
        )
        engine.retrieve(1, user=1)
        assert monitor.requests == 0
