"""Shard router: deterministic placement, full delivery, merged stats."""

import numpy as np
import pytest

from repro.core import ModelConfig, build_model
from repro.serving import ManualClock, ShardedCluster, shard_for_user


@pytest.fixture()
def cluster(unit_world, test_set):
    model = build_model("aw_moe", ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
    return ShardedCluster(
        unit_world,
        model,
        num_shards=3,
        seed=11,
        max_batch_size=4,
        flush_deadline_ms=1e9,
        clock=ManualClock(),
    )


class TestRouting:
    def test_same_user_always_same_shard(self):
        for user in range(200):
            shards = {shard_for_user(user, 4) for _ in range(5)}
            assert len(shards) == 1

    def test_mapping_is_the_documented_hash(self):
        # Pin the exact mapping so a refactor cannot silently reshuffle the
        # fleet (which would orphan every per-shard cache in a rollout).
        assert shard_for_user(0, 3) == 0
        assert shard_for_user(1, 3) == (2654435761 % (1 << 32)) % 3

    def test_users_spread_across_shards(self):
        counts = np.bincount([shard_for_user(u, 4) for u in range(1000)], minlength=4)
        assert np.all(counts > 150)  # no dead or dominant shard

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_for_user(1, 0)

    def test_cluster_routes_to_owning_worker(self, cluster):
        for user in (1, 7, 42):
            worker = cluster.worker_for(user)
            assert worker.shard_id == shard_for_user(user, cluster.num_shards)


class TestClusterServing:
    def test_every_query_answered_once(self, cluster, unit_world):
        traffic = [(user, int(np.argmax(unit_world.user_interests[user]))) for user in range(20)]
        results = []
        for user, qcat in traffic:
            results.extend(cluster.submit(user, qcat))
        results.extend(cluster.flush())
        assert sorted(r.user for r in results) == sorted(u for u, _ in traffic)

    def test_queries_land_only_on_owned_shard(self, cluster):
        cluster.submit(5, 0)
        owner = cluster.shard_for(5)
        for worker in cluster.workers:
            expected = 1 if worker.shard_id == owner else 0
            assert worker.batcher.pending == expected
        cluster.flush()

    def test_shards_have_independent_rngs(self, cluster):
        # Engines draw from SeedBank children: distinct streams per shard.
        draws = {worker.engine._rng.integers(0, 1 << 30) for worker in cluster.workers}
        assert len(draws) == len(cluster.workers)

    def test_merged_metrics_and_summary(self, cluster, unit_world):
        for user in range(12):
            cluster.submit(user, int(np.argmax(unit_world.user_interests[user])))
        cluster.flush()
        merged = cluster.merged_metrics()
        assert merged.queries == 12
        summary = cluster.summary()
        assert summary["queries"] == 12
        assert summary["num_shards"] == 3
        assert sum(shard["queries"] for shard in summary["shards"]) == 12

    def test_repeated_sessions_hit_owning_shards_cache(self, cluster):
        for _ in range(3):
            cluster.submit(5, 1)
            cluster.flush()
        owner = cluster.worker_for(5)
        assert owner.cache.gates.stats.hits == 2
        assert cluster.merged_metrics().cache_stats.hits == 2

    def test_invalid_num_shards(self, unit_world, test_set):
        model = build_model("dnn", ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
        with pytest.raises(ValueError):
            ShardedCluster(unit_world, model, num_shards=0)
