"""Session cache: LRU eviction, hit/miss accounting, invalidation."""

import numpy as np

from repro.serving import CacheStats, LRUCache, SessionCache


class TestLRUCache:
    def test_hit_miss_accounting(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a" so "b" is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats.evictions == 1

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert: nothing evicted
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_zero_capacity_disables_storage(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_contains_does_not_touch_stats(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert "a" in cache
        assert cache.stats.lookups == 0

    def test_hit_rate_empty(self):
        assert LRUCache(2).stats.hit_rate == 0.0


class TestCacheStats:
    def test_merge_sums_counters(self):
        merged = CacheStats(1, 2, 3).merge(CacheStats(10, 20, 30))
        assert (merged.hits, merged.misses, merged.evictions) == (11, 22, 33)

    def test_reset(self):
        stats = CacheStats(5, 5, 5)
        stats.reset()
        assert stats.lookups == 0


class TestSessionCache:
    def test_gate_round_trip(self):
        cache = SessionCache(8)
        gate = np.array([0.2, 0.8], dtype=np.float32)
        assert cache.get_gate(3, 1) is None
        cache.put_gate(3, 1, gate)
        np.testing.assert_array_equal(cache.get_gate(3, 1), gate)
        assert cache.gate_hit_rate == 0.5

    def test_gate_keyed_by_user_and_category(self):
        cache = SessionCache(8)
        cache.put_gate(3, 1, np.zeros(2))
        assert cache.get_gate(3, 2) is None
        assert cache.get_gate(4, 1) is None

    def test_behavior_keyed_by_user_only(self):
        cache = SessionCache(8)
        encoding = (np.zeros(4), np.zeros(4), np.zeros((4, 4)), np.zeros(4))
        cache.put_behavior(7, encoding)
        assert cache.get_behavior(7) is not None
        assert cache.behaviors.stats.hits == 1

    def test_invalidate_user_drops_all_entries(self):
        cache = SessionCache(8)
        cache.put_gate(3, 1, np.zeros(2))
        cache.put_gate(3, 2, np.zeros(2))
        cache.put_gate(4, 1, np.ones(2))
        cache.put_behavior(3, (np.zeros(1),) * 4)
        cache.invalidate_user(3)
        assert cache.get_gate(3, 1) is None
        assert cache.get_gate(3, 2) is None
        assert cache.get_behavior(3) is None
        assert cache.get_gate(4, 1) is not None

    def test_reset_stats(self):
        cache = SessionCache(8)
        cache.get_gate(1, 1)
        cache.get_behavior(1)
        cache.reset_stats()
        assert cache.gates.stats.lookups == 0
        assert cache.behaviors.stats.lookups == 0

    def test_separate_behavior_capacity(self):
        cache = SessionCache(gate_capacity=1, behavior_capacity=3)
        assert cache.gates.capacity == 1
        assert cache.behaviors.capacity == 3

    def test_invalidate_all_drops_gates_and_bumps_generation(self):
        """Regression test for the stale-cache hazard: after a model swap no
        gate vector from the old model may survive, and the generation tag
        lets in-flight consumers detect the swap."""
        cache = SessionCache(8)
        cache.put_gate(3, 1, np.zeros(2))
        cache.put_gate(4, 2, np.ones(2))
        cache.put_behavior(3, (np.zeros(1),) * 4)
        assert cache.generation == 0
        cache.invalidate_all()
        assert cache.generation == 1
        assert len(cache.gates) == 0
        assert cache.get_gate(3, 1) is None
        assert cache.get_gate(4, 2) is None
        # Behaviour encodings are model-independent and survive by default.
        assert cache.get_behavior(3) is not None

    def test_invalidate_all_can_include_behaviors(self):
        cache = SessionCache(8)
        cache.put_behavior(3, (np.zeros(1),) * 4)
        cache.invalidate_all(include_behaviors=True)
        assert cache.get_behavior(3) is None

    def test_generation_only_moves_forward(self):
        cache = SessionCache(8)
        for expected in range(1, 4):
            cache.invalidate_all()
            assert cache.generation == expected
