"""Observability threaded through the serving stack.

Covers the MetricsSink streaming/exact duality, its event + SLO + registry
surface, and the request traces the engine, batcher, and cluster emit.
"""

import json

import numpy as np
import pytest

from repro.core import ModelConfig, build_model
from repro.obs import InMemoryExporter, SloTracker, Tracer
from repro.retrieval import CascadeConfig
from repro.serving import (
    CacheStats,
    ManualClock,
    MetricsSink,
    MicroBatcher,
    SearchEngine,
    ShardedCluster,
    latency_percentile,
)


def _engine(unit_world, test_set, tracer=None, cascade=None, seed=1):
    model = build_model(
        "aw_moe", ModelConfig.unit(), test_set.meta, np.random.default_rng(0)
    )
    return SearchEngine(
        unit_world,
        model,
        np.random.default_rng(seed),
        tracer=tracer,
        cascade=cascade,
    )


def _span_tree(trace_dict):
    """{span id: record} plus a name → children-names map."""
    spans = {span["id"]: span for span in trace_dict["spans"]}
    children = {}
    for span in trace_dict["spans"]:
        if span["parent"] is not None:
            parent_name = spans[span["parent"]]["name"]
            children.setdefault(parent_name, []).append(span["name"])
    return spans, children


# ----------------------------------------------------------------------
# MetricsSink: streaming by default, exact on request
# ----------------------------------------------------------------------
class TestSinkModes:
    def test_streaming_sink_holds_no_raw_samples(self):
        sink = MetricsSink(clock=ManualClock())
        for i in range(100):
            sink.record_query(float(i + 1))
            sink.record_batch((i % 4) + 1)
        assert sink.latencies_ms is None
        assert sink.batch_sizes is None
        assert sink.queries == 100
        assert sink.max_batch_size == 4

    def test_streaming_percentiles_track_exact(self):
        rng = np.random.default_rng(0)
        latencies = (rng.lognormal(1.0, 0.7, size=5_000) + 0.1).tolist()
        streaming = MetricsSink(clock=ManualClock())
        exact = MetricsSink(clock=ManualClock(), exact=True)
        for latency in latencies:
            streaming.record_query(latency)
            exact.record_query(latency)
        for p in (50.0, 95.0, 99.0):
            truth = latency_percentile(latencies, p)
            assert exact.percentile(p) == truth  # exact mode is bitwise
            assert streaming.percentile(p) == pytest.approx(truth, rel=0.02)

    def test_batch_histograms_agree_across_modes(self):
        streaming = MetricsSink(clock=ManualClock())
        exact = MetricsSink(clock=ManualClock(), exact=True)
        for size in [3, 1, 3, 7, 1, 3]:
            streaming.record_batch(size)
            exact.record_batch(size)
        expected = {1: 2, 3: 3, 7: 1}
        assert streaming.batch_size_histogram() == expected
        assert exact.batch_size_histogram() == expected
        assert streaming.max_batch_size == exact.max_batch_size == 7

    def test_merge_demotes_to_streaming_unless_both_exact(self):
        exact_a = MetricsSink(clock=ManualClock(), exact=True)
        exact_b = MetricsSink(clock=ManualClock(), exact=True)
        streaming = MetricsSink(clock=ManualClock())
        for sink, latency in ((exact_a, 1.0), (exact_b, 2.0), (streaming, 3.0)):
            sink.record_query(latency)
        both_exact = exact_a.merge(exact_b)
        assert both_exact.exact and sorted(both_exact.latencies_ms) == [1.0, 2.0]
        demoted = exact_a.merge(streaming)
        assert not demoted.exact and demoted.latencies_ms is None
        assert demoted.queries == 2
        assert demoted.percentile(99) == pytest.approx(3.0, rel=0.02)


class TestSinkEventsAndSlo:
    def test_control_plane_events_recorded(self):
        clock = ManualClock()
        sink = MetricsSink(clock=clock)
        sink.record_swap(version="v2")
        clock.advance(1.0)
        sink.record_canary(False, version="v3", recall=0.84)
        sink.record_log_lag(5)
        kinds = [event.kind for event in sink.events.events()]
        assert kinds == ["hot_swap", "canary_verdict", "recall_probe", "click_log_lag"]
        verdict = sink.events.events("canary_verdict")[0]
        assert verdict.attrs == {"passed": False, "version": "v3"}
        assert sink.events.events("recall_probe")[0].attrs["recall"] == 0.84
        assert sink.summary()["events"]["hot_swap"] == 1

    def test_record_query_feeds_slo(self):
        slo = SloTracker(latency_slo_ms=10.0, availability_target=0.9)
        clock = ManualClock()
        sink = MetricsSink(clock=clock, slo=slo)
        sink.record_query(50.0)
        sink.record_query(1.0)
        assert slo.window_violations() == 1
        status = sink.summary()["slo"]
        assert status["window_requests"] == 2
        assert status["healthy"] is False

    def test_summary_without_slo_reports_none(self):
        assert MetricsSink(clock=ManualClock()).summary()["slo"] is None


class TestSinkExport:
    def test_registry_and_prometheus_snapshot(self):
        sink = MetricsSink(clock=ManualClock())
        for latency in (1.0, 2.0, 8.0):
            sink.record_query(latency)
        sink.record_batch(3)
        sink.record_cache(CacheStats(hits=1, misses=2, evictions=0))
        sink.record_swap(version="v2")
        registry = sink.to_registry()
        assert registry.counter("repro_queries_total").value == 3
        assert registry.counter("repro_cache_hits_total").value == 1
        assert registry.counter("repro_model_swaps_total").value == 1
        hist = registry.histogram("repro_latency_ms")
        assert hist.count == 3
        assert hist.quantile(50) == pytest.approx(2.0, rel=0.02)
        text = sink.prometheus_text()
        assert "repro_queries_total 3" in text
        assert 'repro_latency_ms_bucket{le="+Inf"} 3' in text
        json.dumps(registry.to_json())


# ----------------------------------------------------------------------
# Request traces through the serving layers
# ----------------------------------------------------------------------
class TestEngineTraces:
    def test_search_emits_stage_and_kernel_spans(self, unit_world, test_set):
        exporter = InMemoryExporter()
        tracer = Tracer(exporter=exporter)
        engine = _engine(unit_world, test_set, tracer=tracer)
        engine.search(user=3, query_category=1)
        (record,) = exporter.records
        assert record["name"] == "search"
        assert record["attrs"]["user"] == 3
        spans, children = _span_tree(record)
        top_level = [s["name"] for s in record["spans"] if s["parent"] is None]
        # No cascade → no session-gate stage to resolve up front.
        assert top_level == ["retrieve", "assemble", "rank"]
        # Per-kernel children under rank, stamped with the cost model.
        kernels = children["rank"]
        assert "experts" in kernels and "mix" in kernels
        experts = next(s for s in record["spans"] if s["name"] == "experts")
        assert experts["attrs"]["flops"] > 0

    def test_cascade_substages_traced(self, unit_world, test_set):
        exporter = InMemoryExporter()
        tracer = Tracer(exporter=exporter)
        engine = _engine(
            unit_world,
            test_set,
            tracer=tracer,
            cascade=CascadeConfig(retrieve_n=12, prune=8, nprobe=1),
        )
        engine.search(user=3, query_category=1)
        (record,) = exporter.records
        _, children = _span_tree(record)
        top_level = [s["name"] for s in record["spans"] if s["parent"] is None]
        assert top_level[0] == "gate"  # session gate resolved once, up front
        assert "session-vector" in children["retrieve"]
        assert "ivf-probe" in children["retrieve"]

    def test_untraced_search_unchanged(self, unit_world, test_set):
        baseline = _engine(unit_world, test_set).search(3, 1)
        traced = _engine(unit_world, test_set, tracer=Tracer()).search(3, 1)
        assert np.array_equal(baseline.items, traced.items)
        assert np.array_equal(baseline.scores, traced.scores)


class TestBatcherTraces:
    def test_batched_request_span_tree(self, unit_world, test_set):
        clock = ManualClock()
        exporter = InMemoryExporter()
        tracer = Tracer(exporter=exporter, clock=clock)
        engine = _engine(unit_world, test_set)
        batcher = MicroBatcher(
            engine, max_batch_size=2, flush_deadline_ms=1e9, clock=clock, tracer=tracer
        )
        batcher.submit(1, 0)
        clock.advance(0.003)
        results = batcher.submit(2, 1)  # size trigger flushes both
        assert len(results) == 2
        assert len(exporter.records) == 2
        first, second = exporter.records
        spans, children = _span_tree(first)
        top_level = [s["name"] for s in first["spans"] if s["parent"] is None]
        assert top_level == ["submit", "queue-wait", "flush"]
        assert children["submit"] == ["gate", "retrieve", "assemble"]
        assert "rank" in children["flush"]
        assert "experts" in children["rank"]  # shared batch work fanned out
        # The first query waited for the second; the second never queued.
        wait_first = next(s for s in first["spans"] if s["name"] == "queue-wait")
        wait_second = next(s for s in second["spans"] if s["name"] == "queue-wait")
        assert wait_first["duration_ms"] == pytest.approx(3.0)
        assert wait_second["duration_ms"] == pytest.approx(0.0)
        flush = next(s for s in first["spans"] if s["name"] == "flush")
        assert flush["attrs"]["batch_size"] == 2

    def test_gate_cache_hit_lands_on_span(self, unit_world, test_set):
        clock = ManualClock()
        exporter = InMemoryExporter()
        tracer = Tracer(exporter=exporter, clock=clock)
        from repro.serving import SessionCache

        batcher = MicroBatcher(
            _engine(unit_world, test_set),
            max_batch_size=1,
            cache=SessionCache(8),
            clock=clock,
            tracer=tracer,
        )
        batcher.submit(3, 2)  # miss: session not yet cached
        batcher.submit(3, 2)  # hit: same session re-issued
        hits = []
        for record in exporter.records:
            gate = next(s for s in record["spans"] if s["name"] == "gate")
            hits.append(gate["attrs"]["cache_hit"])
        assert hits == [False, True]

    def test_unsampled_traffic_records_nothing(self, unit_world, test_set):
        clock = ManualClock()
        exporter = InMemoryExporter()
        tracer = Tracer(sample_rate=0.0, exporter=exporter, clock=clock)
        batcher = MicroBatcher(
            _engine(unit_world, test_set), max_batch_size=2, clock=clock, tracer=tracer
        )
        batcher.submit(1, 0)
        results = batcher.submit(2, 1)
        assert len(results) == 2
        assert exporter.records == []
        assert tracer.stats()["started"] == 2


class TestClusterObservability:
    @pytest.fixture()
    def cluster(self, unit_world, test_set):
        model = build_model(
            "aw_moe", ModelConfig.unit(), test_set.meta, np.random.default_rng(0)
        )
        clock = ManualClock()
        tracer = Tracer(exporter=InMemoryExporter(), clock=clock)
        slo = SloTracker(latency_slo_ms=1e6, window_seconds=600.0)
        cluster = ShardedCluster(
            unit_world,
            model,
            num_shards=2,
            max_batch_size=2,
            clock=clock,
            tracer=tracer,
            slo=slo,
        )
        return cluster, clock

    def test_fleet_report_sections(self, cluster):
        cluster, clock = cluster
        for user in range(8):
            cluster.submit(user, user % 3)
        cluster.flush()
        cluster.swap_model(cluster.workers[0].engine.model, version="v2")
        report = cluster.fleet_report()
        assert "fleet — 2 shard(s), model v2" in report
        assert "per-shard" in report
        assert "SLO: p99" in report and "HEALTHY" in report
        assert "requests sampled (rate 1.00)" in report
        assert "recent control-plane events" in report
        assert "hot_swap" in report and "cache_invalidation" in report

    def test_shard_sinks_feed_one_slo(self, cluster):
        cluster, clock = cluster
        for user in range(8):
            cluster.submit(user, 0)
        cluster.flush()
        assert cluster.slo.window_requests() == 8
        assert cluster.merged_metrics().summary()["slo"]["window_requests"] == 8

    def test_every_request_traced_across_shards(self, cluster):
        cluster, clock = cluster
        for user in range(6):
            cluster.submit(user, 0)
        cluster.flush()
        stats = cluster.tracer.stats()
        assert stats["started"] == 6
        assert stats["exported"] == 6
