"""Serving cost model, engine simulator, and A/B test."""

import numpy as np
import pytest

from repro.core import ModelConfig, build_model
from repro.retrieval import CascadeConfig
from repro.serving import (
    SearchEngine,
    compare_gate_strategies,
    compare_retrieval_strategies,
    gate_network_flops,
    mlp_flops,
    model_flops,
    run_ab_test,
)
from repro.data.schema import validate_batch


class TestCostModel:
    def test_mlp_flops_hand_computed(self):
        # 4 -> 8 -> 2: 2*4*8 + 2*8*2 = 64 + 32
        assert mlp_flops(4, [8, 2]) == 96

    def test_gate_flops_scale_with_sequence(self, test_set):
        config = ModelConfig.paper()
        short = gate_network_flops(config, test_set.meta, seq_len=10)
        long = gate_network_flops(config, test_set.meta, seq_len=1000)
        assert long > 50 * short

    def test_gate_saving_matches_items_per_session(self, test_set):
        report = compare_gate_strategies(ModelConfig.paper(), test_set.meta, 40, 100)
        assert report.gate_saving_factor == 40.0

    def test_paper_scenario_exceeds_10x(self, test_set):
        """§III-F: "> 10x saving" refers to the gate-network overhead — the
        deployed design evaluates the gate once per session instead of once
        per candidate item, so gate resources shrink by the session size."""
        report = compare_gate_strategies(
            ModelConfig.paper(), test_set.meta, items_per_session=40, seq_len=1000
        )
        assert report.gate_saving_factor > 10.0
        gate_cost_per_item_design = report.gate_flops * report.items_per_session
        gate_cost_per_session_design = report.gate_flops
        assert gate_cost_per_item_design / gate_cost_per_session_design > 10.0
        # End-to-end, the saving is smaller (input network + experts still run
        # per item) but strictly positive.
        assert report.total_saving_factor > 1.0

    def test_total_cost_ordering(self, test_set):
        config = ModelConfig.paper()
        per_item = model_flops(config, test_set.meta, 100, gate_per_item=True, items=20)
        per_session = model_flops(config, test_set.meta, 100, gate_per_item=False, items=20)
        assert per_item > per_session

    def test_invalid_items(self, test_set):
        with pytest.raises(ValueError):
            compare_gate_strategies(ModelConfig.paper(), test_set.meta, 0, 10)


class TestCascadeCostModel:
    def test_cascade_beats_exhaustive_on_large_categories(self, test_set):
        report = compare_retrieval_strategies(
            ModelConfig.paper(),
            test_set.meta,
            seq_len=20,
            category_size=10_000,
            cascade=CascadeConfig(retrieve_n=1024, prune=256, nprobe=8),
            vector_dim=16,
        )
        assert report.ranker_saving_factor == 10_000 / 256
        assert report.total_saving_factor > 5.0
        # Stage 1+2 are a rounding error next to one full-model candidate.
        per_item = report.exhaustive_flops / 10_000
        assert report.stage1_flops + report.prefilter_flops < 10 * per_item

    def test_exhaustive_cascade_costs_more_than_exhaustive(self, test_set):
        """Parity mode scans everything *and* runs the ranker on everything
        — strictly more work, which is why it is a test oracle, not a
        serving mode."""
        report = compare_retrieval_strategies(
            ModelConfig.paper(),
            test_set.meta,
            seq_len=20,
            category_size=500,
            cascade=CascadeConfig.exhaustive(),
            vector_dim=16,
        )
        assert report.survivors == 500
        assert report.cascade_flops > report.exhaustive_flops
        assert report.total_saving_factor < 1.0

    def test_report_is_json_ready(self, test_set):
        import json

        report = compare_retrieval_strategies(
            ModelConfig.unit(),
            test_set.meta,
            seq_len=8,
            category_size=100,
            cascade=CascadeConfig(retrieve_n=32, prune=8, nprobe=2),
            vector_dim=10,
        )
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["survivors"] == 8
        assert payload["total_saving_factor"] > 1.0

    def test_invalid_category_size(self, test_set):
        with pytest.raises(ValueError):
            compare_retrieval_strategies(
                ModelConfig.unit(), test_set.meta, 8, 0, CascadeConfig(), 10
            )


class TestSearchEngine:
    @pytest.fixture()
    def engine(self, unit_world, test_set):
        model = build_model("aw_moe", ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
        return SearchEngine(unit_world, model, np.random.default_rng(1))

    def test_retrieval_respects_category(self, engine, unit_world):
        candidates = engine.retrieve(2)
        assert np.all(unit_world.item_category[candidates] == 2)

    def test_batch_is_valid(self, engine):
        candidates = engine.retrieve(1)
        batch = engine.build_batch(0, 1, candidates)
        validate_batch(batch)

    def test_search_returns_sorted_scores(self, engine):
        result = engine.search(user=3, query_category=2)
        assert np.all(np.diff(result.scores) <= 0)
        assert result.items.size == result.scores.size

    def test_latency_tracked(self, engine):
        engine.search(1, 0)
        engine.search(2, 1)
        assert engine.queries_served == 2
        assert engine.avg_latency_ms > 0

    def test_avg_latency_zero_before_queries(self, unit_world, test_set):
        model = build_model("dnn", ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
        engine = SearchEngine(unit_world, model, np.random.default_rng(1))
        assert engine.avg_latency_ms == 0.0

    def test_mean_latency_alias_removed(self, engine):
        """The deprecated ``mean_latency_ms`` alias (warned since PR 3) is
        gone; ``avg_latency_ms`` is the only name."""
        assert not hasattr(engine, "mean_latency_ms")

    def test_reset_stats(self, engine):
        engine.search(1, 0)
        engine.reset_stats()
        assert engine.queries_served == 0
        assert engine.avg_latency_ms == 0.0

    def test_retrieve_small_category_returns_whole_inventory(self, unit_world, test_set):
        """A category with fewer items than candidates_per_query exposes all
        of its items — no sampling error, no short list surprises."""
        model = build_model("dnn", ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
        engine = SearchEngine(
            unit_world, model, np.random.default_rng(1),
            candidates_per_query=unit_world.num_items + 1,
        )
        members = np.flatnonzero(unit_world.item_category == 3)
        assert members.size < engine.candidates_per_query
        candidates = engine.retrieve(3)
        np.testing.assert_array_equal(np.sort(candidates), members)
        # And the full pipeline serves such a category end to end.
        result = engine.search(user=2, query_category=3)
        assert result.items.size == members.size

    def test_retrieve_empty_category_raises(self, unit_world, test_set):
        model = build_model("dnn", ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
        engine = SearchEngine(unit_world, model, np.random.default_rng(1))
        engine._by_category[0] = np.array([], dtype=np.int64)
        with pytest.raises(ValueError):
            engine.retrieve(0)


class TestSessionGateScoring:
    """The §III-F1 decomposed path: gate once per session, experts per item."""

    @pytest.fixture()
    def engine(self, unit_world, test_set):
        model = build_model("aw_moe", ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
        return SearchEngine(unit_world, model, np.random.default_rng(1))

    def test_session_gate_matches_full_forward(self, engine):
        candidates = engine.retrieve(1)
        batch = engine.build_batch(3, 1, candidates)
        gate = engine.session_gate(batch)
        assert gate is not None and gate.ndim == 1
        full = engine.model.gate_outputs(batch)
        np.testing.assert_allclose(full, np.tile(gate, (len(full), 1)), rtol=1e-6)

    def test_score_with_gate_override_identical(self, engine):
        candidates = engine.retrieve(2)
        batch = engine.build_batch(5, 2, candidates)
        plain = engine.score_candidates(batch)
        gated = engine.score_candidates(batch, gate=engine.session_gate(batch))
        np.testing.assert_allclose(plain, gated, rtol=1e-6, atol=1e-7)

    def test_gateless_model_reports_no_session_gate(self, unit_world, test_set):
        model = build_model("din", ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
        engine = SearchEngine(unit_world, model, np.random.default_rng(1))
        assert not engine.supports_session_gate
        candidates = engine.retrieve(1)
        batch = engine.build_batch(3, 1, candidates)
        assert engine.session_gate(batch) is None
        # A gate argument is ignored rather than crashing the scorer.
        scores = engine.score_candidates(batch, gate=np.ones(4, dtype=np.float32))
        assert scores.shape == (candidates.size,)


class TestABTest:
    def test_oracle_beats_antioracle(self, unit_world, test_set):
        """A ranker aligned with true preferences must win UCVR over an
        inverted one — the sanity check for the simulator's sensitivity."""
        from repro.core.ranking_model import RankingModel
        from repro.nn import Tensor
        from repro.data.features import UserState, cross_features
        from repro.data.synthetic import _true_logits

        class OracleRanker(RankingModel):
            sign = 1.0

            def forward(self, batch):
                world = unit_world
                out = np.zeros(len(batch["label"]), dtype=np.float32)
                for i in range(len(out)):
                    user = int(batch["user_id"][i])
                    item = np.array([int(batch["target_item"][i]) - 1])
                    state = UserState(world, user)
                    cross = cross_features(state, world, item)
                    qcat = int(batch["query_category"][i]) - 1
                    out[i] = self.sign * _true_logits(world, user, item, qcat, cross)[0]
                return Tensor(out)

        class AntiOracle(OracleRanker):
            sign = -1.0

        result = run_ab_test(unit_world, AntiOracle(), OracleRanker(), num_users=160, seed=3)
        assert result.ucvr_b > result.ucvr_a
        assert result.ucvr_lift > 0

    def test_result_fields(self, unit_world, test_set):
        a = build_model("dnn", ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
        b = build_model("dnn", ModelConfig.unit(), test_set.meta, np.random.default_rng(1))
        result = run_ab_test(unit_world, a, b, num_users=40, seed=2)
        assert result.users_a + result.users_b == 40
        assert 0 <= result.uctr_a <= 1
        assert 0 <= result.ucvr_b <= 1
        assert 0 <= result.uctr_p_value <= 1

    def test_too_few_users_rejected(self, unit_world, test_set):
        a = build_model("dnn", ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
        with pytest.raises(ValueError):
            run_ab_test(unit_world, a, a, num_users=5)
