"""Load generator (Zipf traffic, Poisson arrivals) and metrics sink."""

import numpy as np
import pytest

from repro.core import ModelConfig, build_model
from repro.serving import (
    ManualClock,
    MetricsSink,
    MicroBatcher,
    SearchEngine,
    SessionCache,
    ZipfLoadGenerator,
    latency_percentile,
    replay,
)


class TestZipfLoadGenerator:
    def test_deterministic_given_seed(self, unit_world):
        def make():
            return ZipfLoadGenerator(np.random.default_rng(4), world=unit_world).generate(50)

        assert make() == make()

    def test_arrival_times_monotone(self, unit_world):
        events = ZipfLoadGenerator(np.random.default_rng(4), world=unit_world).generate(100)
        times = [e.time for e in events]
        assert times == sorted(times)
        assert times[0] > 0

    def test_traffic_is_skewed(self, unit_world):
        """Zipf exponent > 0 concentrates traffic on few users — the regime
        where the session cache pays off."""
        events = ZipfLoadGenerator(
            np.random.default_rng(4), world=unit_world, zipf_exponent=1.1
        ).generate(400)
        counts = np.bincount([e.user for e in events], minlength=unit_world.num_users)
        top10_share = np.sort(counts)[-10:].sum() / 400
        assert top10_share > 0.5

    def test_zero_exponent_roughly_uniform(self, unit_world):
        events = ZipfLoadGenerator(
            np.random.default_rng(4), world=unit_world, zipf_exponent=0.0
        ).generate(400)
        counts = np.bincount([e.user for e in events], minlength=unit_world.num_users)
        assert counts.max() <= 12  # no user dominates without skew

    def test_categories_follow_interests(self, unit_world):
        events = ZipfLoadGenerator(np.random.default_rng(4), world=unit_world).generate(300)
        for event in events[:50]:
            assert unit_world.user_interests[event.user, event.query_category] > 0

    def test_world_free_mode(self):
        generator = ZipfLoadGenerator(
            np.random.default_rng(0), num_users=50, num_categories=5
        )
        events = generator.generate(20)
        assert all(0 <= e.user < 50 and 0 <= e.query_category < 5 for e in events)

    def test_parameter_validation(self, unit_world):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            ZipfLoadGenerator(rng)  # neither world nor sizes
        with pytest.raises(ValueError):
            ZipfLoadGenerator(rng, world=unit_world, zipf_exponent=-1)
        with pytest.raises(ValueError):
            ZipfLoadGenerator(rng, world=unit_world, target_qps=0)


class TestReplay:
    def test_replay_drains_every_event(self, unit_world, test_set):
        model = build_model("aw_moe", ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
        clock = ManualClock()
        engine = SearchEngine(unit_world, model, np.random.default_rng(1))
        batcher = MicroBatcher(
            engine, max_batch_size=4, flush_deadline_ms=20.0,
            cache=SessionCache(128), clock=clock,
        )
        events = ZipfLoadGenerator(
            np.random.default_rng(4), world=unit_world, target_qps=500.0
        ).generate(30)
        results = replay(batcher, events, clock=clock)
        assert len(results) == 30
        assert engine.queries_served == 30
        # Deadline flushes fired along the way: more than one batch, none
        # larger than the size cap.
        assert batcher.metrics.batches >= 2
        assert batcher.metrics.max_batch_size <= 4

    def test_sparse_traffic_latency_bounded_by_deadline(self, unit_world, test_set):
        """Deadline flushes fire *at the deadline* in simulated time, not at
        the next arrival — a 10 s traffic gap must not inflate latency."""
        from repro.serving import TrafficEvent

        model = build_model("aw_moe", ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
        clock = ManualClock()
        batcher = MicroBatcher(
            SearchEngine(unit_world, model, np.random.default_rng(1)),
            max_batch_size=100,
            flush_deadline_ms=50.0,
            clock=clock,
        )
        events = [
            TrafficEvent(time=0.001, user=1, query_category=0),
            TrafficEvent(time=10.0, user=2, query_category=1),
        ]
        results = replay(batcher, events, clock=clock)
        assert len(results) == 2
        assert results[0].latency_ms == pytest.approx(50.0)
        assert results[1].latency_ms == pytest.approx(50.0)


class TestMetricsSink:
    def test_percentiles_nearest_rank(self):
        latencies = list(range(1, 101))  # 1..100 ms
        assert latency_percentile(latencies, 50) == 50
        assert latency_percentile(latencies, 95) == 95
        assert latency_percentile(latencies, 99) == 99
        assert latency_percentile(latencies, 100) == 100
        assert latency_percentile([], 50) == 0.0
        with pytest.raises(ValueError):
            latency_percentile(latencies, 0)

    def test_qps_over_recorded_span(self):
        clock = ManualClock()
        sink = MetricsSink(clock=clock)
        for _ in range(11):
            sink.record_query(1.0)
            clock.advance(0.1)
        # 11 queries recorded across a 1-second span (first at t=0, last at t=1).
        assert sink.qps == pytest.approx(11 / 1.0)

    def test_qps_zero_without_span(self):
        sink = MetricsSink(clock=ManualClock())
        assert sink.qps == 0.0
        sink.record_query(1.0)
        assert sink.qps == 0.0  # single instant, no span

    def test_merge_pools_everything(self):
        clock = ManualClock()
        a, b = MetricsSink(clock=clock), MetricsSink(clock=clock)
        a.record_query(1.0, now=0.0)
        b.record_query(3.0, now=2.0)
        a.record_batch(2)
        b.record_batch(4)
        merged = a.merge(b)
        assert merged.queries == 2
        assert merged.wall_seconds == 2.0
        assert merged.batch_size_histogram() == {2: 1, 4: 1}

    def test_summary_is_json_ready(self):
        import json

        sink = MetricsSink(clock=ManualClock(), exact=True)
        sink.record_query(5.0, now=0.0)
        sink.record_query(7.0, now=1.0)
        sink.record_batch(2)
        summary = sink.summary()
        payload = json.loads(json.dumps(summary))
        assert payload["queries"] == 2
        assert payload["latency_ms"]["p50"] == 5.0
        assert payload["mean_batch_size"] == 2.0

    def test_manual_clock_validation(self):
        clock = ManualClock()
        with pytest.raises(ValueError):
            clock.advance(-1)
        clock.advance_to(5.0)
        clock.advance_to(1.0)  # never moves backwards
        assert clock.now() == 5.0


class TestOnlineEventMetrics:
    """Online-loop events flow through the same sink as query metrics."""

    def test_swap_and_canary_counters(self):
        sink = MetricsSink(clock=ManualClock())
        sink.record_swap()
        sink.record_swap()
        sink.record_canary(True)
        sink.record_canary(False)
        sink.record_log_lag(37)
        assert sink.swaps == 2
        assert (sink.canary_passes, sink.canary_failures) == (1, 1)
        assert sink.log_lag == 37

    def test_merge_sums_counters_and_takes_worst_lag(self):
        a, b = MetricsSink(clock=ManualClock()), MetricsSink(clock=ManualClock())
        a.record_swap()
        a.record_canary(True)
        a.record_log_lag(5)
        b.record_canary(False)
        b.record_log_lag(50)
        merged = a.merge(b)
        assert merged.swaps == 1
        assert (merged.canary_passes, merged.canary_failures) == (1, 1)
        assert merged.log_lag == 50

    def test_summary_includes_online_section(self):
        import json

        sink = MetricsSink(clock=ManualClock())
        sink.record_swap()
        sink.record_canary(True)
        sink.record_log_lag(12)
        payload = json.loads(json.dumps(sink.summary()))
        assert payload["online"] == {
            "swaps": 1,
            "canary_passes": 1,
            "canary_failures": 0,
            "click_log_lag": 12,
        }

    def test_summary_percentiles_match_single_sort(self):
        """In exact mode summary() sorts the latency list once and must read
        the same nearest-rank values latency_percentile computes from
        scratch."""
        rng = np.random.default_rng(8)
        sink = MetricsSink(clock=ManualClock(), exact=True)
        for value in rng.random(257) * 100:
            sink.record_query(float(value))
        summary = sink.summary()
        for key, p in (("p50", 50), ("p95", 95), ("p99", 99)):
            assert summary["latency_ms"][key] == latency_percentile(sink.latencies_ms, p)

    def test_cascade_cost_in_summary_and_merge(self, unit_world):
        from repro.retrieval import CascadeConfig
        from repro.serving import compare_retrieval_strategies

        report = compare_retrieval_strategies(
            ModelConfig.unit(),
            unit_world.meta(),
            seq_len=8,
            category_size=1000,
            cascade=CascadeConfig(retrieve_n=128, prune=32, nprobe=4),
            vector_dim=10,
        )
        sink = MetricsSink(clock=ManualClock())
        assert sink.summary()["cost"]["cascade"] is None
        sink.record_cascade_cost(report)
        cascade = sink.summary()["cost"]["cascade"]
        assert cascade["survivors"] == 32
        assert cascade["total_saving_factor"] > 1.0
        merged = sink.merge(MetricsSink(clock=ManualClock()))
        assert merged.cascade_cost is report
        merged = MetricsSink(clock=ManualClock()).merge(sink)
        assert merged.cascade_cost is report

    def test_cost_model_translates_cache_hits_to_flops(self, unit_world):
        from repro.serving import compare_gate_strategies
        from repro.serving.cache import CacheStats

        report = compare_gate_strategies(
            ModelConfig.unit(), unit_world.meta(), items_per_session=8, seq_len=8
        )
        sink = MetricsSink(clock=ManualClock())
        assert sink.gate_flops_saved == 0
        sink.record_cost_model(report)
        sink.record_cache(CacheStats(hits=10, misses=5, evictions=0))
        assert sink.gate_flops_saved == 10 * report.gate_flops
        summary = sink.summary()
        assert summary["cost"]["gate_flops"] == report.gate_flops
        assert summary["cost"]["gate_flops_saved_by_cache"] == 10 * report.gate_flops
        assert summary["cost"]["session_saving_factor"] > 1.0
        # The cost model survives a merge.
        merged = sink.merge(MetricsSink(clock=ManualClock()))
        assert merged.cost_model is report
