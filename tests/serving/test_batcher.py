"""Micro-batcher: flush triggers, gate caching, and score parity.

The central invariant: micro-batching (with or without the session gate
cache) changes *when* the model runs, never *what* it computes — batched
rankings must match the one-query-at-a-time path exactly.
"""

import numpy as np
import pytest

from repro.core import ModelConfig, build_model
from repro.serving import ManualClock, MicroBatcher, SearchEngine, SessionCache

#: Repeated (user, query-category) traffic: users 3 and 5 re-issue sessions.
TRAFFIC = [(3, 2), (5, 1), (3, 2), (9, 0), (5, 1), (3, 4), (3, 2), (11, 2)]


def _engine(unit_world, test_set, model_name="aw_moe", seed=1):
    model = build_model(model_name, ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
    return SearchEngine(unit_world, model, np.random.default_rng(seed))


class TestFlushTriggers:
    def test_flush_on_size(self, unit_world, test_set):
        clock = ManualClock()
        batcher = MicroBatcher(
            _engine(unit_world, test_set), max_batch_size=3, flush_deadline_ms=1e9, clock=clock
        )
        assert batcher.submit(1, 0) == []
        assert batcher.submit(2, 1) == []
        results = batcher.submit(3, 2)  # third query hits the size trigger
        assert len(results) == 3
        assert batcher.pending == 0
        assert batcher.metrics.batch_size_histogram() == {3: 1}

    def test_flush_on_deadline(self, unit_world, test_set):
        clock = ManualClock()
        batcher = MicroBatcher(
            _engine(unit_world, test_set), max_batch_size=100, flush_deadline_ms=5.0, clock=clock
        )
        batcher.submit(1, 0)
        clock.advance(0.004)  # 4 ms < 5 ms deadline
        assert batcher.poll() == []
        clock.advance(0.002)  # 6 ms total
        results = batcher.poll()
        assert len(results) == 1
        assert results[0].latency_ms == pytest.approx(6.0)

    def test_poll_without_pending_is_noop(self, unit_world, test_set):
        batcher = MicroBatcher(_engine(unit_world, test_set), clock=ManualClock())
        assert batcher.poll() == []
        assert batcher.flush() == []

    def test_invalid_parameters_rejected(self, unit_world, test_set):
        engine = _engine(unit_world, test_set)
        with pytest.raises(ValueError):
            MicroBatcher(engine, max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(engine, flush_deadline_ms=-1.0)

    def test_queueing_latency_accounted_per_query(self, unit_world, test_set):
        clock = ManualClock()
        batcher = MicroBatcher(
            _engine(unit_world, test_set), max_batch_size=2, flush_deadline_ms=1e9, clock=clock
        )
        batcher.submit(1, 0)
        clock.advance(0.010)
        results = batcher.submit(2, 1)
        assert results[0].latency_ms == pytest.approx(10.0)  # waited in queue
        assert results[1].latency_ms == pytest.approx(0.0)


class TestScoreParity:
    def _run_both_paths(self, unit_world, test_set, cache):
        single = _engine(unit_world, test_set, seed=1)
        batched_engine = _engine(unit_world, test_set, seed=1)
        batcher = MicroBatcher(
            batched_engine,
            max_batch_size=4,
            flush_deadline_ms=1e9,
            cache=cache,
            clock=ManualClock(),
        )
        expected = [single.search(user, qcat) for user, qcat in TRAFFIC]
        got = []
        for user, qcat in TRAFFIC:
            got.extend(batcher.submit(user, qcat))
        got.extend(batcher.flush())
        return expected, got

    @pytest.mark.parametrize("with_cache", [False, True])
    def test_batched_identical_to_single_query(self, unit_world, test_set, with_cache):
        """Acceptance: batched (+cached) rankings == per-query rankings."""
        cache = SessionCache(64) if with_cache else None
        expected, got = self._run_both_paths(unit_world, test_set, cache)
        assert len(got) == len(expected)
        for want, have in zip(expected, got):
            assert (want.user, want.query_category) == (have.user, have.query_category)
            np.testing.assert_array_equal(want.items, have.items)
            np.testing.assert_allclose(want.scores, have.scores, rtol=1e-6, atol=1e-7)

    def test_cache_hits_under_repeated_traffic(self, unit_world, test_set):
        cache = SessionCache(64)
        _, got = self._run_both_paths(unit_world, test_set, cache)
        assert len(got) == len(TRAFFIC)
        # Repeats landing in a *later* batch than their first sight hit the
        # cache: the second (5, 1) and the third (3, 2).  The second (3, 2)
        # misses — it shares the first batch with its first sight, whose
        # gate is only published at flush.
        assert cache.gates.stats.hits == 2
        assert cache.gate_hit_rate > 0.0
        # Behaviour encodings are keyed by user: 4 distinct users miss once.
        assert cache.behaviors.stats.misses == 4

    def test_gateless_model_still_batches(self, unit_world, test_set):
        """DNN has no candidate-independent gate: batching must still work
        (coalesced forward, no gate cache accounting)."""
        single = _engine(unit_world, test_set, model_name="dnn", seed=1)
        batched_engine = _engine(unit_world, test_set, model_name="dnn", seed=1)
        assert not batched_engine.supports_session_gate
        cache = SessionCache(64)
        batcher = MicroBatcher(
            batched_engine, max_batch_size=4, flush_deadline_ms=1e9, cache=cache,
            clock=ManualClock(),
        )
        expected = [single.search(user, qcat) for user, qcat in TRAFFIC]
        got = []
        for user, qcat in TRAFFIC:
            got.extend(batcher.submit(user, qcat))
        got.extend(batcher.flush())
        for want, have in zip(expected, got):
            np.testing.assert_array_equal(want.items, have.items)
            np.testing.assert_allclose(want.scores, have.scores, rtol=1e-6, atol=1e-7)
        assert cache.gates.stats.lookups == 0  # gate cache never consulted


class TestAccounting:
    def test_engine_stats_cover_batched_traffic(self, unit_world, test_set):
        engine = _engine(unit_world, test_set)
        batcher = MicroBatcher(engine, max_batch_size=2, clock=ManualClock())
        for user, qcat in TRAFFIC[:4]:
            batcher.submit(user, qcat)
        assert engine.queries_served == 4

    def test_batch_size_histogram(self, unit_world, test_set):
        batcher = MicroBatcher(
            _engine(unit_world, test_set), max_batch_size=3, flush_deadline_ms=1e9,
            clock=ManualClock(),
        )
        for user, qcat in TRAFFIC[:7]:  # 7 queries -> flushes of 3, 3, then 1
            batcher.submit(user, qcat)
        batcher.flush()
        assert batcher.metrics.batch_size_histogram() == {1: 1, 3: 2}
        assert batcher.metrics.queries == 7
