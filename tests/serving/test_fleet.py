"""Process fleet supervisor: slab-backed workers, identity with the
in-process cluster, crash/hang recovery, and the generation-flip swap."""

import time

import numpy as np
import pytest

from repro.core import ModelConfig, build_model
from repro.faults import FaultPlan, FaultSpec
from repro.infer import SnapshotSlab, shared_memory_available
from repro.serving import (
    FleetConfig,
    FleetSupervisor,
    ShardedCluster,
    build_fleet,
)
from repro.serving.fleet import fleet_config

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="POSIX shared memory unavailable"
)


@pytest.fixture(scope="module")
def fleet_model(unit_world_and_data):
    _, train, _ = unit_world_and_data
    return build_model(
        "aw_moe", ModelConfig.unit(), train.meta, np.random.default_rng(0)
    )


@pytest.fixture(scope="module")
def swap_target(unit_world_and_data):
    _, train, _ = unit_world_and_data
    return build_model(
        "aw_moe", ModelConfig.unit(), train.meta, np.random.default_rng(9)
    )


def _traffic(world, n):
    users = world.config.num_users
    return [
        (u % users, int(np.argmax(world.user_interests[u % users])))
        for u in range(n)
    ]


def _drain(fleet, traffic):
    results = []
    for user, category in traffic:
        results.extend(fleet.submit(user, category))
    results.extend(fleet.flush())
    return results


def _key(results):
    ordered = sorted(results, key=lambda r: (r.user, r.query_category))
    return (
        [(r.user, r.query_category) for r in ordered],
        np.concatenate([r.items for r in ordered]),
        np.concatenate([r.scores for r in ordered]),
    )


class TestBackends:
    def test_inprocess_backend_is_a_plain_sharded_cluster(
        self, unit_world, fleet_model
    ):
        cluster = build_fleet(
            unit_world,
            fleet_model,
            fleet_config(num_workers=2),
            backend="inprocess",
            version="v1",
        )
        assert type(cluster) is ShardedCluster
        assert all(w.engine.model_version == "v1" for w in cluster.workers)

    def test_auto_prefers_processes_when_shm_works(self, unit_world, fleet_model):
        fleet = build_fleet(
            unit_world, fleet_model, fleet_config(num_workers=1), backend="auto"
        )
        try:
            assert isinstance(fleet, FleetSupervisor)
        finally:
            fleet.stop()

    def test_cluster_kwargs_rejected_on_process_backend(
        self, unit_world, fleet_model
    ):
        with pytest.raises(TypeError, match="in-process"):
            build_fleet(unit_world, fleet_model, backend="process", tracer=object())

    def test_process_fleet_matches_inprocess_bitwise(self, unit_world, fleet_model):
        config = fleet_config(num_workers=3, seed=11)
        traffic = _traffic(unit_world, 30)
        inproc = build_fleet(unit_world, fleet_model, config, backend="inprocess")
        expected = _key(_drain(inproc, traffic))
        fleet = build_fleet(unit_world, fleet_model, config, backend="process")
        try:
            got = _key(_drain(fleet, traffic))
        finally:
            fleet.stop()
        assert got[0] == expected[0]
        np.testing.assert_array_equal(got[1], expected[1])
        np.testing.assert_array_equal(got[2], expected[2])


class TestSupervision:
    def test_sigkill_worker_restarts_and_drops_nothing(
        self, unit_world, fleet_model
    ):
        config = fleet_config(num_workers=2, restart_backoff_s=0.01)
        with FleetSupervisor(unit_world, fleet_model, config) as fleet:
            traffic = _traffic(unit_world, 24)
            results = []
            for index, (user, category) in enumerate(traffic):
                if index == 8:
                    assert fleet.kill_worker(0) is not None
                results.extend(fleet.submit(user, category))
            results.extend(fleet.flush())
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                fleet.poll()
                if fleet.workers[0].state == "healthy":
                    break
                time.sleep(0.01)
            assert len(results) >= len(traffic)  # at-least-once, never dropped
            assert fleet.restarts_total >= 1
            counts = fleet.control.events.counts()
            assert counts.get("worker_died", 0) >= 1
            assert counts.get("worker_restarted", 0) >= 1

    def test_hung_worker_is_killed_with_beats_missed_accounting(
        self, unit_world, fleet_model
    ):
        # Worker 0's heartbeats are all lost: the supervisor must declare it
        # hung once the deadline lapses, not wait on a process exit.
        plan = FaultPlan(
            seed=0,
            specs=(
                FaultSpec(
                    "worker.heartbeat", "crash", times=None, match={"worker": 0}
                ),
            ),
        )
        config = fleet_config(
            num_workers=2,
            heartbeat_interval_s=0.02,
            heartbeat_deadline_s=0.15,
            restart_backoff_s=5.0,  # keep it down so the death is observable
        )
        with FleetSupervisor(
            unit_world, fleet_model, config, fault_plan=plan
        ) as fleet:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                fleet.poll()
                if fleet.control.events.counts().get("worker_died", 0):
                    break
                time.sleep(0.02)
            died = fleet.control.events.events("worker_died")
            assert died, "hung worker was never declared dead"
            assert died[0].attrs["reason"] == "hung"
            assert died[0].attrs["beats_missed"] >= 1

    def test_flapping_worker_is_quarantined_and_traffic_reroutes(
        self, unit_world, fleet_model
    ):
        # Two deaths inside the window with max_restarts=1: quarantine.
        config = fleet_config(
            num_workers=2, max_restarts=1, restart_backoff_s=0.01
        )
        with FleetSupervisor(unit_world, fleet_model, config) as fleet:
            victim = next(
                u for u in range(unit_world.config.num_users)
                if fleet.shard_for(u) == 0
            )
            for _ in range(2):
                fleet.kill_worker(0)
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    fleet.poll()
                    state = fleet.workers[0].state
                    if state in ("healthy", "quarantined"):
                        break
                    time.sleep(0.01)
                if fleet.workers[0].state == "quarantined":
                    break
            assert fleet.quarantined_workers == 1
            assert fleet.control.events.counts().get("worker_quarantined", 0) == 1
            category = int(np.argmax(unit_world.user_interests[victim]))
            results = fleet.submit(victim, category)
            results.extend(fleet.flush())
            assert any(r.user == victim for r in results)  # sibling answered

    def test_all_workers_down_falls_back_to_popularity_floor(
        self, unit_world, fleet_model
    ):
        # The sole worker is dead and still backing off: the supervisor's
        # popularity floor answers rather than dropping.
        config = fleet_config(num_workers=1, restart_backoff_s=5.0)
        with FleetSupervisor(unit_world, fleet_model, config) as fleet:
            fleet.kill_worker(0)
            category = int(np.argmax(unit_world.user_interests[3]))
            results = fleet.submit(3, category)
            assert len(results) == 1
            assert results[0].tier == "popularity"
            assert np.all(unit_world.item_category[results[0].items] == category)
            assert fleet.merged_metrics().shed >= 1

    def test_dead_worker_telemetry_is_not_lost(self, unit_world, fleet_model):
        config = fleet_config(
            num_workers=2, heartbeat_interval_s=0.02, restart_backoff_s=5.0
        )
        with FleetSupervisor(unit_world, fleet_model, config) as fleet:
            traffic = _traffic(unit_world, 16)
            for user, category in traffic:
                fleet.submit(user, category)
            fleet.flush()
            # Pull a fresh cumulative snapshot from every worker.
            fleet.refresh_reports()
            before = fleet.merged_metrics().queries
            assert before == len(traffic)
            fleet.kill_worker(1)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                fleet.poll()
                if fleet.control.events.counts().get("worker_died", 0):
                    break
                time.sleep(0.01)
            died = fleet.control.events.events("worker_died")
            assert died and died[0].attrs["exit_code"] is not None
            # The last-flushed snapshot was retired, not dropped.
            assert fleet.merged_metrics().queries == before


class TestSwap:
    def test_generation_flip_is_atomic_and_unlinks_old_slab(
        self, unit_world, fleet_model, swap_target
    ):
        config = fleet_config(num_workers=2)
        with FleetSupervisor(
            unit_world, fleet_model, config, version="v1"
        ) as fleet:
            pre_swap = _traffic(unit_world, 8)
            for user, category in pre_swap:
                fleet.submit(user, category)
            old_name = fleet._slab.name
            drained = fleet.swap_model(swap_target, version="v2")
            # Requests accepted before the flip complete on the old model.
            assert {r.model_version for r in drained} <= {"v1"}
            assert fleet.generation == 1
            assert not SnapshotSlab.exists(old_name)
            post = _drain(fleet, _traffic(unit_world, 8))
            # No mixed generations: everything after the flip is new-model.
            assert {r.model_version for r in post} == {"v2"}
            assert all(
                row["generation"] == 1
                for row in fleet.worker_status()
                if row["state"] == "healthy"
            )
            counts = fleet.control.events.counts()
            assert counts.get("slab_published") == 2
            assert counts.get("slab_unlinked") == 1
            assert counts.get("cache_invalidation") == 1

    def test_torn_publish_is_retried_under_a_fresh_name(
        self, unit_world, fleet_model, swap_target
    ):
        plan = FaultPlan(
            seed=0,
            specs=(FaultSpec("slab.publish", "torn_write", after=1, times=1),),
        )
        config = fleet_config(num_workers=2)
        with FleetSupervisor(
            unit_world, fleet_model, config, fault_plan=plan
        ) as fleet:
            fleet.swap_model(swap_target, version="v2")
            counts = fleet.control.events.counts()
            # Bootstrap publish + torn attempt's unlink + successful retry.
            assert counts.get("slab_published") == 2
            unlinked = fleet.control.events.events("slab_unlinked")
            assert any(e.attrs["reason"] == "torn_publish" for e in unlinked)
            assert fleet.generation == 1
            results = _drain(fleet, _traffic(unit_world, 6))
            assert {r.model_version for r in results} == {"v2"}

    def test_stop_leaves_no_segments_behind(self, unit_world, fleet_model):
        config = fleet_config(num_workers=2)
        fleet = FleetSupervisor(unit_world, fleet_model, config)
        name = fleet._slab.name
        _drain(fleet, _traffic(unit_world, 6))
        fleet.stop()
        assert not SnapshotSlab.exists(name)
        assert fleet.workers_available == 0


class TestConfig:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(num_workers=0)
        with pytest.raises(ValueError):
            FleetConfig(heartbeat_deadline_s=0.01, heartbeat_interval_s=0.05)

    def test_fleet_config_overrides(self):
        config = fleet_config(num_workers=5, seed=3)
        assert config.num_workers == 5
        assert config.seed == 3
        assert config.max_batch_size == FleetConfig().max_batch_size

    def test_injector_context_reaches_workers(self, unit_world, fleet_model):
        # A spawn-time transient on worker 0's restart path only: the
        # bootstrap spawn is spared (`after` counts matching visits).
        plan = FaultPlan(
            seed=0,
            specs=(
                FaultSpec(
                    "worker.spawn", "transient", after=1, times=1,
                    match={"worker": 0},
                ),
            ),
        )
        config = fleet_config(num_workers=2, restart_backoff_s=0.01)
        with FleetSupervisor(
            unit_world, fleet_model, config, fault_plan=plan
        ) as fleet:
            assert fleet.workers_available == 2  # bootstrap unaffected
            fleet.kill_worker(0)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                fleet.poll()
                if fleet.workers[0].state == "healthy":
                    break
                time.sleep(0.01)
            assert fleet.workers[0].state == "healthy"
            # One extra backoff cycle: death + failed spawn both count.
            assert fleet.workers[0].restarts >= 2
