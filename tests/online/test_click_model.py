"""Position-biased click model: examination curve and empirical CTR."""

import numpy as np
import pytest

from repro.online import ClickModelConfig, PositionBiasedClickModel
from repro.serving.engine import RankedList


def _ranking(items, user=0, category=0):
    items = np.asarray(items)
    return RankedList(
        user=user,
        query_category=category,
        items=items,
        scores=np.linspace(1.0, 0.0, items.size),
        latency_ms=0.0,
    )


def _constant_relevance(value):
    return lambda user, items, category: np.full(len(items), value)


class TestClickModelConfig:
    def test_examination_curve_shape(self):
        config = ClickModelConfig(top_examination=0.8, decay=0.5, max_positions=4)
        np.testing.assert_allclose(
            config.examination_probabilities(), [0.8, 0.4, 0.2, 0.1]
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ClickModelConfig(top_examination=0.0)
        with pytest.raises(ValueError):
            ClickModelConfig(decay=1.5)
        with pytest.raises(ValueError):
            ClickModelConfig(max_positions=0)

    def test_world_or_relevance_required(self):
        with pytest.raises(ValueError):
            PositionBiasedClickModel(None, np.random.default_rng(0))


class TestEmpiricalCTR:
    """The satellite requirement: CTR decreases monotonically with position
    and, under constant relevance, matches the configured examination
    probabilities within sampling tolerance."""

    NUM_SESSIONS = 8000

    @pytest.fixture(scope="class")
    def ctr_by_position(self):
        config = ClickModelConfig(top_examination=0.7, decay=0.85, max_positions=10)
        model = PositionBiasedClickModel(
            None,
            np.random.default_rng(123),
            config=config,
            relevance_fn=_constant_relevance(1.0),
        )
        clicks = np.zeros(config.max_positions)
        for _ in range(self.NUM_SESSIONS):
            clicks += model.clicks(_ranking(np.arange(10)))
        return config, clicks / self.NUM_SESSIONS

    def test_ctr_monotonically_decreasing(self, ctr_by_position):
        _, ctr = ctr_by_position
        assert np.all(np.diff(ctr) < 0.0)

    def test_ctr_matches_configured_examination(self, ctr_by_position):
        config, ctr = ctr_by_position
        expected = config.examination_probabilities()
        # With 8000 sessions the per-position standard error is ~0.005;
        # 0.02 is a ~4-sigma band.
        np.testing.assert_allclose(ctr, expected, atol=0.02)


class TestClickGeneration:
    def test_positions_beyond_page_never_clicked(self):
        config = ClickModelConfig(max_positions=3)
        model = PositionBiasedClickModel(
            None, np.random.default_rng(0), config, _constant_relevance(1.0)
        )
        clicks = model.clicks(_ranking(np.arange(8)))
        assert clicks.shape == (3,)

    def test_short_ranking_truncates(self):
        model = PositionBiasedClickModel(
            None, np.random.default_rng(0), ClickModelConfig(), _constant_relevance(1.0)
        )
        assert model.clicks(_ranking(np.arange(4))).shape == (4,)

    def test_zero_relevance_never_clicks(self):
        model = PositionBiasedClickModel(
            None, np.random.default_rng(0), ClickModelConfig(), _constant_relevance(0.0)
        )
        for _ in range(50):
            assert model.clicks(_ranking(np.arange(10))).sum() == 0
        assert model.clicks_generated == 0
        assert model.impressions == 500

    def test_world_relevance_favors_head(self, unit_world):
        """With ground-truth relevance on real rankings the head of the list
        still out-clicks the tail (examination bias dominates)."""
        from repro.data.synthetic import true_relevance

        rng = np.random.default_rng(7)
        model = PositionBiasedClickModel(unit_world, rng, ClickModelConfig())
        head = tail = 0.0
        sessions = 300
        for _ in range(sessions):
            user = int(rng.integers(0, unit_world.num_users))
            category = int(rng.integers(0, unit_world.config.num_categories))
            items = np.flatnonzero(unit_world.item_category == category)
            if items.size < 4:
                continue
            relevance = true_relevance(unit_world, user, items, category)
            ranking = _ranking(items[np.argsort(-relevance)], user, category)
            clicks = model.clicks(ranking)
            head += clicks[: clicks.size // 2].sum()
            tail += clicks[clicks.size // 2 :].sum()
        assert head > tail
