"""Click log: append/cursor/lag semantics and skew-free dataset conversion."""

import numpy as np
import pytest

from repro.data.features import assemble_candidate_batch
from repro.online import ClickLog, build_dataset


def _log_one(log, user=1, category=2, items=(0, 1, 2, 3), clicks=(1, 0, 0, 1), **kw):
    return log.log_session(
        user, category, np.asarray(items), np.asarray(clicks, dtype=np.float32), **kw
    )


class TestClickLog:
    def test_append_assigns_session_ids(self):
        log = ClickLog()
        first = _log_one(log)
        second = _log_one(log)
        assert (first.session_id, second.session_id) == (0, 1)
        assert len(log) == 2
        assert log.total_clicks == 4

    def test_misaligned_items_and_clicks_raise(self):
        with pytest.raises(ValueError):
            _log_one(ClickLog(), items=(0, 1, 2), clicks=(1, 0))

    def test_lag_and_cursor(self):
        log = ClickLog()
        for _ in range(5):
            _log_one(log)
        assert log.lag == 5
        window = log.read_new(max_sessions=3)
        assert [r.session_id for r in window] == [0, 1, 2]
        assert log.lag == 2
        assert [r.session_id for r in log.read_new()] == [3, 4]
        assert log.lag == 0
        assert log.read_new() == []

    def test_records_are_copies(self):
        log = ClickLog()
        items = np.array([0, 1, 2, 3])
        record = log.log_session(1, 2, items, np.array([1, 0, 0, 1]))
        items[0] = 99
        assert record.items[0] == 0

    def test_model_version_and_timestamp_stored(self):
        log = ClickLog()
        record = _log_one(log, model_version="v0007", timestamp=12.5)
        assert record.model_version == "v0007"
        assert record.timestamp == 12.5


class TestBuildDataset:
    def test_empty_or_unusable_records_give_none(self, unit_world):
        log = ClickLog()
        assert build_dataset(unit_world, log.read_new()) is None
        _log_one(log, clicks=(0, 0, 0, 0))  # clickless: no signal
        _log_one(log, clicks=(1, 1, 1, 1))  # all clicked: no contrast
        assert build_dataset(unit_world, log.read_new()) is None

    def test_labels_follow_clicks(self, unit_world):
        log = ClickLog()
        _log_one(log, clicks=(1, 0, 0, 1))
        dataset = build_dataset(unit_world, log.read_new())
        assert len(dataset) == 4
        np.testing.assert_array_equal(dataset.label, [1, 0, 0, 1])
        assert set(dataset.session_id) == {0}

    def test_negative_downsampling_is_one_to_one(self, unit_world):
        log = ClickLog()
        _log_one(log, items=tuple(range(8)), clicks=(1, 0, 0, 0, 0, 0, 0, 0))
        dataset = build_dataset(unit_world, log.read_new(), rng=np.random.default_rng(0))
        assert len(dataset) == 2
        assert dataset.positive_count() == 1

    def test_features_identical_to_serving_assembly(self, unit_world):
        """No training/serving skew: the trainer sees exactly the features
        the engine scored the session with."""
        log = ClickLog()
        user, category, items = 3, 1, np.array([5, 9, 2, 7])
        record = log.log_session(user, category, items, np.array([1.0, 0, 0, 0]))
        dataset = build_dataset(unit_world, [record])
        served = assemble_candidate_batch(unit_world, user, category, items)
        np.testing.assert_array_equal(dataset.other_features, served["other_features"])
        np.testing.assert_array_equal(dataset.target_item, served["target_item"])
        np.testing.assert_array_equal(dataset.behavior_items, served["behavior_items"])
        np.testing.assert_array_equal(dataset.query, served["query"])

    def test_multiple_sessions_concatenate(self, unit_world):
        log = ClickLog()
        _log_one(log, user=1)
        _log_one(log, user=2, clicks=(0, 1, 0, 1))
        dataset = build_dataset(unit_world, log.read_new())
        assert len(dataset) == 8
        assert dataset.num_sessions() == 2
        np.testing.assert_array_equal(np.unique(dataset.user_id), [1, 2])
