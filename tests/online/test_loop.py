"""OnlineLoop end to end: refresh cycles, skew-freedom, empty-log identity."""

import numpy as np
import pytest

from repro.online import (
    CanaryGate,
    ClickModelConfig,
    IncrementalTrainer,
    ModelRegistry,
    OnlineLoop,
    PositionBiasedClickModel,
)
from repro.serving import ManualClock, ShardedCluster, ZipfLoadGenerator


def _make_loop(
    tmp_path,
    unit_world,
    make_model,
    train_config,
    relevance_fn=None,
    tolerance=1.0,
):
    clock = ManualClock()
    trainer = IncrementalTrainer(make_model(trained=True), train_config, seed=5)
    cluster = ShardedCluster(
        unit_world,
        make_model(trained=False),
        num_shards=2,
        seed=0,
        max_batch_size=4,
        flush_deadline_ms=5.0,
        cache_capacity=128,
        clock=clock,
    )
    loop = OnlineLoop(
        world=unit_world,
        cluster=cluster,
        trainer=trainer,
        model_factory=lambda: make_model(trained=False),
        registry=ModelRegistry(str(tmp_path / "registry"), clock=lambda: 0.0),
        # tolerance=1.0 keeps unit-scale tests deterministic (tiny holdouts
        # are too noisy to gate on); the gating itself is tested separately.
        canary=CanaryGate(tolerance=tolerance),
        click_model=PositionBiasedClickModel(
            unit_world,
            np.random.default_rng(3),
            ClickModelConfig(),
            relevance_fn=relevance_fn,
        ),
        clock=clock,
        seed=11,
    )
    return loop


def _events(unit_world, count, seed=7):
    return ZipfLoadGenerator(
        np.random.default_rng(seed), world=unit_world, target_qps=500.0
    ).generate(count)


class TestBootstrap:
    def test_bootstrap_deploys_v1(self, tmp_path, unit_world, make_model, online_train_config):
        loop = _make_loop(tmp_path, unit_world, make_model, online_train_config)
        version = loop.bootstrap()
        assert version == 1
        assert loop.production_version == 1
        assert loop.cluster.model_version == "v0001"
        with pytest.raises(RuntimeError):
            loop.bootstrap()

    def test_cycle_before_bootstrap_raises(
        self, tmp_path, unit_world, make_model, online_train_config
    ):
        loop = _make_loop(tmp_path, unit_world, make_model, online_train_config)
        with pytest.raises(RuntimeError):
            loop.run_cycle([])

    def test_bootstrap_serving_copy_is_bitwise_offline_model(
        self, tmp_path, unit_world, make_model, online_train_config, test_set
    ):
        """Acceptance criterion: the offline-trained model and the same model
        passed through the online deployment path (checkpoint → registry →
        fresh serving copy) produce bitwise-identical rankings."""
        loop = _make_loop(tmp_path, unit_world, make_model, online_train_config)
        loop.bootstrap()
        offline = make_model(trained=True)
        batch = test_set.batch_at(np.arange(min(len(test_set), 256)))
        np.testing.assert_array_equal(
            offline.predict_proba(batch), loop.production_model.predict_proba(batch)
        )


class TestRefreshCycles:
    def test_each_cycle_registers_a_new_version(
        self, tmp_path, unit_world, make_model, online_train_config
    ):
        loop = _make_loop(tmp_path, unit_world, make_model, online_train_config)
        loop.bootstrap()
        versions = []
        for cycle in range(3):
            report = loop.run_cycle(_events(unit_world, 60, seed=20 + cycle))
            assert report.cycle == cycle
            assert report.sessions_logged == 60
            assert report.candidate_version is not None
            versions.append(report.candidate_version)
        assert versions == [2, 3, 4]
        assert loop.registry.latest_version == 4
        # Promotions hot-swapped the fleet and were recorded.
        assert loop.cluster.control.swaps >= 1
        summary = loop.cluster.summary()
        assert summary["online"]["canary_passes"] + summary["online"]["canary_failures"] >= 1

    def test_log_lag_reported_then_drained(
        self, tmp_path, unit_world, make_model, online_train_config
    ):
        loop = _make_loop(tmp_path, unit_world, make_model, online_train_config)
        loop.bootstrap()
        report = loop.run_cycle(_events(unit_world, 40))
        assert report.log_lag == 40
        assert loop.click_log.lag == 0

    def test_rejected_candidate_leaves_production_serving(
        self, tmp_path, unit_world, make_model, online_train_config
    ):
        """A failing canary must leave the fleet on the old version."""
        loop = _make_loop(
            tmp_path, unit_world, make_model, online_train_config, tolerance=0.0
        )
        loop.bootstrap()
        production_before = loop.production_model

        # Sabotage the trainer so its candidate is garbage.
        rng = np.random.default_rng(0)
        for param in loop.trainer.model.parameters():
            param.data += rng.normal(0, 2.0, size=param.data.shape).astype(
                param.data.dtype
            )
        report = loop.run_cycle(_events(unit_world, 80))
        if report.canary is not None:  # tiny-traffic cycles may lack a holdout
            assert not report.promoted
            assert loop.registry.get(report.candidate_version).status == "rejected"
            assert loop.production_model is production_before
            assert loop.production_version == 1


class TestEmptyLogIdentity:
    def test_no_traffic_cycle_is_a_noop(
        self, tmp_path, unit_world, make_model, online_train_config, test_set
    ):
        loop = _make_loop(tmp_path, unit_world, make_model, online_train_config)
        loop.bootstrap()
        batch = test_set.batch_at(np.arange(min(len(test_set), 256)))
        before = loop.production_model.predict_proba(batch)
        report = loop.run_cycle([])
        assert report.candidate_version is None
        assert report.train_rows == 0
        assert loop.production_version == 1
        np.testing.assert_array_equal(before, loop.production_model.predict_proba(batch))

    def test_clickless_traffic_changes_nothing(
        self, tmp_path, unit_world, make_model, online_train_config, test_set
    ):
        """Traffic that produces zero clicks (empty click log content) must
        leave the production rankings bitwise-identical."""
        loop = _make_loop(
            tmp_path,
            unit_world,
            make_model,
            online_train_config,
            relevance_fn=lambda user, items, category: np.zeros(len(items)),
        )
        loop.bootstrap()
        batch = test_set.batch_at(np.arange(min(len(test_set), 256)))
        before = loop.production_model.predict_proba(batch)
        report = loop.run_cycle(_events(unit_world, 40))
        assert report.clicks == 0
        assert report.candidate_version is None
        assert loop.production_model is not None
        np.testing.assert_array_equal(before, loop.production_model.predict_proba(batch))
