"""Hot-swap under load: no mixed-version batches, no stale cached gates,
no stale retrieval embeddings."""

import numpy as np
import pytest

from repro.retrieval import CascadeConfig
from repro.serving import (
    ManualClock,
    MicroBatcher,
    SearchEngine,
    SessionCache,
    ShardedCluster,
)


@pytest.fixture()
def model_a(make_model):
    return make_model(trained=True)


@pytest.fixture()
def model_b(make_model):
    # Architecture-identical but differently initialized: scores differ
    # loudly, so any stale-version leak is detectable.
    return make_model(trained=False, init_seed=99)


@pytest.fixture()
def cluster(unit_world, model_a):
    clock = ManualClock()
    cluster = ShardedCluster(
        unit_world,
        model_a,
        num_shards=2,
        seed=0,
        max_batch_size=4,
        flush_deadline_ms=5.0,
        cache_capacity=64,
        clock=clock,
    )
    for worker in cluster.workers:
        worker.engine.set_model(model_a, "v1")
    return cluster


def _drive(cluster, events):
    results = []
    for user, category in events:
        results.extend(cluster.submit(user, category))
    return results


class TestSwapUnderLoad:
    def test_no_mixed_version_results(self, cluster, model_b):
        """Results before the swap carry the old tag, results after the new
        one, and the swap itself drains pending work under the old model —
        a flush is one forward, so no batch can mix versions."""
        rng = np.random.default_rng(3)
        events = [
            (int(rng.integers(0, 200)), int(rng.integers(0, 8))) for _ in range(40)
        ]
        pre = _drive(cluster, events[:20])
        drained = cluster.swap_model(model_b, "v2")
        post = _drive(cluster, events[20:])
        post.extend(cluster.flush())

        assert all(r.model_version == "v1" for r in pre + drained)
        assert all(r.model_version == "v2" for r in post)
        assert len(pre) + len(drained) + len(post) == 40
        for worker in cluster.workers:
            assert worker.engine.model is model_b
        assert cluster.model_version == "v2"
        assert cluster.control.swaps == 1
        assert cluster.merged_metrics().swaps == 1

    def test_swap_invalidates_gate_cache(self, cluster, model_b):
        """Cached gate vectors die with the model that produced them."""
        events = [(7, 1)] * 4 + [(7, 1)] * 4  # same session key: second batch hits
        _drive(cluster, events)
        worker = cluster.worker_for(7)
        assert worker.cache.gates.stats.hits > 0
        assert len(worker.cache.gates) > 0
        generation = worker.cache.generation

        cluster.swap_model(model_b, "v2")
        assert len(worker.cache.gates) == 0
        assert worker.cache.generation == generation + 1

    def test_post_swap_scores_match_new_model_exactly(
        self, unit_world, cluster, model_b
    ):
        """After the swap, a hot session's scores equal a from-scratch
        engine running the new model — no stale gate can linger."""
        user, category = 7, 1
        _drive(cluster, [(user, category)] * 4)  # cache the session gate under v1
        cluster.swap_model(model_b, "v2")
        results = _drive(cluster, [(user, category)] * 4)
        assert results and all(r.model_version == "v2" for r in results)

        engine = cluster.worker_for(user).engine
        for ranking in results:
            batch = engine.build_batch(user, category, ranking.items)
            expected = model_b.predict_proba(batch)
            np.testing.assert_allclose(ranking.scores, expected, rtol=1e-6, atol=1e-7)


class TestCascadeSwapUnderLoad:
    """Fleets serving through the retrieval cascade rebuild the ANN index
    from the new weight snapshot inside the same swap that switches the
    model and plan — a post-swap query can never retrieve against the old
    model's embeddings."""

    CASCADE = CascadeConfig(retrieve_n=10, prune=6, nprobe="all")

    @pytest.fixture()
    def cascade_cluster(self, unit_world, model_a):
        cluster = ShardedCluster(
            unit_world,
            model_a,
            num_shards=2,
            seed=0,
            max_batch_size=4,
            flush_deadline_ms=5.0,
            cache_capacity=64,
            clock=ManualClock(),
            cascade=self.CASCADE,
        )
        for worker in cluster.workers:
            worker.engine.set_model(model_a, "v1")
        return cluster

    def test_no_stale_embeddings_under_concurrent_load(
        self, unit_world, cascade_cluster, model_b
    ):
        """Swap mid-traffic with queries pending in every shard: drained
        results come from the old snapshot, every later result from the new
        one — candidate sets *and* scores."""
        # Make the snapshots retrieval-distinguishable (random inits are too
        # close to move the top-K).
        weight = model_b.embedder.item.weight
        weight.data = (weight.data * 25.0).astype(weight.data.dtype)

        rng = np.random.default_rng(5)
        events = [
            (int(rng.integers(0, 200)), int(rng.integers(0, 8))) for _ in range(40)
        ]
        pre = _drive(cascade_cluster, events[:20])
        # Leave work queued on both shards, then swap under load.
        drained = cascade_cluster.swap_model(model_b, "v2")
        post = _drive(cascade_cluster, events[20:])
        post.extend(cascade_cluster.flush())
        assert all(r.model_version == "v1" for r in pre + drained)
        assert all(r.model_version == "v2" for r in post)
        assert len(pre) + len(drained) + len(post) == 40

        # Twin engine: same compiled-scorer build path as the swapped fleet,
        # so probe/calibration floats (and thus candidate sets) must match.
        fresh = SearchEngine(
            unit_world, model_b, np.random.default_rng(9), cascade=self.CASCADE
        ).cascade
        for ranking in post:
            want = np.sort(fresh.retrieve(ranking.user, ranking.query_category))
            np.testing.assert_array_equal(np.sort(ranking.items), want)
            engine = cascade_cluster.worker_for(ranking.user).engine
            batch = engine.build_batch(ranking.user, ranking.query_category, ranking.items)
            np.testing.assert_allclose(
                ranking.scores, model_b.predict_proba(batch), rtol=1e-5, atol=1e-6
            )

    def test_shards_share_one_build_but_own_their_scratch(
        self, cascade_cluster, model_b
    ):
        """One swap = one cascade build: shards share the immutable snapshot
        (item vectors, index slabs, calibrated weights) but each owns its
        prefilter, whose plan holds mutable scratch buffers."""
        before = [worker.engine.cascade for worker in cascade_cluster.workers]
        cascade_cluster.swap_model(model_b, "v2")
        after = [worker.engine.cascade for worker in cascade_cluster.workers]
        assert all(a is not b for a, b in zip(before, after))
        assert len({id(c) for c in after}) == len(after)
        first, second = after
        assert first.index is second.index
        assert first.item_vectors is second.item_vectors
        assert first._weights is second._weights
        assert first.prefilter is not second.prefilter
        assert first.prefilter.plan.arena is not second.prefilter.plan.arena


class TestGenerationGuard:
    def test_stale_gate_discarded_without_flush(self, unit_world, model_a, model_b):
        """Even a rogue swap that skips the drain cannot leak an old gate:
        the batcher re-resolves any gate whose cache generation went stale
        between submit and flush."""
        engine = SearchEngine(unit_world, model_a, np.random.default_rng(0), model_version="v1")
        cache = SessionCache(32)
        batcher = MicroBatcher(engine, max_batch_size=64, cache=cache)

        user, category = 11, 2
        # Seed the cache with a v1 gate, then enqueue a query that hits it.
        candidates = engine.retrieve(category)
        seed_batch = engine.build_batch(user, category, candidates)
        cache.put_gate(user, category, engine.session_gate(seed_batch))
        batcher.submit(user, category)
        assert batcher._pending[0].gate is not None

        # Rogue swap: no drain, just model switch + invalidation.
        engine.set_model(model_b, "v2")
        cache.invalidate_all()
        results = batcher.flush()

        assert len(results) == 1
        ranking = results[0]
        assert ranking.model_version == "v2"
        batch = engine.build_batch(user, category, ranking.items)
        np.testing.assert_allclose(
            ranking.scores, model_b.predict_proba(batch), rtol=1e-6, atol=1e-7
        )

    def test_stale_cascade_candidates_reretrieved_without_drain(
        self, unit_world, model_a, model_b
    ):
        """Candidates are snapshot state like gates: even a rogue swap that
        skips the drain cannot serve ids retrieved against the old model's
        embeddings — the flush re-retrieves them from the new cascade."""
        weight = model_b.embedder.item.weight
        weight.data = (weight.data * 25.0).astype(weight.data.dtype)
        cascade = CascadeConfig(retrieve_n=10, prune=6, nprobe="all")
        engine = SearchEngine(
            unit_world, model_a, np.random.default_rng(0),
            model_version="v1", cascade=cascade,
        )
        batcher = MicroBatcher(engine, max_batch_size=64, cache=SessionCache(32))
        batcher.submit(11, 2)
        engine.set_model(model_b, "v2")  # rogue swap: no drain
        results = batcher.flush()
        assert len(results) == 1
        ranking = results[0]
        assert ranking.model_version == "v2"
        np.testing.assert_array_equal(
            np.sort(ranking.items), engine.retrieve(2, user=11)
        )

    def test_without_invalidation_stale_gate_would_leak(
        self, unit_world, model_a, model_b
    ):
        """Control experiment for the regression test above: skipping the
        invalidation really does serve v1 gates under v2 — the hazard the
        generation tag exists to kill."""
        engine = SearchEngine(unit_world, model_a, np.random.default_rng(0), model_version="v1")
        cache = SessionCache(32)
        batcher = MicroBatcher(engine, max_batch_size=64, cache=cache)
        user, category = 11, 2
        candidates = engine.retrieve(category)
        seed_batch = engine.build_batch(user, category, candidates)
        stale_gate = engine.session_gate(seed_batch)
        cache.put_gate(user, category, stale_gate)
        batcher.submit(user, category)
        engine.set_model(model_b, "v2")  # no invalidate_all: the bug
        results = batcher.flush()

        ranking = results[0]
        batch = engine.build_batch(user, category, ranking.items)
        clean = model_b.predict_proba(batch)
        leaked = model_b.predict_proba(
            batch, gate_override=np.tile(stale_gate, (len(ranking.items), 1))
        )
        np.testing.assert_allclose(
            ranking.scores, np.sort(leaked)[::-1], rtol=1e-6, atol=1e-7
        )
        assert not np.allclose(np.sort(leaked)[::-1], np.sort(clean)[::-1])
