"""Hot-swap under load: no mixed-version batches, no stale cached gates."""

import numpy as np
import pytest

from repro.serving import (
    ManualClock,
    MicroBatcher,
    SearchEngine,
    SessionCache,
    ShardedCluster,
)


@pytest.fixture()
def model_a(make_model):
    return make_model(trained=True)


@pytest.fixture()
def model_b(make_model):
    # Architecture-identical but differently initialized: scores differ
    # loudly, so any stale-version leak is detectable.
    return make_model(trained=False, init_seed=99)


@pytest.fixture()
def cluster(unit_world, model_a):
    clock = ManualClock()
    cluster = ShardedCluster(
        unit_world,
        model_a,
        num_shards=2,
        seed=0,
        max_batch_size=4,
        flush_deadline_ms=5.0,
        cache_capacity=64,
        clock=clock,
    )
    for worker in cluster.workers:
        worker.engine.set_model(model_a, "v1")
    return cluster


def _drive(cluster, events):
    results = []
    for user, category in events:
        results.extend(cluster.submit(user, category))
    return results


class TestSwapUnderLoad:
    def test_no_mixed_version_results(self, cluster, model_b):
        """Results before the swap carry the old tag, results after the new
        one, and the swap itself drains pending work under the old model —
        a flush is one forward, so no batch can mix versions."""
        rng = np.random.default_rng(3)
        events = [
            (int(rng.integers(0, 200)), int(rng.integers(0, 8))) for _ in range(40)
        ]
        pre = _drive(cluster, events[:20])
        drained = cluster.swap_model(model_b, "v2")
        post = _drive(cluster, events[20:])
        post.extend(cluster.flush())

        assert all(r.model_version == "v1" for r in pre + drained)
        assert all(r.model_version == "v2" for r in post)
        assert len(pre) + len(drained) + len(post) == 40
        for worker in cluster.workers:
            assert worker.engine.model is model_b
        assert cluster.model_version == "v2"
        assert cluster.control.swaps == 1
        assert cluster.merged_metrics().swaps == 1

    def test_swap_invalidates_gate_cache(self, cluster, model_b):
        """Cached gate vectors die with the model that produced them."""
        events = [(7, 1)] * 4 + [(7, 1)] * 4  # same session key: second batch hits
        _drive(cluster, events)
        worker = cluster.worker_for(7)
        assert worker.cache.gates.stats.hits > 0
        assert len(worker.cache.gates) > 0
        generation = worker.cache.generation

        cluster.swap_model(model_b, "v2")
        assert len(worker.cache.gates) == 0
        assert worker.cache.generation == generation + 1

    def test_post_swap_scores_match_new_model_exactly(
        self, unit_world, cluster, model_b
    ):
        """After the swap, a hot session's scores equal a from-scratch
        engine running the new model — no stale gate can linger."""
        user, category = 7, 1
        _drive(cluster, [(user, category)] * 4)  # cache the session gate under v1
        cluster.swap_model(model_b, "v2")
        results = _drive(cluster, [(user, category)] * 4)
        assert results and all(r.model_version == "v2" for r in results)

        engine = cluster.worker_for(user).engine
        for ranking in results:
            batch = engine.build_batch(user, category, ranking.items)
            expected = model_b.predict_proba(batch)
            np.testing.assert_allclose(ranking.scores, expected, rtol=1e-6, atol=1e-7)


class TestGenerationGuard:
    def test_stale_gate_discarded_without_flush(self, unit_world, model_a, model_b):
        """Even a rogue swap that skips the drain cannot leak an old gate:
        the batcher re-resolves any gate whose cache generation went stale
        between submit and flush."""
        engine = SearchEngine(unit_world, model_a, np.random.default_rng(0), model_version="v1")
        cache = SessionCache(32)
        batcher = MicroBatcher(engine, max_batch_size=64, cache=cache)

        user, category = 11, 2
        # Seed the cache with a v1 gate, then enqueue a query that hits it.
        candidates = engine.retrieve(category)
        seed_batch = engine.build_batch(user, category, candidates)
        cache.put_gate(user, category, engine.session_gate(seed_batch))
        batcher.submit(user, category)
        assert batcher._pending[0].gate is not None

        # Rogue swap: no drain, just model switch + invalidation.
        engine.set_model(model_b, "v2")
        cache.invalidate_all()
        results = batcher.flush()

        assert len(results) == 1
        ranking = results[0]
        assert ranking.model_version == "v2"
        batch = engine.build_batch(user, category, ranking.items)
        np.testing.assert_allclose(
            ranking.scores, model_b.predict_proba(batch), rtol=1e-6, atol=1e-7
        )

    def test_without_invalidation_stale_gate_would_leak(
        self, unit_world, model_a, model_b
    ):
        """Control experiment for the regression test above: skipping the
        invalidation really does serve v1 gates under v2 — the hazard the
        generation tag exists to kill."""
        engine = SearchEngine(unit_world, model_a, np.random.default_rng(0), model_version="v1")
        cache = SessionCache(32)
        batcher = MicroBatcher(engine, max_batch_size=64, cache=cache)
        user, category = 11, 2
        candidates = engine.retrieve(category)
        seed_batch = engine.build_batch(user, category, candidates)
        stale_gate = engine.session_gate(seed_batch)
        cache.put_gate(user, category, stale_gate)
        batcher.submit(user, category)
        engine.set_model(model_b, "v2")  # no invalidate_all: the bug
        results = batcher.flush()

        ranking = results[0]
        batch = engine.build_batch(user, category, ranking.items)
        clean = model_b.predict_proba(batch)
        leaked = model_b.predict_proba(
            batch, gate_override=np.tile(stale_gate, (len(ranking.items), 1))
        )
        np.testing.assert_allclose(
            ranking.scores, np.sort(leaked)[::-1], rtol=1e-6, atol=1e-7
        )
        assert not np.allclose(np.sort(leaked)[::-1], np.sort(clean)[::-1])
