"""Learning-loop observability: refresh traces, drift lifecycle, alert path.

Every test builds its OWN world (``make_search_datasets``) instead of the
session fixture: the drift scenarios mutate the world in place via
``drift_world`` and must not poison other tests.
"""

import numpy as np
import pytest

from repro.core import ModelConfig, TrainConfig, build_model, train_model
from repro.data import WorldConfig, make_search_datasets
from repro.data.synthetic import drift_world
from repro.obs import (
    AlertManager,
    DriftMonitor,
    InMemoryExporter,
    MetricsRegistry,
    SloTracker,
    Tracer,
)
from repro.online import (
    CanaryGate,
    ClickModelConfig,
    IncrementalTrainer,
    ModelRegistry,
    OnlineLoop,
    PositionBiasedClickModel,
)
from repro.serving import ManualClock, ShardedCluster, ZipfLoadGenerator
from repro.utils.rng import generator


def _build_loop(tmp_path, learning_rate=1e-3, rules=(), min_samples=10):
    """A fresh world + fully wired observable loop (own mutable world)."""
    world, train, _ = make_search_datasets(WorldConfig.unit(), 400, 150, seed=2)
    model = build_model("aw_moe", ModelConfig.unit(), train.meta, generator(0))
    train_model(
        model, train, TrainConfig(epochs=1, batch_size=64, learning_rate=3e-3), seed=8
    )
    state = model.state_dict()

    def make_model(trained=False):
        fresh = build_model("aw_moe", ModelConfig.unit(), train.meta, generator(1))
        if trained:
            fresh.load_state_dict(state)
        return fresh

    clock = ManualClock()
    registry = MetricsRegistry()
    trainer = IncrementalTrainer(
        make_model(trained=True),
        TrainConfig(epochs=2, batch_size=64, learning_rate=learning_rate),
        seed=5,
        metrics=registry,
    )
    drift = DriftMonitor(min_samples=min_samples)
    alerts = AlertManager(rules) if rules else None
    cluster = ShardedCluster(
        world,
        make_model(trained=True),
        num_shards=2,
        seed=0,
        max_batch_size=4,
        flush_deadline_ms=5.0,
        cache_capacity=128,
        clock=clock,
        slo=SloTracker(latency_slo_ms=50.0),
        drift=drift,
        alerts=alerts,
    )
    exporter = InMemoryExporter()
    loop = OnlineLoop(
        world=world,
        cluster=cluster,
        trainer=trainer,
        model_factory=make_model,
        registry=ModelRegistry(str(tmp_path / "registry"), clock=lambda: 0.0),
        canary=CanaryGate(tolerance=1.0),
        click_model=PositionBiasedClickModel(
            world, np.random.default_rng(3), ClickModelConfig()
        ),
        clock=clock,
        seed=11,
        tracer=Tracer(sample_rate=1.0, exporter=exporter, clock=clock.now),
        drift=drift,
        alerts=alerts,
    )
    loop.bootstrap()
    gen = ZipfLoadGenerator(np.random.default_rng(7), world=world, target_qps=500.0)
    return loop, gen, exporter


class TestRefreshTracing:
    def test_cycle_emits_nested_span_tree(self, tmp_path):
        loop, gen, exporter = _build_loop(tmp_path)
        report = loop.run_cycle(gen.generate(200))
        assert report.promoted

        (record,) = [r for r in exporter.records if r["name"] == "refresh"]
        assert record["attrs"]["cycle"] == 0
        assert record["attrs"]["promoted"] is True
        assert record["attrs"]["version"] == "v0002"

        spans = {span["name"]: span for span in record["spans"]}
        for stage in ("serve", "read_new", "train", "register", "canary", "swap"):
            assert stage in spans, f"missing {stage} span"

        # Stage spans are roots; per-epoch children nest under train, and the
        # canary's replays nest under canary.
        assert spans["train"]["parent"] is None
        epochs = [s for s in record["spans"] if s["name"] == "epoch"]
        assert len(epochs) == 2  # config.epochs
        assert all(e["parent"] == spans["train"]["id"] for e in epochs)
        assert epochs[0]["attrs"]["index"] == 0
        assert epochs[0]["attrs"]["steps"] > 0
        assert "mean_loss" in epochs[0]["attrs"]
        assert "mean_grad_norm" in epochs[0]["attrs"]

        replays = [s for s in record["spans"] if s["name"] == "replay"]
        assert {r["attrs"]["model"] for r in replays} == {"candidate", "production"}
        assert all(r["parent"] == spans["canary"]["id"] for r in replays)

        assert spans["serve"]["attrs"]["events"] == 200
        assert spans["read_new"]["attrs"]["train_rows"] == report.train_rows
        assert spans["canary"]["attrs"]["passed"] is True

    def test_no_feedback_cycle_traces_early_return(self, tmp_path):
        loop, _, exporter = _build_loop(tmp_path)
        report = loop.run_cycle([])
        assert not report.promoted
        (record,) = [r for r in exporter.records if r["name"] == "refresh"]
        assert record["attrs"]["reason"] == "no_usable_feedback"

    def test_train_step_metrics_stream_into_registry(self, tmp_path):
        loop, gen, _ = _build_loop(tmp_path)
        loop.run_cycle(gen.generate(200))
        registry = loop.trainer.metrics
        steps = registry.counter("train_steps_total").value
        assert steps > 0
        assert registry.histogram("train_step_ms").count == steps
        assert registry.histogram("train_loss").count == steps
        assert registry.histogram("train_grad_norm").count == steps
        assert registry.histogram("train_grad_norm").mean > 0.0


class TestDriftLifecycle:
    def test_promotion_freezes_live_window_as_reference(self, tmp_path):
        loop, gen, _ = _build_loop(tmp_path)
        assert not loop.drift.has_reference
        report = loop.run_cycle(gen.generate(200))
        assert report.promoted
        assert loop.drift.has_reference
        assert loop.drift.live_samples("ctr") == 0  # fresh window after freeze
        # First cycle has no reference yet, so no scores in its report.
        assert report.drift is None

    def test_second_cycle_reports_scores_and_logs_event(self, tmp_path):
        loop, gen, _ = _build_loop(tmp_path)
        loop.run_cycle(gen.generate(200))
        report = loop.run_cycle(gen.generate(200))
        assert report.drift is not None
        assert set(report.drift) == {
            "ctr", "mean_score", "top_score", "calibration_gap", "price", "popularity"
        }
        events = loop.cluster.control.events
        (drift_event,) = events.events("drift_score")
        assert "worst_feature" in drift_event.attrs
        assert "psi_ctr" in drift_event.attrs


class TestEndToEndAlertPath:
    """ISSUE acceptance: drifted traffic -> drift rule fires -> typed event
    -> surfaced in fleet_report() and the rendered dashboard.

    The near-zero learning rate keeps the promoted model weight-identical to
    its predecessor, so the reference window and the live window are served
    by the same scoring function: any PSI movement is *traffic* drift, not a
    deployment artifact.  Measured on these seeds: stationary cycle-2
    drift_psi_ctr ~= 0.009, post-drift_world ~= 0.09 — the 0.04 threshold
    sits between them with >2x margin each way.
    """

    RULES = ("ctr-drift: drift_psi_ctr > 0.04 for 1 severity critical",)

    def test_stationary_traffic_stays_quiet(self, tmp_path):
        loop, gen, _ = _build_loop(tmp_path, learning_rate=1e-7, rules=self.RULES)
        loop.run_cycle(gen.generate(250))
        report = loop.run_cycle(gen.generate(250))
        assert report.drift["ctr"]["psi"] < 0.04
        assert loop.alerts.firing() == ()
        assert loop.cluster.control.events.events("alert_fired") == ()

    def test_drifted_traffic_fires_alert_through_to_dashboard(self, tmp_path):
        loop, gen, _ = _build_loop(tmp_path, learning_rate=1e-7, rules=self.RULES)
        loop.run_cycle(gen.generate(250))  # promote + freeze reference

        drift_world(
            loop.world, np.random.default_rng(9), interest_drift=1.0, trend_drift=0.8
        )
        report = loop.run_cycle(gen.generate(250))

        # 1. The drift monitor measured the shift.
        assert report.drift["ctr"]["psi"] > 0.04

        # 2. The rule fired and the manager holds it as firing.
        assert report.alerts == [
            {"rule": "ctr-drift", "action": "fired", "value": pytest.approx(
                report.drift["ctr"]["psi"]
            )}
        ]
        assert loop.alerts.is_firing("ctr-drift")

        # 3. A typed event landed in the fleet's control-plane log.
        (fired,) = loop.cluster.control.events.events("alert_fired")
        assert fired.attrs["rule"] == "ctr-drift"
        assert fired.attrs["metric"] == "drift_psi_ctr"
        assert fired.attrs["severity"] == "critical"
        assert fired.attrs["value"] > 0.04

        # 4. The fleet report surfaces the firing rule and the drift table.
        text = loop.cluster.fleet_report()
        assert "ctr-drift" in text
        assert "alert" in text.lower()
        assert "drift" in text.lower()

        # 5. The rendered dashboard shows the alert as FIRING.
        path = tmp_path / "dashboard.html"
        loop.cluster.dashboard(str(path), registry=loop.trainer.metrics)
        html = path.read_text()
        assert "ctr-drift" in html
        assert "FIRING" in html
        assert "alert_fired" in html  # event tail renders the typed event
