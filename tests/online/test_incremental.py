"""Incremental trainer: warm starts, optimizer-state persistence, resume."""

import numpy as np
import pytest

from repro.online import IncrementalTrainer


@pytest.fixture()
def windows(train_set):
    """Three disjoint click-window stand-ins from the offline train split."""
    third = len(train_set) // 3
    return [
        train_set.subset(np.arange(i * third, (i + 1) * third)) for i in range(3)
    ]


class TestUpdate:
    def test_update_changes_weights_and_counts(self, make_model, online_train_config, windows):
        model = make_model(trained=True)
        trainer = IncrementalTrainer(model, online_train_config, seed=3)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        log = trainer.update(windows[0])
        assert trainer.updates == 1
        assert trainer.total_steps == len(log) > 0
        after = model.state_dict()
        assert any(not np.array_equal(before[k], after[k]) for k in before)

    def test_optimizer_moments_persist_across_updates(
        self, make_model, online_train_config, windows
    ):
        """The Adam step count keeps growing — the optimizer is never reset
        between refresh cycles (warm start, not cold restart)."""
        trainer = IncrementalTrainer(make_model(trained=True), online_train_config, seed=3)
        trainer.update(windows[0])
        steps_after_first = trainer.optimizers[0]._step_count
        trainer.update(windows[1])
        assert trainer.optimizers[0]._step_count > steps_after_first

    def test_small_window_still_trains(self, make_model, online_train_config, train_set):
        tiny = train_set.subset(np.arange(7))  # < batch_size
        trainer = IncrementalTrainer(make_model(trained=True), online_train_config, seed=3)
        log = trainer.update(tiny)
        assert len(log) == online_train_config.epochs

    def test_contrastive_requires_gate(self, make_model, online_train_config):
        config = online_train_config.with_contrastive()
        IncrementalTrainer(make_model(trained=True), config, seed=0)  # AW-MoE: fine

        class NoGate:
            supports_contrastive = False

        with pytest.raises(TypeError):
            IncrementalTrainer(NoGate(), config, seed=0)


class TestSaveLoadContinue:
    def test_resume_is_bitwise_identical_to_uninterrupted(
        self, tmp_path, make_model, online_train_config, windows
    ):
        """save → load → continue must equal never having stopped, down to
        the last bit: weights, Adam moments, and step counts all round-trip."""
        # Uninterrupted reference: three consecutive updates.
        reference = IncrementalTrainer(make_model(trained=True), online_train_config, seed=5)
        for window in windows:
            reference.update(window)

        # Interrupted run: two updates, checkpoint, restore into a *fresh*
        # model + trainer, then the third update.
        first = IncrementalTrainer(make_model(trained=True), online_train_config, seed=5)
        first.update(windows[0])
        first.update(windows[1])
        path = str(tmp_path / "trainer.npz")
        first.save(path)

        resumed = IncrementalTrainer(make_model(trained=False), online_train_config, seed=5)
        resumed.load(path)
        assert resumed.updates == 2
        resumed.update(windows[2])

        ref_state = reference.model.state_dict()
        res_state = resumed.model.state_dict()
        assert set(ref_state) == set(res_state)
        for name in ref_state:
            np.testing.assert_array_equal(ref_state[name], res_state[name], err_msg=name)
        assert resumed.total_steps == reference.total_steps
        assert resumed.optimizers[0]._step_count == reference.optimizers[0]._step_count

    def test_seed_mismatch_rejected(self, tmp_path, make_model, online_train_config, windows):
        trainer = IncrementalTrainer(make_model(trained=True), online_train_config, seed=5)
        trainer.update(windows[0])
        path = str(tmp_path / "trainer.npz")
        trainer.save(path)
        other = IncrementalTrainer(make_model(trained=False), online_train_config, seed=6)
        with pytest.raises(ValueError):
            other.load(path)
