"""Model registry lifecycle/persistence and the canary regression gate."""

import numpy as np
import pytest

from repro.online import CanaryGate, IncrementalTrainer, ModelRegistry


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(str(tmp_path / "registry"), clock=lambda: 42.0)


class TestRegistryLifecycle:
    def test_register_assigns_increasing_versions(self, registry, make_model):
        model = make_model(trained=True)
        first = registry.register(model)
        second = registry.register(model, parent=first.version)
        assert (first.version, second.version) == (1, 2)
        assert second.parent == 1
        assert first.status == "candidate"
        assert registry.label(first.version) == "v0001"

    def test_promote_archives_previous_production(self, registry, make_model):
        model = make_model(trained=True)
        first = registry.register(model)
        second = registry.register(model)
        registry.promote(first.version)
        registry.promote(second.version, metrics={"auc": 0.8})
        assert registry.production.version == second.version
        assert registry.get(first.version).status == "archived"
        assert registry.get(second.version).metrics["auc"] == 0.8

    def test_rejected_cannot_be_promoted(self, registry, make_model):
        entry = registry.register(make_model(trained=True))
        registry.reject(entry.version, metrics={"auc": 0.1})
        assert registry.num_rejected == 1
        with pytest.raises(ValueError):
            registry.promote(entry.version)

    def test_production_cannot_be_rejected(self, registry, make_model):
        entry = registry.register(make_model(trained=True))
        registry.promote(entry.version)
        with pytest.raises(ValueError):
            registry.reject(entry.version)

    def test_unknown_version_raises(self, registry):
        with pytest.raises(KeyError):
            registry.get(99)


class TestRegistryPersistence:
    def test_index_survives_reopen(self, tmp_path, make_model):
        root = str(tmp_path / "registry")
        registry = ModelRegistry(root, clock=lambda: 1.0)
        model = make_model(trained=True)
        entry = registry.register(model, window=(10, 30), metrics={"auc": 0.7})
        registry.promote(entry.version)

        reopened = ModelRegistry(root)
        assert reopened.latest_version == 1
        assert reopened.production.version == 1
        assert reopened.get(1).window == (10, 30)
        assert reopened.get(1).metrics["auc"] == 0.7

    def test_checkpoint_round_trip_is_bitwise(self, registry, make_model):
        """Registry load produces bitwise-identical predictions — deploying
        through the registry introduces zero skew."""
        source = make_model(trained=True)
        entry = registry.register(source)
        restored = registry.load_into(entry.version, make_model(trained=False))
        for (name, a), (_, b) in zip(
            sorted(source.state_dict().items()), sorted(restored.state_dict().items())
        ):
            np.testing.assert_array_equal(a, b, err_msg=name)

    def test_trainer_checkpoint_round_trip(
        self, registry, make_model, online_train_config, train_set
    ):
        trainer = IncrementalTrainer(make_model(trained=True), online_train_config, seed=2)
        trainer.update(train_set.subset(np.arange(80)))
        entry = registry.register(trainer.model, trainer=trainer)

        fresh_model = make_model(trained=False)
        fresh_trainer = IncrementalTrainer(fresh_model, online_train_config, seed=2)
        registry.load_into(entry.version, fresh_model, trainer=fresh_trainer)
        assert fresh_trainer.updates == trainer.updates
        assert fresh_trainer.optimizers[0]._step_count == trainer.optimizers[0]._step_count

    def test_trainer_model_mismatch_rejected(
        self, registry, make_model, online_train_config
    ):
        trainer = IncrementalTrainer(make_model(trained=True), online_train_config, seed=2)
        with pytest.raises(ValueError):
            registry.register(make_model(trained=True), trainer=trainer)


class TestCanaryGate:
    def test_identical_candidate_passes(self, make_model, test_set):
        gate = CanaryGate(tolerance=0.0)
        report = gate.judge(make_model(trained=True), make_model(trained=True), test_set)
        assert report.passed
        assert report.candidate == report.production

    def test_first_deployment_passes_by_default(self, make_model, test_set):
        report = CanaryGate().judge(make_model(trained=True), None, test_set)
        assert report.passed
        assert report.production is None

    def test_corrupted_candidate_is_blocked(self, make_model, test_set):
        """The acceptance-criteria sanity check: a candidate with scrambled
        weights must never reach production."""
        production = make_model(trained=True)
        corrupted = make_model(trained=True)
        rng = np.random.default_rng(0)
        for param in corrupted.parameters():
            param.data += rng.normal(0.0, 1.0, size=param.data.shape).astype(
                param.data.dtype
            )
        report = CanaryGate(tolerance=0.005).judge(corrupted, production, test_set)
        assert not report.passed
        assert report.reasons
        assert "FAIL" in str(report)

    def test_validation(self):
        with pytest.raises(ValueError):
            CanaryGate(tolerance=-0.1)
        with pytest.raises(ValueError):
            CanaryGate(metrics=("auc", "mrr"))
        with pytest.raises(ValueError):
            CanaryGate(metrics=())
