"""Gradient-boosted trees: splits, boosting, importances."""

import numpy as np
import pytest

from repro.gbdt import GBDTParams, GradientBoostedTrees, RegressionTree, TreeParams


class TestTreeParams:
    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            TreeParams(max_depth=0)

    def test_negative_lambda(self):
        with pytest.raises(ValueError):
            TreeParams(reg_lambda=-1.0)


class TestRegressionTree:
    def test_recovers_single_split(self):
        """A step function in one feature must be found exactly."""
        rng = np.random.default_rng(0)
        x = rng.random((200, 3))
        target = np.where(x[:, 1] > 0.5, 1.0, -1.0)
        # For squared loss: grad = pred - target with pred=0, hess = 1.
        tree = RegressionTree(TreeParams(max_depth=1))
        tree.fit(x, -target, np.ones(200))
        assert 1 in tree.feature_gain
        assert tree.feature_gain.get(0, 0.0) == 0.0
        predictions = tree.predict(x)
        assert np.corrcoef(predictions, target)[0, 1] > 0.95

    def test_depth_limit_respected(self):
        rng = np.random.default_rng(1)
        x = rng.random((300, 4))
        grad = rng.normal(size=300)
        tree = RegressionTree(TreeParams(max_depth=2))
        tree.fit(x, grad, np.ones(300))
        assert tree.depth() <= 2

    def test_leaf_value_formula(self):
        # Pure leaf (no split possible): value = -G / (H + lambda).
        x = np.ones((10, 1))
        grad = np.full(10, 2.0)
        tree = RegressionTree(TreeParams(max_depth=3, reg_lambda=1.0))
        tree.fit(x, grad, np.ones(10))
        assert tree.predict(x)[0] == pytest.approx(-20.0 / 11.0)

    def test_min_child_weight_blocks_tiny_splits(self):
        x = np.array([[0.0], [1.0], [1.0], [1.0]])
        grad = np.array([-10.0, 1.0, 1.0, 1.0])
        strict = RegressionTree(TreeParams(max_depth=1, min_child_weight=2.0))
        strict.fit(x, grad, np.ones(4))
        assert strict.depth() == 0

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            RegressionTree(TreeParams()).predict(np.ones((2, 2)))

    def test_shape_validation(self):
        tree = RegressionTree(TreeParams())
        with pytest.raises(ValueError):
            tree.fit(np.ones(5), np.ones(5), np.ones(5))
        with pytest.raises(ValueError):
            tree.fit(np.ones((5, 2)), np.ones(4), np.ones(5))


class TestBoosting:
    def test_fits_linearly_separable(self):
        rng = np.random.default_rng(2)
        x = rng.random((400, 4))
        y = (x[:, 2] > 0.5).astype(float)
        model = GradientBoostedTrees(GBDTParams(num_rounds=20))
        model.fit(x, y)
        preds = model.predict_proba(x)
        accuracy = ((preds > 0.5) == y).mean()
        assert accuracy > 0.95

    def test_fits_xor_interaction(self):
        rng = np.random.default_rng(3)
        x = rng.random((600, 2))
        y = ((x[:, 0] > 0.5) ^ (x[:, 1] > 0.5)).astype(float)
        model = GradientBoostedTrees(GBDTParams(num_rounds=40, max_depth=3))
        model.fit(x, y)
        accuracy = ((model.predict_proba(x) > 0.5) == y).mean()
        assert accuracy > 0.9

    def test_probabilities_in_range(self):
        rng = np.random.default_rng(4)
        x = rng.random((100, 3))
        y = (rng.random(100) < 0.3).astype(float)
        model = GradientBoostedTrees(GBDTParams(num_rounds=5))
        model.fit(x, y)
        probs = model.predict_proba(x)
        assert np.all((probs > 0) & (probs < 1))

    def test_importance_identifies_informative_feature(self):
        rng = np.random.default_rng(5)
        x = rng.random((500, 5))
        y = (x[:, 3] > 0.6).astype(float)
        model = GradientBoostedTrees(GBDTParams(num_rounds=15))
        model.fit(x, y)
        importances = model.feature_importances("gain")
        assert importances[3] == importances.max()
        assert importances.sum() == pytest.approx(1.0)

    def test_split_count_importance(self):
        rng = np.random.default_rng(6)
        x = rng.random((300, 3))
        y = (x[:, 0] > 0.5).astype(float)
        model = GradientBoostedTrees(GBDTParams(num_rounds=5))
        model.fit(x, y)
        by_splits = model.feature_importances("splits")
        assert by_splits[0] > 0

    def test_unknown_importance_kind(self):
        rng = np.random.default_rng(6)
        x = rng.random((50, 2))
        y = (x[:, 0] > 0.5).astype(float)
        model = GradientBoostedTrees(GBDTParams(num_rounds=2))
        model.fit(x, y)
        with pytest.raises(ValueError):
            model.feature_importances("cover")

    def test_non_binary_labels_rejected(self):
        model = GradientBoostedTrees(GBDTParams())
        with pytest.raises(ValueError):
            model.fit(np.ones((3, 2)), np.array([0.0, 0.5, 1.0]))

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            GradientBoostedTrees(GBDTParams()).predict_proba(np.ones((2, 2)))

    def test_subsample_runs(self):
        rng = np.random.default_rng(7)
        x = rng.random((200, 3))
        y = (x[:, 1] > 0.5).astype(float)
        model = GradientBoostedTrees(GBDTParams(num_rounds=10, subsample=0.5), rng=rng)
        model.fit(x, y)
        assert ((model.predict_proba(x) > 0.5) == y).mean() > 0.8

    def test_base_score_matches_prior(self):
        rng = np.random.default_rng(8)
        x = rng.random((100, 2))
        y = (rng.random(100) < 0.2).astype(float)
        model = GradientBoostedTrees(GBDTParams(num_rounds=1))
        model.fit(x, y)
        prior = y.mean()
        assert model._base_score == pytest.approx(np.log(prior / (1 - prior)), rel=1e-6)

    def test_len_counts_trees(self):
        rng = np.random.default_rng(9)
        x = rng.random((60, 2))
        y = (x[:, 0] > 0.5).astype(float)
        model = GradientBoostedTrees(GBDTParams(num_rounds=7))
        model.fit(x, y)
        assert len(model) == 7

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GBDTParams(num_rounds=0)
        with pytest.raises(ValueError):
            GBDTParams(subsample=0.0)
