"""Input network (Eq. 2-4) and gate network (Eq. 6-8) behaviour."""

import numpy as np
import pytest

from repro.core import FeatureEmbedder, GateNetwork, InputNetwork, ModelConfig
from repro.nn import no_grad
from repro.utils import SeedBank


@pytest.fixture()
def batch(test_set):
    return test_set.batch_at(np.arange(16))


def _nets(meta, task="search", pooling="attention", **config_overrides):
    from dataclasses import replace

    config = replace(ModelConfig.unit(task=task), **config_overrides)
    bank = SeedBank(3)
    embedder = FeatureEmbedder(config, meta, bank.child("embed"))
    input_net = InputNetwork(config, meta, embedder, bank.child("input"), pooling=pooling)
    gate = GateNetwork(config, meta, embedder, bank.child("gate"))
    return config, embedder, input_net, gate


class TestFeatureEmbedder:
    def test_behavior_repr_dim(self, test_set, batch):
        config, embedder, _, _ = _nets(test_set.meta)
        out = embedder.behavior(batch)
        assert out.shape == (16, test_set.meta.max_seq_len, embedder.item_repr_dim)

    def test_target_repr_dim(self, test_set, batch):
        _, embedder, _, _ = _nets(test_set.meta)
        assert embedder.target(batch).shape == (16, embedder.item_repr_dim)

    def test_dense_features_included(self, test_set, batch):
        _, embedder, _, _ = _nets(test_set.meta)
        out = embedder.target(batch).numpy()
        # The last dense column is the style coordinate, copied verbatim.
        assert np.allclose(out[:, -1], batch["target_dense"][:, -1], atol=1e-6)


class TestInputNetwork:
    def test_output_dim_search(self, test_set, batch):
        config, _, input_net, _ = _nets(test_set.meta)
        out = input_net(batch)
        assert out.shape == (16, 4 * config.input_hidden[-1])

    def test_output_dim_reco(self, test_set, batch):
        config, _, input_net, _ = _nets(test_set.meta, task="reco")
        out = input_net(batch)
        assert out.shape == (16, 3 * config.input_hidden[-1])

    def test_sum_pooling_variant(self, test_set, batch):
        _, _, input_net, _ = _nets(test_set.meta, pooling="sum")
        assert input_net.attention is None
        assert input_net(batch).shape[0] == 16

    def test_invalid_pooling_rejected(self, test_set):
        with pytest.raises(ValueError):
            _nets(test_set.meta, pooling="meanish")

    def test_empty_history_gives_zero_user_vector(self, test_set, batch):
        _, _, input_net, _ = _nets(test_set.meta)
        empty = {k: v.copy() for k, v in batch.items()}
        empty["behavior_mask"] = np.zeros_like(empty["behavior_mask"])
        with no_grad():
            h_target = input_net.behavior_mlp(input_net.embedder.target(empty))
            v_user = input_net.user_vector(empty, h_target)
        assert np.allclose(v_user.numpy(), 0.0, atol=1e-6)

    def test_attention_depends_on_target(self, test_set, batch):
        _, _, input_net, _ = _nets(test_set.meta)
        with no_grad():
            h_t = input_net.behavior_mlp(input_net.embedder.target(batch))
            v_a = input_net.user_vector(batch, h_t).numpy()
            rolled = {k: v.copy() for k, v in batch.items()}
            rolled["target_item"] = np.roll(rolled["target_item"], 1)
            rolled["target_category"] = np.roll(rolled["target_category"], 1)
            rolled["target_dense"] = np.roll(rolled["target_dense"], 1, axis=0)
            h_t2 = input_net.behavior_mlp(input_net.embedder.target(rolled))
            v_b = input_net.user_vector(rolled, h_t2).numpy()
        assert not np.allclose(v_a, v_b)


class TestGateNetwork:
    def test_output_shape(self, test_set, batch):
        config, _, _, gate = _nets(test_set.meta)
        assert gate(batch).shape == (16, config.num_experts)

    def test_empty_sequence_returns_bias(self, test_set, batch):
        config, _, _, gate = _nets(test_set.meta)
        empty_mask = np.zeros_like(batch["behavior_mask"])
        with no_grad():
            out = gate(batch, mask_override=empty_mask).numpy()
        assert np.allclose(out, gate.bias.numpy()[None, :], atol=1e-6)

    def test_mask_override_changes_output(self, test_set, batch):
        _, _, _, gate = _nets(test_set.meta)
        with no_grad():
            full = gate(batch).numpy()
            masked = gate(batch, mask_override=np.zeros_like(batch["behavior_mask"])).numpy()
        assert not np.allclose(full, masked)

    def test_normalize_gate_softmax(self, test_set, batch):
        _, _, _, gate = _nets(test_set.meta, normalize_gate=True)
        with no_grad():
            out = gate(batch).numpy()
        assert np.allclose(out.sum(axis=1), 1.0, atol=1e-5)
        assert np.all(out >= 0)

    def test_no_bias_variant(self, test_set, batch):
        _, _, _, gate = _nets(test_set.meta, gate_bias=False)
        assert gate.bias is None
        empty_mask = np.zeros_like(batch["behavior_mask"])
        with no_grad():
            out = gate(batch, mask_override=empty_mask).numpy()
        assert np.allclose(out, 0.0, atol=1e-6)

    def test_reco_mode_uses_target_key(self, test_set, batch):
        _, _, _, gate = _nets(test_set.meta, task="reco")
        with no_grad():
            base = gate(batch).numpy()
            rolled = {k: v.copy() for k, v in batch.items()}
            rolled["target_item"] = np.roll(rolled["target_item"], 1)
            rolled["target_category"] = np.roll(rolled["target_category"], 1)
            rolled["target_dense"] = np.roll(rolled["target_dense"], 1, axis=0)
            changed = gate(rolled).numpy()
        assert not np.allclose(base, changed)

    def test_search_mode_ignores_target(self, test_set, batch):
        """§III-F1: the deployed gate uses only user/query features, so the
        gate can be computed once per session regardless of the target."""
        _, _, _, gate = _nets(test_set.meta, task="search")
        with no_grad():
            base = gate(batch).numpy()
            rolled = {k: v.copy() for k, v in batch.items()}
            rolled["target_item"] = np.roll(rolled["target_item"], 1)
            rolled["target_category"] = np.roll(rolled["target_category"], 1)
            rolled["target_dense"] = np.roll(rolled["target_dense"], 1, axis=0)
            same = gate(rolled).numpy()
        assert np.allclose(base, same, atol=1e-6)


class TestGateAblations:
    """The four Table VI variants produce (B, K) gates through different paths."""

    @pytest.mark.parametrize(
        "use_gu,use_au",
        [(False, False), (True, False), (False, True), (True, True)],
    )
    def test_all_variants_run(self, test_set, batch, use_gu, use_au):
        config, _, _, gate = _nets(
            test_set.meta, gate_use_gate_unit=use_gu, gate_use_activation_unit=use_au
        )
        assert gate(batch).shape == (16, config.num_experts)

    def test_base_variant_has_pooled_mlp(self, test_set):
        _, _, _, gate = _nets(
            test_set.meta, gate_use_gate_unit=False, gate_use_activation_unit=False
        )
        assert gate.pooled_mlp is not None
        assert gate.gate_unit is None
        assert gate.activation_unit is None

    def test_full_variant_has_units(self, test_set):
        _, _, _, gate = _nets(test_set.meta)
        assert gate.gate_unit is not None
        assert gate.activation_unit is not None
        assert gate.pooled_mlp is None

    def test_variants_have_different_parameter_counts(self, test_set):
        import repro.nn as nn

        def count(gu, au):
            _, _, _, gate = _nets(
                test_set.meta, gate_use_gate_unit=gu, gate_use_activation_unit=au
            )
            return sum(p.size for p in gate.parameters())

        counts = {count(False, False), count(True, False), count(True, True)}
        assert len(counts) == 3
