"""All registered ranking models: shapes, modes, determinism, learning."""

import numpy as np
import pytest

from repro.core import (
    MODEL_REGISTRY,
    AWMoE,
    ModelConfig,
    TrainConfig,
    build_model,
    train_model,
)
from repro.nn import bce_with_logits
MODEL_NAMES = ["dnn", "din", "category_moe", "aw_moe", "mmoe"]


@pytest.fixture()
def batch(test_set):
    return test_set.batch_at(np.arange(32))


class TestRegistry:
    def test_all_expected_models_registered(self):
        assert set(MODEL_NAMES) <= set(MODEL_REGISTRY.names())

    def test_unknown_model_rejected(self, test_set):
        with pytest.raises(KeyError):
            build_model("transformer4rec", ModelConfig.unit(), test_set.meta, np.random.default_rng(0))


class TestForward:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_logits_shape(self, name, test_set, batch):
        model = build_model(name, ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
        assert model(batch).shape == (32,)

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_predict_proba_in_unit_interval(self, name, test_set, batch):
        model = build_model(name, ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
        probs = model.predict_proba(batch)
        assert np.all((probs > 0) & (probs < 1))

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_deterministic_inference(self, name, test_set, batch):
        model = build_model(name, ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
        assert np.allclose(model.predict_logits(batch), model.predict_logits(batch))

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_same_seed_same_init(self, name, test_set, batch):
        a = build_model(name, ModelConfig.unit(), test_set.meta, np.random.default_rng(5))
        b = build_model(name, ModelConfig.unit(), test_set.meta, np.random.default_rng(5))
        assert np.allclose(a.predict_logits(batch), b.predict_logits(batch))

    def test_predict_restores_training_mode(self, test_set, batch):
        model = build_model("aw_moe", ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
        model.train()
        model.predict_proba(batch)
        assert model.training

    def test_task_mismatch_rejected(self, test_set):
        with pytest.raises(ValueError):
            AWMoE(ModelConfig.unit(task="reco"), test_set.meta, np.random.default_rng(0))


class TestGateHooks:
    def test_aw_moe_supports_contrastive(self, test_set):
        model = build_model("aw_moe", ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
        assert model.supports_contrastive

    def test_baselines_do_not(self, test_set):
        for name in ["dnn", "din", "category_moe"]:
            model = build_model(name, ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
            assert not model.supports_contrastive
            with pytest.raises(NotImplementedError):
                model.gate_vector(test_set.batch_at(np.arange(4)))

    def test_forward_with_gate_returns_gate(self, test_set, batch):
        model = build_model("aw_moe", ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
        logits, gate = model.forward_with_gate(batch)
        assert logits.shape == (32,)
        assert gate.shape == (32, model.config.num_experts)

    def test_forward_with_gate_none_for_baselines(self, test_set, batch):
        model = build_model("din", ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
        logits, gate = model.forward_with_gate(batch)
        assert gate is None

    def test_gate_outputs_array(self, test_set, batch):
        model = build_model("aw_moe", ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
        gate = model.gate_outputs(batch)
        assert isinstance(gate, np.ndarray)
        assert gate.shape == (32, model.config.num_experts)

    def test_expert_scores_shape(self, test_set, batch):
        model = build_model("aw_moe", ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
        assert model.expert_scores(batch).shape == (32, model.config.num_experts)

    def test_logits_are_gate_weighted_expert_sum(self, test_set, batch):
        model = build_model("aw_moe", ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
        logits = model.predict_logits(batch)
        manual = (model.gate_outputs(batch) * model.expert_scores(batch)).sum(axis=1)
        assert np.allclose(logits, manual, atol=1e-5)


class TestLearning:
    @pytest.mark.parametrize("name", ["dnn", "aw_moe"])
    def test_loss_decreases_with_training(self, name, test_set, train_set, name_seed=0):
        model = build_model(name, ModelConfig.unit(), train_set.meta, np.random.default_rng(1))
        batch = train_set.batch_at(np.arange(min(256, len(train_set))))
        before = bce_with_logits(model(batch), batch["label"]).item()
        train_model(model, train_set, TrainConfig(epochs=2, batch_size=64, learning_rate=3e-3), seed=2)
        model.eval()
        after = bce_with_logits(model(batch), batch["label"]).item()
        assert after < before

    def test_category_moe_gate_varies_by_category(self, test_set, train_set):
        model = build_model("category_moe", ModelConfig.unit(), train_set.meta, np.random.default_rng(1))
        train_model(model, train_set, TrainConfig(epochs=1, batch_size=64, learning_rate=3e-3), seed=2)
        batch = test_set.batch_at(np.arange(64))
        gates = model.gate_outputs(batch)
        categories = batch["query_category"]
        if np.unique(categories).size >= 2:
            # gates must coincide within a category and differ somewhere across
            first = categories == categories[0]
            assert np.allclose(gates[first], gates[first][0], atol=1e-5)
            assert gates.std(axis=0).sum() > 0

    def test_mmoe_multi_task_heads(self, test_set, batch):
        from repro.core.baselines import MMoE

        model = MMoE(ModelConfig.unit(), test_set.meta, np.random.default_rng(0), num_tasks=3)
        outputs = model.forward_tasks(batch)
        assert len(outputs) == 3
        assert all(o.shape == (32,) for o in outputs)

    def test_reco_mode_all_models(self, unit_world):
        from repro.data import WorldConfig
        from repro.data.amazon import make_amazon_datasets

        _, train, test = make_amazon_datasets(WorldConfig.unit(), seed=3)
        batch = test.batch_at(np.arange(min(16, len(test))))
        for name in ["dnn", "din", "category_moe", "aw_moe"]:
            model = build_model(name, ModelConfig.unit(task="reco"), train.meta, np.random.default_rng(0))
            assert model(batch).shape == (len(batch["label"]),)
