"""Activation unit Φ and gate unit Θ."""

import numpy as np
import pytest

from repro.core.activation_unit import ActivationUnit
from repro.core.gate_unit import GateUnit
from repro.nn import Tensor

RNG = np.random.default_rng(17)
H = 8


def _inputs(batch=3, seq=5, valid=4):
    h_seq = Tensor(RNG.random((batch, seq, H)).astype(np.float32), requires_grad=True)
    h_key = Tensor(RNG.random((batch, H)).astype(np.float32))
    mask = np.zeros((batch, seq), dtype=np.float32)
    mask[:, :valid] = 1.0
    return h_seq, h_key, mask


class TestActivationUnit:
    def test_output_shape(self):
        unit = ActivationUnit(H, (8, 4), RNG)
        h_seq, h_key, mask = _inputs()
        assert unit(h_seq, h_key, mask).shape == (3, 5)

    def test_masked_positions_zero(self):
        unit = ActivationUnit(H, (8, 4), RNG)
        h_seq, h_key, mask = _inputs(valid=2)
        weights = unit(h_seq, h_key, mask).numpy()
        assert np.all(weights[:, 2:] == 0.0)

    def test_key_shape_mismatch_rejected(self):
        unit = ActivationUnit(H, (8, 4), RNG)
        h_seq, _, mask = _inputs()
        bad_key = Tensor(np.ones((3, H + 1), dtype=np.float32))
        with pytest.raises(ValueError):
            unit(h_seq, bad_key, mask)

    def test_gradient_flows_to_sequence(self):
        unit = ActivationUnit(H, (8, 4), RNG)
        h_seq, h_key, mask = _inputs()
        unit(h_seq, h_key, mask).sum().backward()
        assert h_seq.grad is not None

    def test_relu_output_variant_non_negative(self):
        unit = ActivationUnit(H, (8, 4), RNG, output_activation="relu")
        h_seq, h_key, mask = _inputs()
        assert np.all(unit(h_seq, h_key, mask).numpy() >= 0.0)

    def test_depends_on_key(self):
        unit = ActivationUnit(H, (8, 4), RNG)
        h_seq, h_key, mask = _inputs()
        other_key = Tensor(RNG.random((3, H)).astype(np.float32))
        a = unit(h_seq, h_key, mask).numpy()
        b = unit(h_seq, other_key, mask).numpy()
        assert not np.allclose(a, b)


class TestGateUnit:
    def test_output_shape(self):
        unit = GateUnit(H, 4, (8, 4), RNG)
        h_seq, h_key, mask = _inputs()
        assert unit(h_seq, h_key, mask).shape == (3, 5, 4)

    def test_masked_positions_zero(self):
        unit = GateUnit(H, 4, (8, 4), RNG)
        h_seq, h_key, mask = _inputs(valid=1)
        scores = unit(h_seq, h_key, mask).numpy()
        assert np.all(scores[:, 1:, :] == 0.0)

    def test_per_item_scores_differ(self):
        unit = GateUnit(H, 4, (8, 4), RNG)
        h_seq, h_key, mask = _inputs()
        scores = unit(h_seq, h_key, mask).numpy()
        assert not np.allclose(scores[:, 0, :], scores[:, 1, :])

    def test_key_shape_mismatch_rejected(self):
        unit = GateUnit(H, 4, (8, 4), RNG)
        h_seq, _, mask = _inputs()
        with pytest.raises(ValueError):
            unit(h_seq, Tensor(np.ones((3, H + 2), dtype=np.float32)), mask)

    def test_gradient_flows(self):
        unit = GateUnit(H, 2, (8, 4), RNG)
        h_seq, h_key, mask = _inputs()
        unit(h_seq, h_key, mask).sum().backward()
        assert h_seq.grad is not None
        assert any(p.grad is not None for p in unit.parameters())
