"""Future-work extensions: sparse top-K gate, adversarial regularizer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ModelConfig, TrainConfig
from repro.core.extensions import (
    SparseGatedAWMoE,
    expert_correlation_loss,
    sparse_top_k,
    train_adversarial_aw_moe,
)
from repro.nn import Tensor

settings.register_profile("ci", deadline=None, max_examples=25)
settings.load_profile("ci")


class TestSparseTopK:
    def test_keeps_largest(self):
        gate = Tensor(np.array([[0.1, 0.5, 0.3, 0.2]], dtype=np.float32))
        out = sparse_top_k(gate, 2).numpy()
        assert out[0, 1] == pytest.approx(0.5, rel=1e-5)
        assert out[0, 2] == pytest.approx(0.3, rel=1e-5)
        assert out[0, 0] == 0.0
        assert out[0, 3] == 0.0

    def test_full_k_is_identity(self):
        gate = Tensor(np.random.default_rng(0).random((3, 4)).astype(np.float32))
        out = sparse_top_k(gate, 4)
        assert np.allclose(out.numpy(), gate.numpy())

    def test_invalid_k(self):
        gate = Tensor(np.zeros((2, 4), dtype=np.float32))
        with pytest.raises(ValueError):
            sparse_top_k(gate, 0)
        with pytest.raises(ValueError):
            sparse_top_k(gate, 5)

    def test_gradient_only_through_survivors(self):
        gate = Tensor(
            np.array([[1.0, 2.0, 3.0, 4.0]]), requires_grad=True, dtype=np.float64
        )
        sparse_top_k(gate, 2).sum().backward()
        assert list(gate.grad[0]) == [0.0, 0.0, 1.0, 1.0]

    @given(st.integers(1, 6))
    def test_exactly_k_nonzero_when_values_distinct(self, k):
        rng = np.random.default_rng(4)
        values = rng.permutation(6).astype(np.float32)[None, :] + 1.0
        out = sparse_top_k(Tensor(values), k).numpy()
        assert (out != 0).sum() == k


class TestSparseGatedModel:
    def test_forward_shape(self, test_set):
        model = SparseGatedAWMoE(ModelConfig.unit(), test_set.meta, np.random.default_rng(0), top_k=2)
        batch = test_set.batch_at(np.arange(8))
        logits, gate = model.forward_with_gate(batch)
        assert logits.shape == (8,)
        nonzero_per_row = (gate.numpy() != 0).sum(axis=1)
        assert np.all(nonzero_per_row <= 2 + 1)  # ties may keep an extra entry

    def test_invalid_top_k(self, test_set):
        with pytest.raises(ValueError):
            SparseGatedAWMoE(ModelConfig.unit(), test_set.meta, np.random.default_rng(0), top_k=99)

    def test_active_fraction(self, test_set):
        model = SparseGatedAWMoE(ModelConfig.unit(), test_set.meta, np.random.default_rng(0), top_k=1)
        frac = model.active_expert_fraction(test_set.batch_at(np.arange(32)))
        assert 0.0 < frac <= 0.6

    def test_trains(self, train_set, fast_train_config):
        from repro.core import train_model

        model = SparseGatedAWMoE(ModelConfig.unit(), train_set.meta, np.random.default_rng(0), top_k=2)
        log = train_model(model, train_set, fast_train_config, seed=1)
        assert np.isfinite(log.last("loss"))


class TestAdversarial:
    def test_identical_experts_give_max_correlation(self):
        scores = np.tile(np.random.default_rng(0).random((16, 1)), (1, 4)).astype(np.float32)
        loss = expert_correlation_loss(Tensor(scores))
        assert loss.item() == pytest.approx(1.0, abs=0.05)

    def test_independent_experts_give_low_correlation(self):
        scores = np.random.default_rng(0).normal(size=(500, 4)).astype(np.float32)
        loss = expert_correlation_loss(Tensor(scores))
        assert loss.item() < 0.05

    def test_batch_of_one_rejected(self):
        with pytest.raises(ValueError):
            expert_correlation_loss(Tensor(np.zeros((1, 4), dtype=np.float32)))

    def test_gradient_flows(self):
        scores = Tensor(
            np.random.default_rng(1).normal(size=(32, 4)), requires_grad=True, dtype=np.float64
        )
        expert_correlation_loss(scores).backward()
        assert scores.grad is not None

    def test_adversarial_training_reduces_correlation(self, train_set):
        from repro.core import AWMoE

        config = TrainConfig(epochs=2, batch_size=64, learning_rate=3e-3)
        plain = AWMoE(ModelConfig.unit(), train_set.meta, np.random.default_rng(7))
        adversarial = AWMoE(ModelConfig.unit(), train_set.meta, np.random.default_rng(7))
        train_adversarial_aw_moe(plain, train_set, config, adversarial_weight=0.0, seed=3)
        train_adversarial_aw_moe(adversarial, train_set, config, adversarial_weight=1.0, seed=3)
        batch = train_set.batch_at(np.arange(min(256, len(train_set))))
        corr_plain = expert_correlation_loss(Tensor(plain.expert_scores(batch))).item()
        corr_adv = expert_correlation_loss(Tensor(adversarial.expert_scores(batch))).item()
        assert corr_adv < corr_plain

    def test_negative_weight_rejected(self, train_set):
        from repro.core import AWMoE

        model = AWMoE(ModelConfig.unit(), train_set.meta, np.random.default_rng(0))
        with pytest.raises(ValueError):
            train_adversarial_aw_moe(model, train_set, TrainConfig(), adversarial_weight=-1.0)
