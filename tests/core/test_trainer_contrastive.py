"""Trainer and contrastive strategy."""

import numpy as np
import pytest

from repro.core import ContrastiveStrategy, ModelConfig, TrainConfig, build_model, train_model
from repro.core.trainer import build_optimizers

class TestTrainConfig:
    def test_invalid_mask_prob(self):
        with pytest.raises(ValueError):
            TrainConfig(mask_prob=1.5)

    def test_invalid_negatives(self):
        with pytest.raises(ValueError):
            TrainConfig(num_negatives=0)

    def test_invalid_augmentation(self):
        with pytest.raises(ValueError):
            TrainConfig(augmentation="rotate")

    def test_with_contrastive(self):
        base = TrainConfig()
        cl = base.with_contrastive(cl_weight=0.2)
        assert not base.contrastive
        assert cl.contrastive
        assert cl.cl_weight == 0.2


class TestTrainer:
    def test_returns_populated_log(self, train_set, fast_train_config):
        model = build_model("dnn", ModelConfig.unit(), train_set.meta, np.random.default_rng(0))
        log = train_model(model, train_set, fast_train_config, seed=1)
        assert len(log) > 0
        assert log.last("loss") is not None

    def test_model_left_in_eval_mode(self, train_set, fast_train_config):
        model = build_model("dnn", ModelConfig.unit(), train_set.meta, np.random.default_rng(0))
        train_model(model, train_set, fast_train_config, seed=1)
        assert not model.training

    def test_contrastive_on_baseline_rejected(self, train_set):
        model = build_model("din", ModelConfig.unit(), train_set.meta, np.random.default_rng(0))
        with pytest.raises(TypeError):
            train_model(model, train_set, TrainConfig(contrastive=True), seed=1)

    def test_contrastive_logs_cl_loss(self, train_set, fast_train_config):
        model = build_model("aw_moe", ModelConfig.unit(), train_set.meta, np.random.default_rng(0))
        log = train_model(model, train_set, fast_train_config.with_contrastive(), seed=1)
        assert log.last("cl_loss") is not None
        assert log.last("cl_loss") >= 0.0

    def test_training_is_deterministic(self, train_set, fast_train_config):
        def run():
            model = build_model("dnn", ModelConfig.unit(), train_set.meta, np.random.default_rng(3))
            log = train_model(model, train_set, fast_train_config, seed=4)
            return log.last("loss")

        assert run() == pytest.approx(run())

    def test_different_seed_changes_run(self, train_set, fast_train_config):
        def run(seed):
            model = build_model("dnn", ModelConfig.unit(), train_set.meta, np.random.default_rng(3))
            return train_model(model, train_set, fast_train_config, seed=seed).last("loss")

        assert run(1) != pytest.approx(run(2))


class TestOptimizerGroups:
    def test_single_optimizer_by_default(self, train_set):
        model = build_model("aw_moe", ModelConfig.unit(), train_set.meta, np.random.default_rng(0))
        optimizers = build_optimizers(model, TrainConfig())
        assert len(optimizers) == 1

    def test_gate_multiplier_splits_groups(self, train_set):
        model = build_model("aw_moe", ModelConfig.unit(), train_set.meta, np.random.default_rng(0))
        config = TrainConfig(gate_lr_multiplier=3.0)
        optimizers = build_optimizers(model, config)
        assert len(optimizers) == 2
        assert optimizers[1].lr == pytest.approx(3.0 * config.learning_rate)
        total = len(optimizers[0].params) + len(optimizers[1].params)
        assert total == len(model.parameters())

    def test_gateless_model_single_group(self, train_set):
        model = build_model("dnn", ModelConfig.unit(), train_set.meta, np.random.default_rng(0))
        optimizers = build_optimizers(model, TrainConfig(gate_lr_multiplier=3.0))
        assert len(optimizers) == 1


class TestContrastiveStrategy:
    def test_loss_is_scalar_and_finite(self, train_set):
        model = build_model("aw_moe", ModelConfig.unit(), train_set.meta, np.random.default_rng(0))
        batch = train_set.batch_at(np.arange(16))
        _, gate = model.forward_with_gate(batch)
        strategy = ContrastiveStrategy()
        loss = strategy.loss(model, batch, gate, np.random.default_rng(1))
        assert loss.shape == ()
        assert np.isfinite(loss.item())

    def test_weight_scales_loss(self, train_set):
        model = build_model("aw_moe", ModelConfig.unit(), train_set.meta, np.random.default_rng(0))
        batch = train_set.batch_at(np.arange(16))
        _, gate = model.forward_with_gate(batch)
        light = ContrastiveStrategy(weight=0.05).loss(model, batch, gate, np.random.default_rng(1))
        _, gate2 = model.forward_with_gate(batch)
        heavy = ContrastiveStrategy(weight=0.5).loss(model, batch, gate2, np.random.default_rng(1))
        assert heavy.item() == pytest.approx(10 * light.item(), rel=1e-4)

    def test_rejects_gateless_model(self, train_set):
        from repro.nn import Tensor

        model = build_model("dnn", ModelConfig.unit(), train_set.meta, np.random.default_rng(0))
        batch = train_set.batch_at(np.arange(8))
        strategy = ContrastiveStrategy()
        with pytest.raises(TypeError):
            strategy.loss(model, batch, Tensor(np.zeros((8, 4))), np.random.default_rng(1))

    def test_rejects_batch_of_one(self, train_set):
        model = build_model("aw_moe", ModelConfig.unit(), train_set.meta, np.random.default_rng(0))
        batch = train_set.batch_at(np.arange(1))
        _, gate = model.forward_with_gate(batch)
        with pytest.raises(ValueError):
            ContrastiveStrategy().loss(model, batch, gate, np.random.default_rng(1))

    def test_gradient_reaches_gate_parameters(self, train_set):
        model = build_model("aw_moe", ModelConfig.unit(), train_set.meta, np.random.default_rng(0))
        batch = train_set.batch_at(np.arange(16))
        _, gate = model.forward_with_gate(batch)
        loss = ContrastiveStrategy().loss(model, batch, gate, np.random.default_rng(1))
        loss.backward()
        gate_params = list(model.gate.parameters())
        assert any(p.grad is not None and np.abs(p.grad).sum() > 0 for p in gate_params)

    def test_all_augmentations_work(self, train_set):
        for augmentation in ("mask", "crop", "reorder"):
            model = build_model("aw_moe", ModelConfig.unit(), train_set.meta, np.random.default_rng(0))
            batch = train_set.batch_at(np.arange(8))
            _, gate = model.forward_with_gate(batch)
            strategy = ContrastiveStrategy(augmentation=augmentation)
            loss = strategy.loss(model, batch, gate, np.random.default_rng(1))
            assert np.isfinite(loss.item())
