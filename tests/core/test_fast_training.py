"""Parity of the fast training path against the eager reference.

The fast path (``TrainConfig.fast_path``) must optimize *exactly* the same
objective as the eager reference: packed-expert GEMMs, fused linear kernels,
and the shared-trunk contrastive pair are all float-level reorderings of the
reference computation, never different math.  These tests pin that contract
at every level — expert pool, gate views, and full training steps.
"""

import numpy as np
import pytest

from repro.core import ModelConfig, TrainConfig, build_model
from repro.core.expert import ExpertPool
from repro.core.trainer import build_optimizers, build_strategy, train_step
from repro.data.dataset import iterate_batches
from repro.nn import GradArena, Tensor, fast_math
from repro.utils import SeedBank


def _pool(dropout=0.0, seed=0):
    return ExpertPool(12, (16, 8), 4, np.random.default_rng(seed), dropout=dropout)


class TestPackedExpertPool:
    def test_forward_matches_eager(self):
        pool = _pool()
        v_imp = Tensor(np.random.default_rng(1).normal(size=(6, 12)).astype(np.float32))
        eager = pool.forward_eager(v_imp)
        packed = pool.forward_packed(v_imp)
        assert packed.shape == (6, 4)
        assert np.allclose(eager.numpy(), packed.numpy(), atol=1e-6)

    def test_gradients_match_eager(self):
        pool = _pool()
        data = np.random.default_rng(2).normal(size=(6, 12)).astype(np.float32)
        upstream = np.random.default_rng(3).normal(size=(6, 4)).astype(np.float32)

        pool.forward_eager(Tensor(data)).backward(upstream)
        eager_grads = {name: p.grad.copy() for name, p in pool.named_parameters()}
        pool.zero_grad()
        pool.forward_packed(Tensor(data)).backward(upstream)
        for name, param in pool.named_parameters():
            assert np.allclose(eager_grads[name], param.grad, atol=1e-5), name

    def test_forward_dispatches_packed_under_fast_math(self):
        pool = _pool()
        v_imp = Tensor(np.random.default_rng(4).normal(size=(3, 12)).astype(np.float32))
        eager = pool(v_imp)
        with fast_math():
            fast = pool(v_imp)
        assert np.allclose(eager.numpy(), fast.numpy(), atol=1e-6)

    def test_dropout_falls_back_to_eager(self):
        pool = _pool(dropout=0.5)
        pool.train()
        v_imp = Tensor(np.random.default_rng(5).normal(size=(4, 12)).astype(np.float32))
        calls = []
        original = pool.forward_eager
        pool.forward_eager = lambda v: calls.append(1) or original(v)
        with fast_math():
            pool(v_imp)
        assert calls, "training-mode dropout must use the per-expert eager path"
        pool.eval()
        with fast_math():
            out = pool(v_imp)  # eval mode: dropout off, packed path fine
        assert out.shape == (4, 4)


class TestGateViews:
    def _model(self, train_set, config=None):
        config = config or ModelConfig.unit()
        return build_model("aw_moe", config, train_set.meta, np.random.default_rng(7))

    def test_views_match_separate_forwards(self, train_set):
        model = self._model(train_set)
        batch = train_set.batch_at(np.arange(8))
        positive = batch["behavior_mask"] * (np.random.default_rng(8).random(batch["behavior_mask"].shape) > 0.3)
        anchor_ref = model.gate.forward(batch)
        positive_ref = model.gate.forward(batch, mask_override=positive)
        anchor, positive_view = model.gate.forward_views(batch, [None, positive])
        assert np.allclose(anchor.numpy(), anchor_ref.numpy(), atol=1e-6)
        assert np.allclose(positive_view.numpy(), positive_ref.numpy(), atol=1e-6)

    @pytest.mark.parametrize("gate_unit,activation_unit", [(True, False), (False, True), (False, False)])
    def test_views_match_for_ablation_variants(self, train_set, gate_unit, activation_unit):
        config = ModelConfig.unit().with_gate_ablation(gate_unit, activation_unit)
        model = self._model(train_set, config)
        batch = train_set.batch_at(np.arange(8))
        positive = batch["behavior_mask"] * (np.random.default_rng(9).random(batch["behavior_mask"].shape) > 0.3)
        anchor, view = model.gate.forward_views(batch, [None, positive])
        assert np.allclose(anchor.numpy(), model.gate.forward(batch).numpy(), atol=1e-6)
        assert np.allclose(
            view.numpy(), model.gate.forward(batch, mask_override=positive).numpy(), atol=1e-6
        )

    def test_forward_with_gate_views_logits_match(self, train_set):
        model = self._model(train_set)
        batch = train_set.batch_at(np.arange(8))
        positive = batch["behavior_mask"].copy()
        logits_ref, gate_ref = model.forward_with_gate(batch)
        logits, gates = model.forward_with_gate_views(batch, [positive])
        assert len(gates) == 2
        assert np.allclose(logits.numpy(), logits_ref.numpy(), atol=1e-6)
        assert np.allclose(gates[0].numpy(), gate_ref.numpy(), atol=1e-6)


def _run_steps(train_set, fast, steps=6, augmentation="mask", seed=11):
    bank = SeedBank(seed)
    config = TrainConfig(
        epochs=1,
        batch_size=16,
        learning_rate=1e-3,
        contrastive=True,
        augmentation=augmentation,
        fast_path=fast,
    )
    model = build_model("aw_moe", ModelConfig.unit(), train_set.meta, bank.child("model"))
    optimizers = build_optimizers(model, config)
    strategy = build_strategy(config)
    cl_rng = bank.child("cl")
    arena = GradArena() if fast else None
    model.train()
    losses = []
    batches = iterate_batches(train_set, 16, rng=bank.child("shuffle"), drop_last=True)
    for i, batch in enumerate(batches):
        if i == steps:
            break
        metrics = train_step(model, batch, config, optimizers, strategy, cl_rng, arena)
        losses.append(metrics["loss"])
    return model, losses


class TestTrainStepParity:
    @pytest.mark.parametrize("augmentation", ["mask", "crop", "reorder"])
    def test_fast_matches_eager_losses_and_params(self, train_set, augmentation):
        eager_model, eager_losses = _run_steps(train_set, fast=False, augmentation=augmentation)
        fast_model, fast_losses = _run_steps(train_set, fast=True, augmentation=augmentation)
        assert np.allclose(eager_losses, fast_losses, rtol=1e-4, atol=1e-5)
        eager_params = dict(eager_model.named_parameters())
        for name, param in fast_model.named_parameters():
            assert np.allclose(
                eager_params[name].data, param.data, rtol=1e-3, atol=1e-5
            ), name

    def test_reference_mode_is_deterministic(self, train_set):
        """fast_path=False is the bitwise-reproducible reference trajectory."""
        _, first = _run_steps(train_set, fast=False)
        _, second = _run_steps(train_set, fast=False)
        assert first == second

    def test_fast_mode_is_deterministic(self, train_set):
        _, first = _run_steps(train_set, fast=True)
        _, second = _run_steps(train_set, fast=True)
        assert first == second

    def test_non_contrastive_parity(self, train_set):
        results = {}
        for fast in (False, True):
            bank = SeedBank(13)
            config = TrainConfig(epochs=1, batch_size=16, learning_rate=1e-3, fast_path=fast)
            model = build_model("aw_moe", ModelConfig.unit(), train_set.meta, bank.child("m"))
            optimizers = build_optimizers(model, config)
            strategy = build_strategy(config)
            arena = GradArena() if fast else None
            model.train()
            batch = train_set.batch_at(np.arange(16))
            losses = [
                train_step(model, batch, config, optimizers, strategy, None, arena)["loss"]
                for _ in range(4)
            ]
            results[fast] = losses
        assert np.allclose(results[False], results[True], rtol=1e-4, atol=1e-5)

    def test_sparse_gate_fast_path_keeps_top_k(self, train_set):
        """The sparse extension's anchor gate must stay top-K sparsified on
        the shared-trunk fast path (it both weights the experts and anchors
        the contrastive loss, exactly as in eager training)."""
        from repro.core.extensions import SparseGatedAWMoE

        model = SparseGatedAWMoE(
            ModelConfig.unit(), train_set.meta, np.random.default_rng(19), top_k=1
        )
        batch = train_set.batch_at(np.arange(8))
        positive = batch["behavior_mask"].copy()
        logits_ref, gate_ref = model.forward_with_gate(batch)
        logits, gates = model.forward_with_gate_views(batch, [positive])
        k = ModelConfig.unit().num_experts
        assert np.all((gates[0].numpy() == 0.0).sum(axis=1) == k - 1)
        assert np.allclose(gates[0].numpy(), gate_ref.numpy(), atol=1e-6)
        assert np.allclose(logits.numpy(), logits_ref.numpy(), atol=1e-6)
        # The positive view stays dense, matching eager gate_vector().
        assert np.allclose(
            gates[1].numpy(), model.gate_vector(batch, mask_override=positive).numpy(),
            atol=1e-6,
        )

    def test_baseline_without_gate_views_still_trains_fast(self, train_set):
        """Models lacking forward_with_gate_views run fast_path without the
        shared-trunk contrastive branch (packed experts + fused kernels only)."""
        bank = SeedBank(17)
        config = TrainConfig(epochs=1, batch_size=16, learning_rate=1e-3, fast_path=True)
        model = build_model("dnn", ModelConfig.unit(), train_set.meta, bank.child("m"))
        optimizers = build_optimizers(model, config)
        strategy = build_strategy(config)
        batch = train_set.batch_at(np.arange(16))
        metrics = train_step(model, batch, config, optimizers, strategy, None, GradArena())
        assert np.isfinite(metrics["loss"])
