"""Streaming metrics: property-tested quantile error bound and merge laws."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Counter, Gauge, MetricsRegistry, StreamingHistogram
from repro.serving import latency_percentile

# Values comfortably inside the covered range of the default layout
# (min_value=1e-4, 2048 buckets): the error bound only holds there.
values_strategy = st.lists(
    st.floats(min_value=1e-3, max_value=1e9, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)
percentile_strategy = st.floats(min_value=0.5, max_value=100.0)


class TestQuantileErrorBound:
    @settings(max_examples=200, deadline=None)
    @given(values=values_strategy, p=percentile_strategy)
    def test_relative_error_within_sqrt_growth(self, values, p):
        """For any sample set and percentile, the streaming estimate is
        within sqrt(growth) - 1 of the exact nearest-rank value."""
        hist = StreamingHistogram()
        hist.record_many(values)
        exact = latency_percentile(values, p)
        estimate = hist.quantile(p)
        assert abs(estimate - exact) <= hist.quantile_error_bound * exact + 1e-12

    def test_default_bound_is_under_two_percent(self):
        assert StreamingHistogram().quantile_error_bound < 0.02

    def test_acceptance_100k_latencies(self):
        """ISSUE acceptance: p50/p95/p99 within 2% of exact on 100k synthetic
        latencies at fixed memory."""
        rng = np.random.default_rng(7)
        latencies = rng.lognormal(mean=1.0, sigma=0.8, size=100_000) + 0.2
        hist = StreamingHistogram()
        hist.record_many(latencies)
        samples = latencies.tolist()
        for p in (50.0, 95.0, 99.0):
            exact = latency_percentile(samples, p)
            assert abs(hist.quantile(p) - exact) / exact <= 0.02
        assert hist.counts.nbytes == 2048 * 8  # memory independent of n

    def test_exact_stats_are_exact(self):
        hist = StreamingHistogram()
        hist.record_many([1.0, 2.0, 4.0])
        assert hist.count == 3
        assert hist.mean == pytest.approx(7.0 / 3.0)
        assert hist.min == 1.0
        assert hist.max == 4.0

    def test_empty_and_validation(self):
        hist = StreamingHistogram()
        assert hist.quantile(99) == 0.0
        assert hist.to_dict()["count"] == 0
        with pytest.raises(ValueError):
            hist.quantile(0)
        with pytest.raises(ValueError):
            hist.record(-1.0)
        with pytest.raises(ValueError):
            StreamingHistogram(growth=1.0)


class TestMerge:
    @settings(max_examples=100, deadline=None)
    @given(a=values_strategy, b=values_strategy, c=values_strategy)
    def test_merge_is_associative(self, a, b, c):
        def hist(values):
            h = StreamingHistogram()
            h.record_many(values)
            return h

        left = hist(a).merge(hist(b)).merge(hist(c))
        right = hist(a).merge(hist(b).merge(hist(c)))
        assert np.array_equal(left.counts, right.counts)
        assert (left.count, left.min, left.max) == (right.count, right.min, right.max)
        assert left.total == pytest.approx(right.total)
        for p in (50, 95, 99):
            assert left.quantile(p) == right.quantile(p)

    @settings(max_examples=100, deadline=None)
    @given(a=values_strategy, b=values_strategy)
    def test_merge_equals_pooled_recording(self, a, b):
        pooled = StreamingHistogram()
        pooled.record_many(a + b)
        sharded_a, sharded_b = StreamingHistogram(), StreamingHistogram()
        sharded_a.record_many(a)
        sharded_b.record_many(b)
        merged = sharded_a.merge(sharded_b)
        assert np.array_equal(merged.counts, pooled.counts)
        assert merged.count == pooled.count
        assert merged.min == pooled.min and merged.max == pooled.max

    def test_layout_mismatch_rejected(self):
        with pytest.raises(ValueError, match="bucket layouts"):
            StreamingHistogram().merge(StreamingHistogram(growth=1.1))

    def test_counter_and_gauge_merge(self):
        a, b = Counter("n"), Counter("n")
        a.inc(3)
        b.inc(4)
        assert a.merge(b).value == 7
        with pytest.raises(ValueError):
            a.inc(-1)
        lag_a, lag_b = Gauge("lag"), Gauge("lag")
        lag_a.set(2.0)
        lag_b.set(9.0)
        assert lag_a.merge(lag_b).value == 9.0  # worst shard wins


class TestRegistry:
    def test_get_or_create_and_type_conflicts(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_queries_total", "queries")
        assert registry.counter("repro_queries_total") is counter
        with pytest.raises(TypeError):
            registry.gauge("repro_queries_total")
        with pytest.raises(ValueError):
            registry.counter("bad name!")
        assert registry.get("missing") is None

    def test_histogram_conflicting_layout_kwargs_rejected(self):
        """Re-requesting an existing histogram with a different bucket layout
        must raise, never silently hand back the old layout."""
        registry = MetricsRegistry()
        hist = registry.histogram("latency_ms", "latency", min_value=1e-3, growth=1.05)
        # Identical kwargs: same object back.
        assert registry.histogram("latency_ms", min_value=1e-3, growth=1.05) is hist
        # No layout kwargs at all: same object back.
        assert registry.histogram("latency_ms") is hist
        with pytest.raises(ValueError, match="conflicting"):
            registry.histogram("latency_ms", growth=1.5)
        with pytest.raises(ValueError, match="conflicting"):
            registry.histogram("latency_ms", min_value=1e-2)
        with pytest.raises(ValueError, match="conflicting"):
            registry.histogram("latency_ms", num_buckets=16)
        with pytest.raises(TypeError):
            registry.histogram("latency_ms", not_a_layout_kwarg=3)

    def test_registry_merge_is_union(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("shared").inc(1)
        b.counter("shared").inc(2)
        a.gauge("only_a").set(5.0)
        b.histogram("only_b").record(1.0)
        merged = a.merge(b)
        assert merged.counter("shared").value == 3
        assert merged.gauge("only_a").value == 5.0
        assert merged.histogram("only_b").count == 1
        assert len(merged) == 3

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_queries_total", "total queries").inc(5)
        registry.gauge("repro_lag").set(2.5)
        hist = registry.histogram("repro_latency_ms", "latency")
        hist.record_many([1.0, 1.0, 8.0])
        text = registry.prometheus_text()
        assert "# HELP repro_queries_total total queries" in text
        assert "# TYPE repro_queries_total counter" in text
        assert "repro_queries_total 5" in text
        assert "# TYPE repro_lag gauge" in text
        assert "repro_lag 2.5" in text
        assert "# TYPE repro_latency_ms histogram" in text
        assert 'repro_latency_ms_bucket{le="+Inf"} 3' in text
        assert "repro_latency_ms_count 3" in text
        assert "repro_latency_ms_sum 10" in text
        assert text.endswith("\n")
        # Cumulative bucket counts are non-decreasing in bucket order.
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith('repro_latency_ms_bucket{le="')
        ]
        assert counts == sorted(counts)

    def test_to_json_round_trips_types(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").record(3.0)
        payload = registry.to_json()
        assert payload["c"] == {"type": "counter", "value": 2}
        assert payload["g"] == {"type": "gauge", "value": 1.5}
        assert payload["h"]["type"] == "histogram"
        assert payload["h"]["count"] == 1
        assert payload["h"]["mean"] == pytest.approx(3.0)


class TestBucketGeometry:
    def test_bucket_edges_grow_geometrically(self):
        hist = StreamingHistogram(min_value=1.0, growth=2.0, num_buckets=8)
        assert hist.bucket_upper_edge(0) == 1.0
        assert hist.bucket_upper_edge(3) == 8.0

    def test_overflow_saturates_last_bucket(self):
        hist = StreamingHistogram(min_value=1.0, growth=2.0, num_buckets=4)
        hist.record(1e12)
        assert hist.counts[-1] == 1
        # Clamped to the exactly tracked max, not the bucket midpoint.
        assert hist.quantile(99) == 1e12

    def test_midpoint_is_geometric(self):
        hist = StreamingHistogram(min_value=1.0, growth=4.0, num_buckets=8)
        hist.record(3.0)  # bucket 1 covers (1, 4]
        hist.min, hist.max = 0.0, math.inf  # defeat clamping for this check
        assert hist.quantile(50) == pytest.approx(2.0)  # sqrt(1 * 4)
