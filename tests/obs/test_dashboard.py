"""Dashboard rendering: every panel, escaping, and the written artifact."""

from repro.obs import (
    AlertManager,
    DriftMonitor,
    InMemoryExporter,
    MetricsRegistry,
    EventLog,
    ShadowRecallMonitor,
    SloTracker,
    Tracer,
    render_dashboard,
    write_dashboard,
)
from repro.serving import ManualClock


def _full_telemetry():
    registry = MetricsRegistry()
    registry.counter("queries_total", "queries").inc(100)
    registry.gauge("log_lag").set(2.0)
    registry.histogram("latency_ms", "latency").record_many([1.0, 2.0, 9.0])
    slo = SloTracker(latency_slo_ms=50.0)
    slo.record(5.0, now=0.0)
    events = EventLog()
    events.record("hot_swap", 1.0, version="v0002")
    drift = DriftMonitor(min_samples=1)
    drift.observe_many("ctr", [0.1] * 40)
    drift.freeze_reference()
    drift.observe_many("ctr", [0.9] * 40)
    alerts = AlertManager(["ctr-drift: drift_psi_ctr > 0.25 severity critical"], events=events)
    alerts.evaluate({"drift_psi_ctr": drift.psi("ctr")}, 2.0)
    shadow = ShadowRecallMonitor(rate=1.0, k=10)
    shadow.observe(0.9)
    clock = ManualClock()
    tracer = Tracer(sample_rate=1.0, exporter=InMemoryExporter(), clock=clock)
    trace = tracer.trace("refresh", cycle=0)
    with trace.span("serve"):
        clock.advance(0.001)
        with trace.span("rank"):
            clock.advance(0.001)
    trace.finish(promoted=True)
    return dict(
        summary={"shards": 2, "qps": 512.3},
        registry=registry,
        slo=slo,
        events=events,
        drift=drift,
        alerts=alerts,
        shadow=shadow,
        traces=list(tracer.finished),
    )


class TestRenderDashboard:
    def test_all_panels_render(self):
        html = render_dashboard(title="unit fleet", **_full_telemetry())
        assert html.startswith("<!DOCTYPE html>")
        assert "unit fleet" in html
        # One recognizable anchor per panel.
        assert "qps" in html and "512.3" in html  # summary
        assert "ctr-drift" in html and "FIRING" in html  # alerts
        assert "drift" in html  # drift panel with the feature row
        assert "Shadow-sampled live recall" in html  # shadow panel
        assert "latency_ms" in html and "queries_total" in html  # registry
        assert "hot_swap" in html and "alert_fired" in html  # event tail
        assert "refresh" in html and "serve" in html and "rank" in html  # trace tree

    def test_empty_dashboard_still_valid(self):
        html = render_dashboard(title="empty")
        assert html.startswith("<!DOCTYPE html>")
        assert "empty" in html

    def test_attribute_values_are_escaped(self):
        events = EventLog()
        events.record("hot_swap", 0.0, note="<script>alert(1)</script>")
        html = render_dashboard(events=events)
        assert "<script>alert(1)</script>" not in html
        assert "&lt;script&gt;" in html

    def test_drift_without_reference_shows_placeholder(self):
        drift = DriftMonitor()
        drift.observe("ctr", 0.1)
        html = render_dashboard(drift=drift)
        assert "no reference frozen yet" in html

    def test_self_contained_single_document(self):
        html = render_dashboard(**_full_telemetry())
        # No external fetches: inline style only, no script/src/link tags.
        assert "<link" not in html and "src=" not in html
        assert "<style>" in html


class TestWriteDashboard:
    def test_writes_the_rendered_document(self, tmp_path):
        path = tmp_path / "dash.html"
        returned = write_dashboard(str(path), title="written fleet", **_full_telemetry())
        assert returned == str(path)
        content = path.read_text()
        assert content.startswith("<!DOCTYPE html>")
        assert "written fleet" in content
