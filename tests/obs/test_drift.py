"""Drift monitors: PSI/KS correctness, reference lifecycle, merge laws."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    DriftMonitor,
    StreamingHistogram,
    ks_from_counts,
    ks_statistic,
    population_stability_index,
    psi_from_counts,
)

values_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=120,
)


class TestPsiFromCounts:
    def test_identical_distributions_score_exactly_zero(self):
        counts = np.array([5, 40, 30, 25, 0, 10], dtype=np.int64)
        assert psi_from_counts(counts, counts) == 0.0
        # Scale invariance: PSI compares proportions, not raw mass.
        assert psi_from_counts(counts, counts * 7) == 0.0

    def test_closed_form_two_bucket_shift(self):
        """Hand-computable pair: (50,50) vs (10,90).

        PSI = (0.5-0.1)*ln(0.5/0.1) + (0.5-0.9)*ln(0.5/0.9)
            = 0.4*ln(5) - 0.4*ln(5/9) = 0.8788898309344878.
        """
        psi = psi_from_counts([50, 50], [10, 90])
        assert psi == pytest.approx(0.8788898309344878, abs=1e-12)

    def test_symmetry(self):
        a, b = [50, 50], [10, 90]
        assert psi_from_counts(a, b) == pytest.approx(psi_from_counts(b, a))

    def test_empty_side_scores_zero(self):
        assert psi_from_counts([1, 2, 3], [0, 0, 0]) == 0.0
        assert psi_from_counts([0, 0], [0, 0]) == 0.0

    def test_disjoint_support_is_large_but_finite(self):
        psi = psi_from_counts([100, 0], [0, 100])
        assert np.isfinite(psi)
        assert psi > 10.0  # epsilon-clamped, far beyond the 0.25 alarm line

    def test_unpopulated_buckets_do_not_contribute(self):
        # Padding both sides with shared empty buckets must not change PSI.
        base = psi_from_counts([50, 50], [10, 90])
        padded = psi_from_counts([50, 50, 0, 0], [10, 90, 0, 0])
        assert padded == pytest.approx(base)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            psi_from_counts([1, 2], [1, 2, 3])


class TestKsFromCounts:
    def test_identical_is_zero_and_disjoint_is_one(self):
        counts = np.array([10, 20, 30], dtype=np.int64)
        assert ks_from_counts(counts, counts) == 0.0
        assert ks_from_counts([100, 0], [0, 100]) == pytest.approx(1.0)

    def test_known_cdf_gap(self):
        # CDFs: ref (0.5, 1.0) vs live (0.1, 1.0) -> max gap 0.4.
        assert ks_from_counts([50, 50], [10, 90]) == pytest.approx(0.4)


class TestHistogramScoring:
    def test_layout_mismatch_rejected(self):
        ref = StreamingHistogram(min_value=0.05, growth=1.35, num_buckets=32)
        live = StreamingHistogram(min_value=0.05, growth=1.5, num_buckets=32)
        with pytest.raises(ValueError, match="layout"):
            population_stability_index(ref, live)
        with pytest.raises(ValueError, match="layout"):
            ks_statistic(ref, live)

    def test_histogram_psi_matches_counts_psi(self):
        ref = StreamingHistogram(min_value=0.05, growth=1.35, num_buckets=32)
        live = StreamingHistogram(min_value=0.05, growth=1.35, num_buckets=32)
        rng = np.random.default_rng(0)
        ref.record_many(rng.uniform(0.0, 1.0, 500).tolist())
        live.record_many(rng.beta(2.0, 5.0, 500).tolist())
        assert population_stability_index(ref, live) == pytest.approx(
            psi_from_counts(ref.counts, live.counts)
        )
        assert ks_statistic(ref, live) == pytest.approx(
            ks_from_counts(ref.counts, live.counts)
        )


class TestMergeLaw:
    @settings(max_examples=100, deadline=None)
    @given(ref=values_strategy, a=values_strategy, b=values_strategy)
    def test_merge_then_score_equals_score_of_merged(self, ref, a, b):
        """Sharded scoring law: merging two workers' live sketches and scoring
        must equal scoring one sketch that saw all the traffic."""

        def monitor(live_values):
            m = DriftMonitor(min_samples=1)
            m.observe_many("f", ref)
            m.freeze_reference()
            m.observe_many("f", live_values)
            return m

        merged_monitors = monitor(a).merge(monitor(b))
        pooled = monitor(a + b)
        assert merged_monitors.psi("f") == pytest.approx(pooled.psi("f"))
        assert merged_monitors.ks("f") == pytest.approx(pooled.ks("f"))
        assert merged_monitors.live_samples("f") == pooled.live_samples("f")


class TestDriftMonitorLifecycle:
    def test_no_reference_means_no_scores(self):
        monitor = DriftMonitor(min_samples=1)
        monitor.observe("ctr", 0.3)
        assert not monitor.has_reference
        assert monitor.psi("ctr") == 0.0
        assert monitor.scores()["ctr"]["psi"] == 0.0
        assert monitor.scores()["ctr"]["reference_samples"] == 0

    def test_freeze_requires_live_observations(self):
        with pytest.raises(RuntimeError):
            DriftMonitor().freeze_reference()

    def test_freeze_promotes_live_window_to_reference(self):
        monitor = DriftMonitor(min_samples=5)
        rng = np.random.default_rng(1)
        monitor.observe_many("ctr", rng.uniform(0.0, 0.5, 300).tolist())
        monitor.freeze_reference()
        assert monitor.has_reference
        assert monitor.live_samples("ctr") == 0  # fresh live window
        # Same distribution again: PSI stays near the sampling-noise floor.
        monitor.observe_many("ctr", rng.uniform(0.0, 0.5, 300).tolist())
        assert monitor.psi("ctr") < 0.1
        # Shifted distribution: PSI crosses the conventional 0.25 alarm line.
        monitor.reset_live()
        monitor.observe_many("ctr", rng.uniform(0.4, 0.9, 300).tolist())
        assert monitor.psi("ctr") > 0.25

    def test_min_samples_gates_scoring(self):
        monitor = DriftMonitor(min_samples=20)
        monitor.observe_many("ctr", [0.1] * 30)
        monitor.freeze_reference()
        monitor.observe_many("ctr", [0.9] * 19)  # below the floor: no verdict
        assert monitor.psi("ctr") == 0.0
        assert monitor.scores()["ctr"]["psi"] == 0.0
        monitor.observe("ctr", 0.9)  # 20th sample crosses the floor
        assert monitor.psi("ctr") > 0.25
        assert monitor.scores()["ctr"]["psi"] > 0.25

    def test_reset_live_clears_only_live(self):
        monitor = DriftMonitor(min_samples=1)
        monitor.observe("ctr", 0.2)
        monitor.freeze_reference()
        monitor.observe("ctr", 0.9)
        monitor.reset_live()
        assert monitor.has_reference
        assert monitor.live_samples("ctr") == 0

    def test_negative_values_clamp_to_zero(self):
        monitor = DriftMonitor(min_samples=1)
        monitor.observe("gap", -0.5)  # sketches are non-negative by contract
        assert monitor.live_samples("gap") == 1

    def test_worst_picks_max_psi_feature(self):
        monitor = DriftMonitor(min_samples=1)
        monitor.observe_many("stable", [0.5] * 50)
        monitor.observe_many("moving", [0.1] * 50)
        monitor.freeze_reference()
        monitor.observe_many("stable", [0.5] * 50)
        monitor.observe_many("moving", [0.9] * 50)
        name, psi = monitor.worst()
        assert name == "moving"
        assert psi > 0.25

    def test_to_dict_summary(self):
        monitor = DriftMonitor(min_samples=1)
        monitor.observe_many("ctr", [0.1, 0.2])
        monitor.freeze_reference()
        summary = monitor.to_dict()
        assert summary["has_reference"] is True
        assert summary["freezes"] == 1
        assert summary["reference_samples"] == 2
        assert list(summary["features"]) == ["ctr"]
        assert summary["worst_feature"] == "ctr"


class TestWorkerView:
    def test_worker_views_share_reference_and_merge_back(self):
        leader = DriftMonitor(min_samples=1)
        leader.observe_many("ctr", [0.1] * 100)
        leader.freeze_reference()
        worker_a, worker_b = leader.worker_view(), leader.worker_view()
        worker_a.observe_many("ctr", [0.8] * 30)
        worker_b.observe_many("ctr", [0.8] * 20)
        merged = worker_a.merge(worker_b)
        assert merged.has_reference
        assert merged.live_samples("ctr") == 50
        pooled = leader.worker_view()
        pooled.observe_many("ctr", [0.8] * 50)
        assert merged.psi("ctr") == pytest.approx(pooled.psi("ctr"))

    def test_merge_rejects_layout_mismatch(self):
        a = DriftMonitor(num_buckets=32)
        b = DriftMonitor(num_buckets=16)
        a.observe("f", 0.1)
        b.observe("f", 0.1)
        with pytest.raises(ValueError):
            a.merge(b)
