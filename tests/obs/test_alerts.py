"""Alerting: rule parsing, hysteresis, event wiring, snapshot flattening."""

import pytest

from repro.obs import (
    AlertManager,
    AlertRule,
    DriftMonitor,
    EventLog,
    MetricsRegistry,
    SloTracker,
    telemetry_snapshot,
)


class TestRuleParsing:
    def test_minimal_rule(self):
        rule = AlertRule.parse("slo_burn_rate > 1.0")
        assert rule.name == "slo_burn_rate"  # unnamed rules take the metric name
        assert rule.metric == "slo_burn_rate"
        assert rule.op == ">"
        assert rule.threshold == 1.0
        assert (rule.for_count, rule.clear_count, rule.severity) == (1, 1, "warning")

    def test_full_rule(self):
        rule = AlertRule.parse("ctr-drift: drift_psi_ctr >= 0.25 for 2 clear 3 severity critical")
        assert rule.name == "ctr-drift"
        assert rule.metric == "drift_psi_ctr"
        assert rule.op == ">="
        assert rule.threshold == 0.25
        assert rule.for_count == 2
        assert rule.clear_count == 3
        assert rule.severity == "critical"

    def test_scientific_notation_and_less_than(self):
        rule = AlertRule.parse("recall-floor: retrieval_recall_at_k < 9.5e-1")
        assert rule.op == "<"
        assert rule.threshold == pytest.approx(0.95)

    def test_describe_round_trips(self):
        rule = AlertRule.parse("ctr-drift: drift_psi_ctr > 0.25 for 2 severity critical")
        assert AlertRule.parse(rule.describe()) == rule

    @pytest.mark.parametrize(
        "text",
        ["", "no-op-here", "metric !> 1.0", "metric > abc", "metric > 1.0 for zero"],
    )
    def test_unparseable_rules_rejected(self, text):
        with pytest.raises(ValueError, match="unparseable|expected"):
            AlertRule.parse(text)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            AlertRule("r", "m", ">", 1.0, for_count=0)
        with pytest.raises(ValueError):
            AlertRule("r", "m", "!", 1.0)


class TestOperators:
    @pytest.mark.parametrize(
        "op,value,expected",
        [(">", 1.1, True), (">", 1.0, False), (">=", 1.0, True),
         ("<", 0.9, True), ("<", 1.0, False), ("<=", 1.0, True)],
    )
    def test_breached(self, op, value, expected):
        assert AlertRule("r", "m", op, 1.0).breached(value) is expected


class TestHysteresis:
    def test_fires_only_after_for_count_consecutive_breaches(self):
        manager = AlertManager(["hot: t > 1.0 for 3"])
        assert manager.evaluate({"t": 2.0}, 0.0) == []
        assert manager.evaluate({"t": 2.0}, 1.0) == []
        assert not manager.is_firing("hot")
        (transition,) = manager.evaluate({"t": 2.0}, 2.0)
        assert transition.action == "fired"
        assert manager.firing() == ("hot",)

    def test_breach_streak_resets_on_a_clear_window(self):
        manager = AlertManager(["hot: t > 1.0 for 2"])
        manager.evaluate({"t": 2.0}, 0.0)
        manager.evaluate({"t": 0.5}, 1.0)  # streak broken
        assert manager.evaluate({"t": 2.0}, 2.0) == []  # back to streak 1
        assert not manager.is_firing("hot")

    def test_resolves_only_after_clear_count_consecutive_clears(self):
        manager = AlertManager(["hot: t > 1.0 clear 2"])
        manager.evaluate({"t": 2.0}, 0.0)
        assert manager.is_firing("hot")
        assert manager.evaluate({"t": 0.5}, 1.0) == []  # one clear: still firing
        (transition,) = manager.evaluate({"t": 0.5}, 2.0)
        assert transition.action == "resolved"
        assert manager.firing() == ()

    def test_refire_after_resolve(self):
        manager = AlertManager(["hot: t > 1.0"])
        manager.evaluate({"t": 2.0}, 0.0)
        manager.evaluate({"t": 0.5}, 1.0)
        manager.evaluate({"t": 2.0}, 2.0)
        (row,) = manager.status()
        assert row["fired_count"] == 2
        assert row["resolved_count"] == 1
        assert row["firing"] is True

    def test_missing_metric_is_healthy_and_clears(self):
        """No data is not an incident — and counts as a clear window."""
        manager = AlertManager(["hot: t > 1.0"])
        assert manager.evaluate({}, 0.0) == []
        manager.evaluate({"t": 2.0}, 1.0)
        assert manager.is_firing("hot")
        (transition,) = manager.evaluate({}, 2.0)
        assert transition.action == "resolved"
        assert transition.value is None


class TestManagerWiring:
    def test_duplicate_rule_names_rejected(self):
        manager = AlertManager(["a: t > 1.0"])
        with pytest.raises(ValueError, match="duplicate"):
            manager.add_rule("a: u > 2.0")

    def test_non_rule_rejected(self):
        with pytest.raises(TypeError):
            AlertManager([42])

    def test_transitions_record_typed_events(self):
        events = EventLog()
        manager = AlertManager(
            ["hot: t > 1.0 severity critical"], events=events
        )
        manager.evaluate({"t": 2.5}, 10.0)
        manager.evaluate({"t": 0.1}, 11.0)
        fired, resolved = events.events()
        assert fired.kind == "alert_fired"
        assert fired.attrs["rule"] == "hot"
        assert fired.attrs["value"] == 2.5
        assert fired.attrs["threshold"] == 1.0
        assert fired.attrs["severity"] == "critical"
        assert resolved.kind == "alert_resolved"
        assert events.counts() == {"alert_fired": 1, "alert_resolved": 1}

    def test_status_rows(self):
        manager = AlertManager(["a: t > 1.0", "b: u < 0.5"])
        manager.evaluate({"t": 3.0, "u": 0.7}, 0.0)
        rows = {row["rule"]: row for row in manager.status()}
        assert rows["a"]["firing"] is True
        assert rows["a"]["last_value"] == 3.0
        assert rows["b"]["firing"] is False


class TestTelemetrySnapshot:
    def test_flattens_every_source(self):
        registry = MetricsRegistry()
        registry.counter("queries_total").inc(7)
        registry.gauge("lag").set(3.0)
        registry.histogram("latency_ms").record_many([1.0, 2.0, 10.0])
        slo = SloTracker(latency_slo_ms=50.0)
        slo.record(5.0, now=0.0)
        drift = DriftMonitor(min_samples=1)
        drift.observe_many("ctr", [0.1] * 30)
        drift.freeze_reference()
        drift.observe_many("ctr", [0.9] * 30)
        snapshot = telemetry_snapshot(
            registry=registry, slo=slo, drift=drift, extra={"click_log_lag": 2.0}
        )
        assert snapshot["queries_total"] == 7.0
        assert snapshot["lag"] == 3.0
        assert snapshot["latency_ms_count"] == 3.0
        assert snapshot["latency_ms_p99"] >= snapshot["latency_ms_p50"]
        assert "slo_burn_rate" in snapshot and "slo_p99_ms" in snapshot
        assert snapshot["drift_psi_ctr"] > 0.25
        assert snapshot["drift_psi_worst"] == snapshot["drift_psi_ctr"]
        assert "drift_ks_ctr" in snapshot
        assert snapshot["click_log_lag"] == 2.0

    def test_empty_sources_give_empty_snapshot(self):
        assert telemetry_snapshot() == {}

    def test_extra_overrides_merge_last(self):
        registry = MetricsRegistry()
        registry.gauge("lag").set(1.0)
        snapshot = telemetry_snapshot(registry=registry, extra={"lag": 9.0})
        assert snapshot["lag"] == 9.0
