"""Control-plane event log: ring bounds, typed kinds, fleet merge."""

import pytest

from repro.obs import EVENT_KINDS, Event, EventLog


class TestRecord:
    def test_typed_kinds_only(self):
        log = EventLog()
        with pytest.raises(ValueError, match="unknown event kind"):
            log.record("model_sawp", 0.0)
        for kind in EVENT_KINDS:
            log.record(kind, 1.0)
        assert log.recorded == len(EVENT_KINDS)

    def test_event_payload(self):
        log = EventLog()
        event = log.record("hot_swap", 12.5, version="v3", shards=2)
        assert event == Event("hot_swap", 12.5, {"version": "v3", "shards": 2})
        assert event.to_dict() == {
            "kind": "hot_swap",
            "timestamp": 12.5,
            "attrs": {"version": "v3", "shards": 2},
        }

    def test_ring_evicts_oldest_but_counts_survive(self):
        log = EventLog(capacity=3)
        for i in range(8):
            log.record("hot_swap", float(i), n=i)
        assert len(log) == 3
        assert [event.attrs["n"] for event in log.events()] == [5, 6, 7]
        assert log.dropped == 5
        assert log.recorded == 8
        assert log.counts() == {"hot_swap": 8}  # eviction-proof

    def test_filter_and_tail(self):
        log = EventLog()
        log.record("hot_swap", 1.0)
        log.record("canary_verdict", 2.0, passed=True)
        log.record("hot_swap", 3.0)
        assert [event.timestamp for event in log.events("hot_swap")] == [1.0, 3.0]
        assert [event.timestamp for event in log.tail(2)] == [2.0, 3.0]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)


class TestMerge:
    def test_chronological_union(self):
        a, b = EventLog(), EventLog()
        a.record("hot_swap", 1.0)
        a.record("hot_swap", 5.0)
        b.record("canary_verdict", 3.0)
        merged = a.merge(b)
        assert [event.timestamp for event in merged.events()] == [1.0, 3.0, 5.0]
        assert merged.counts() == {"hot_swap": 2, "canary_verdict": 1}
        assert merged.recorded == 3

    def test_overflowing_merge_keeps_latest(self):
        a, b = EventLog(capacity=2), EventLog(capacity=2)
        for t in (1.0, 2.0):
            a.record("hot_swap", t)
        for t in (3.0, 4.0):
            b.record("hot_swap", t)
        merged = a.merge(b)
        assert merged.capacity == 2
        assert [event.timestamp for event in merged.events()] == [3.0, 4.0]
        assert merged.dropped == 2  # the two that fell off the union
        assert merged.counts()["hot_swap"] == 4
