"""SLO tracker: sliding-window quantiles, burn rate, window rotation."""

import pytest

from repro.obs import SloTracker


def make_tracker(**kwargs):
    defaults = dict(
        latency_slo_ms=10.0,
        availability_target=0.9,
        window_seconds=60.0,
        num_buckets=6,
    )
    defaults.update(kwargs)
    return SloTracker(**defaults)


class TestAccounting:
    def test_violations_and_burn_rate(self):
        # 0.875 and 1/8 are exact in binary floats, so "exactly on budget"
        # really is exactly 1.0.
        tracker = make_tracker(availability_target=0.875)
        for i in range(8):
            tracker.record(5.0 if i else 50.0, now=1.0)  # 1/8 over SLO
        assert tracker.window_requests() == 8
        assert tracker.window_violations() == 1
        assert tracker.violation_rate() == pytest.approx(0.125)
        assert tracker.error_budget_burn_rate() == 1.0
        assert tracker.healthy()  # exactly on budget

    def test_error_flag_spends_budget_regardless_of_latency(self):
        tracker = make_tracker()
        tracker.record(1.0, now=0.0, error=True)
        assert tracker.window_violations() == 1

    def test_burning_fleet_is_unhealthy(self):
        tracker = make_tracker(availability_target=0.999)
        for _ in range(10):
            tracker.record(99.0, now=0.0)
        assert tracker.error_budget_burn_rate() == pytest.approx(1000.0)
        assert not tracker.healthy()

    def test_empty_tracker_is_healthy(self):
        tracker = make_tracker()
        assert tracker.violation_rate() == 0.0
        assert tracker.p99() == 0.0
        assert tracker.healthy()


class TestSlidingWindow:
    def test_old_violations_age_out(self):
        """A burst at t=0 must vanish once the window slides past it."""
        tracker = make_tracker()  # 60 s window, 10 s sub-windows
        for _ in range(5):
            tracker.record(100.0, now=0.0)
        assert tracker.window_violations(now=0.0) == 5
        assert tracker.window_violations(now=59.0) == 5  # still inside
        tracker.record(1.0, now=70.1)  # rotation evicts the t=0 sub-window
        assert tracker.window_violations(now=70.1) == 0
        assert tracker.window_requests(now=70.1) == 1
        # Lifetime totals survive the slide.
        assert tracker.total_recorded == 6
        assert tracker.total_violations == 5

    def test_quantiles_cover_only_live_window(self):
        tracker = make_tracker()
        tracker.record(100.0, now=0.0)
        tracker.record(2.0, now=70.0)
        assert tracker.quantile(99, now=70.0) == pytest.approx(2.0, rel=0.02)

    def test_queries_default_to_latest_observed_time(self):
        tracker = make_tracker()
        tracker.record(100.0, now=0.0)
        tracker.record(2.0, now=70.0)
        # No explicit now: evaluated at the last record's clock.
        assert tracker.window_violations() == 0

    def test_p99_tracks_tail(self):
        tracker = make_tracker()
        for i in range(100):
            tracker.record(5.0 if i < 98 else 80.0, now=1.0)
        assert tracker.p99() == pytest.approx(80.0, rel=0.02)
        assert tracker.quantile(50) == pytest.approx(5.0, rel=0.02)


class TestStatus:
    def test_status_snapshot_is_json_ready(self):
        import json

        tracker = make_tracker()
        tracker.record(20.0, now=3.0)
        tracker.record(4.0, now=3.0)
        status = tracker.status()
        json.dumps(status)
        assert status["latency_slo_ms"] == 10.0
        assert status["window_requests"] == 2
        assert status["window_violations"] == 1
        assert status["violation_rate"] == pytest.approx(0.5)
        assert status["error_budget_burn_rate"] == pytest.approx(5.0)
        assert status["p99_ms"] == pytest.approx(20.0, rel=0.02)
        assert status["healthy"] is False
        assert status["total_recorded"] == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SloTracker(latency_slo_ms=0.0)
        with pytest.raises(ValueError):
            SloTracker(latency_slo_ms=1.0, availability_target=1.0)
        with pytest.raises(ValueError):
            SloTracker(latency_slo_ms=1.0, window_seconds=0.0)
        with pytest.raises(ValueError):
            SloTracker(latency_slo_ms=1.0, num_buckets=0)
