"""Tracer: head sampling, span nesting, JSONL export, null-object cost."""

import json

import pytest

from repro.obs import (
    NULL_SPAN,
    NULL_TRACE,
    NULL_TRACER,
    InMemoryExporter,
    JsonlTraceExporter,
    Tracer,
    kernel_span_hook,
)
from repro.serving import ManualClock


class TestSampling:
    def test_rate_one_samples_everything(self):
        tracer = Tracer(sample_rate=1.0)
        traces = [tracer.trace("q") for _ in range(20)]
        assert all(t.sampled for t in traces)
        assert tracer.stats()["sampled"] == 20

    def test_rate_zero_samples_nothing(self):
        tracer = Tracer(sample_rate=0.0)
        traces = [tracer.trace("q") for _ in range(20)]
        assert all(t is NULL_TRACE for t in traces)
        assert tracer.stats() == {
            "enabled": True,
            "sample_rate": 0.0,
            "started": 20,
            "sampled": 0,
            "exported": 0,
        }

    def test_partial_rate_is_deterministic_given_seed(self):
        def decisions(seed):
            tracer = Tracer(sample_rate=0.5, seed=seed)
            return [tracer.trace("q").sampled for _ in range(50)]

        assert decisions(3) == decisions(3)
        assert 0 < sum(decisions(3)) < 50

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError):
            Tracer(sample_rate=-0.1)


class TestSpanTree:
    def test_with_blocks_nest(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        trace = tracer.trace("q", user=7)
        with trace.span("outer"):
            clock.advance(0.001)
            with trace.span("inner", hit=True):
                clock.advance(0.002)
        trace.finish()
        outer, inner = trace.spans
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert inner.attrs == {"hit": True}
        assert inner.duration_ms == pytest.approx(2.0)
        assert outer.duration_ms == pytest.approx(3.0)

    def test_begin_keeps_span_open_across_calls(self):
        """The batcher's queue-wait pattern: begin at submit, end at flush."""
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        trace = tracer.trace("q")
        waiting = trace.begin("queue-wait")
        clock.advance(0.005)
        waiting.end()
        waiting.end()  # idempotent
        assert waiting.duration_ms == pytest.approx(5.0)

    def test_record_span_attaches_external_interval(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        trace = tracer.trace("q")
        parent = trace.begin("flush")
        shared = trace.record_span("gate-flush", 1.0, 1.25, parent=parent, sessions=3)
        parent.end()
        assert shared.parent_id == parent.span_id
        assert shared.duration_ms == pytest.approx(250.0)
        assert shared.attrs == {"sessions": 3}

    def test_finish_closes_open_spans_and_exports_once(self):
        exporter = InMemoryExporter()
        tracer = Tracer(exporter=exporter)
        trace = tracer.trace("q")
        trace.span("left-open")
        trace.finish(latency_ms=1.0)
        trace.finish()  # idempotent: one export
        assert len(exporter.records) == 1
        assert exporter.records[0]["attrs"]["latency_ms"] == 1.0
        assert trace.spans[0].end_time is not None

    def test_finished_ring_is_bounded(self):
        tracer = Tracer(keep_last=4)
        for i in range(10):
            tracer.trace(f"q{i}").finish()
        assert len(tracer.finished) == 4
        assert tracer.finished[-1]["name"] == "q9"


class TestJsonlExport:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        clock = ManualClock()
        with JsonlTraceExporter(str(path)) as exporter:
            tracer = Tracer(exporter=exporter, clock=clock)
            for i in range(3):
                trace = tracer.trace("q", i=i)
                with trace.span("stage"):
                    clock.advance(0.001)
                trace.finish()
            assert exporter.traces_written == 3
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["attrs"]["i"] for r in records] == [0, 1, 2]
        span = records[0]["spans"][0]
        assert span["name"] == "stage"
        assert span["parent"] is None
        assert span["duration_ms"] == pytest.approx(1.0)
        assert span["start_ms"] >= 0.0


class TestJsonlRotation:
    def _write_traces(self, exporter, n, payload="x" * 50):
        tracer = Tracer(exporter=exporter)
        for i in range(n):
            tracer.trace("q", i=i, pad=payload).finish()

    def test_rotates_when_size_cap_exceeded(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        with JsonlTraceExporter(str(path), max_bytes=300, keep=3) as exporter:
            self._write_traces(exporter, 10)
            assert exporter.rotations > 0
        rotated = sorted(p.name for p in tmp_path.glob("traces.jsonl*"))
        assert "traces.jsonl" in rotated
        assert "traces.jsonl.1" in rotated
        # Every surviving file is valid JSONL and no record was lost overall
        # beyond what rotation dropped off the tail.
        total = 0
        for name in rotated:
            for line in (tmp_path / name).read_text().strip().splitlines():
                record = json.loads(line)
                assert record["name"] == "q"
                total += 1
        assert total > 0

    def test_keep_bounds_rotated_files(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        with JsonlTraceExporter(str(path), max_bytes=150, keep=2) as exporter:
            self._write_traces(exporter, 30)
        files = sorted(p.name for p in tmp_path.glob("traces.jsonl*"))
        # Active file + at most `keep` rotated generations, never more.
        assert files == ["traces.jsonl", "traces.jsonl.1", "traces.jsonl.2"]

    def test_newest_records_stay_in_active_file(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        with JsonlTraceExporter(str(path), max_bytes=200, keep=5) as exporter:
            self._write_traces(exporter, 12)
        newest = [
            json.loads(line)["attrs"]["i"]
            for line in path.read_text().strip().splitlines()
        ]
        oldest_rotated = [
            json.loads(line)["attrs"]["i"]
            for line in (tmp_path / "traces.jsonl.1").read_text().strip().splitlines()
        ]
        assert max(newest) == 11
        assert max(oldest_rotated) < min(newest)

    def test_single_oversized_record_still_written_whole(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        with JsonlTraceExporter(str(path), max_bytes=64, keep=2) as exporter:
            tracer = Tracer(exporter=exporter)
            tracer.trace("q", blob="y" * 500).finish()
        (record,) = [json.loads(line) for line in path.read_text().strip().splitlines()]
        assert record["attrs"]["blob"] == "y" * 500

    def test_no_cap_never_rotates(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        with JsonlTraceExporter(str(path)) as exporter:
            self._write_traces(exporter, 50)
            assert exporter.rotations == 0
        assert list(tmp_path.glob("traces.jsonl.*")) == []

    def test_invalid_rotation_config_rejected(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with pytest.raises(ValueError):
            JsonlTraceExporter(path, max_bytes=0)
        with pytest.raises(ValueError):
            JsonlTraceExporter(path, max_bytes=100, keep=0)


class TestNullObjects:
    def test_null_trace_is_inert(self):
        assert NULL_TRACER.trace("anything", user=1) is NULL_TRACE
        assert NULL_TRACE.span("x") is NULL_SPAN
        assert NULL_TRACE.begin("x") is NULL_SPAN
        assert NULL_TRACE.record_span("x", 0.0, 1.0) is NULL_SPAN
        with NULL_TRACE.span("x") as span:
            span.set(a=1)
        NULL_TRACE.finish()
        assert not NULL_TRACE.sampled
        assert not NULL_TRACER.enabled

    def test_kernel_span_hook_skips_unsampled(self):
        assert kernel_span_hook(NULL_TRACE, NULL_SPAN) is None

    def test_kernel_span_hook_records_child(self):
        clock = ManualClock(start=10.0)
        tracer = Tracer(clock=clock)
        trace = tracer.trace("q")
        parent = trace.begin("rank")
        hook = kernel_span_hook(trace, parent)

        class Step:
            name, kind, flops = "experts", "experts", 128

        hook(Step, 0.004)
        parent.end()
        kernel = trace.spans[-1]
        assert kernel.name == "experts"
        assert kernel.parent_id == parent.span_id
        assert kernel.duration_ms == pytest.approx(4.0)
        assert kernel.attrs == {"kind": "experts", "flops": 128}
