"""PlanProfiler: per-kernel timing, FLOP accounting, report tables."""

import numpy as np
import pytest

from repro.core import ModelConfig, build_model
from repro.data.dataset import iterate_batches
from repro.infer import PlanProfiler, compile_model


@pytest.fixture(scope="module")
def batch(test_set):
    return next(iterate_batches(test_set, 32))


@pytest.fixture()
def compiled(test_set):
    model = build_model("aw_moe", ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
    model.eval()
    return compile_model(model)


class TestAttachment:
    def test_detached_plan_has_no_profiler(self, compiled):
        assert compiled.profiler is None
        with pytest.raises(RuntimeError, match="no profiler attached"):
            compiled.profile_report()
        with pytest.raises(RuntimeError, match="no profiler attached"):
            compiled.score_plan.profile_report()

    def test_attach_and_detach(self, compiled, batch):
        profiler = PlanProfiler()
        compiled.attach_profiler(profiler)
        assert compiled.gate_plan.profiler is profiler
        baseline = compiled.predict_proba(batch)
        assert profiler.total_seconds() > 0.0
        compiled.attach_profiler(None)
        assert compiled.profiler is None
        # Detached execution is unchanged and records nothing further.
        recorded = profiler.total_seconds()
        again = compiled.predict_proba(batch)
        assert np.array_equal(again, baseline)
        assert profiler.total_seconds() == recorded

    def test_profiled_scores_match_unprofiled(self, compiled, batch):
        baseline = compiled.predict_proba(batch)
        compiled.attach_profiler(PlanProfiler())
        assert np.array_equal(compiled.predict_proba(batch), baseline)


class TestAccounting:
    def test_calls_and_shares(self, compiled, batch):
        profiler = PlanProfiler()
        compiled.attach_profiler(profiler)
        runs = 3
        for _ in range(runs):
            compiled.predict_proba(batch)
        assert set(profiler.plans()) == {"gate", "score"}
        report = profiler.report()
        assert all(row["calls"] == runs for row in report)
        assert all(row["total_ms"] >= 0.0 for row in report)
        # Shares sum to 1 per plan, even in the combined report.
        for plan in ("gate", "score"):
            assert sum(profiler.shares(plan).values()) == pytest.approx(1.0)
        step_names = {row["step"] for row in report if row["plan"] == "score"}
        assert "experts" in step_names and "mix" in step_names

    def test_gemm_steps_carry_flops(self, compiled, batch):
        profiler = PlanProfiler()
        compiled.attach_profiler(profiler)
        compiled.predict_proba(batch)
        by_step = {(row["plan"], row["step"]): row for row in profiler.report()}
        # The packed expert GEMM and the gate MLPs are cost-model priced...
        assert by_step[("score", "experts")]["mflops"] > 0.0
        assert by_step[("score", "experts")]["rows"] == 32
        # ...while gathers/concats are free in the FLOP model.
        assert by_step[("score", "input.behavior_repr")]["mflops"] == 0.0

    def test_reset_clears_stats(self, compiled, batch):
        profiler = PlanProfiler()
        compiled.attach_profiler(profiler)
        compiled.predict_proba(batch)
        profiler.reset()
        assert profiler.report() == []
        assert profiler.total_seconds() == 0.0


class TestReports:
    def test_empty_report_message(self):
        assert PlanProfiler().report_table() == "PlanProfiler: no steps recorded"

    def test_combined_table_prefixes_plan_names(self, compiled, batch):
        profiler = PlanProfiler()
        compiled.attach_profiler(profiler)
        compiled.predict_proba(batch)
        table = compiled.profile_report()
        assert "AWMoE kernel profile" in table
        assert "score.experts" in table
        assert "gate." in table
        assert "% plan" in table and "MFLOP" in table

    def test_single_plan_table_drops_prefix(self, compiled, batch):
        profiler = PlanProfiler()
        compiled.attach_profiler(profiler)
        compiled.predict_proba(batch)
        table = compiled.score_plan.profile_report()
        assert "plan 'score' kernel profile" in table
        assert "score.experts" not in table  # bare step names within one plan
        assert "experts" in table

    def test_report_rows_are_json_ready(self, compiled, batch):
        import json

        profiler = PlanProfiler()
        compiled.attach_profiler(profiler)
        compiled.predict_proba(batch)
        json.dumps(profiler.report())
