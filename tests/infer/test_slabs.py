"""Shared-memory snapshot slabs: publish/attach roundtrip, corruption
detection, and the startup orphan sweep."""

import os

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.infer import (
    SlabFormatError,
    SnapshotSlab,
    TornSlabError,
    shared_memory_available,
    sweep_orphan_slabs,
)
from repro.infer.slabs import SLAB_PREFIX
from repro.obs import EventLog

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="POSIX shared memory unavailable"
)


def _publish(payload, **kwargs):
    slab = SnapshotSlab.publish(payload, **kwargs)
    return slab


class TestRoundtrip:
    def test_payload_roundtrips_with_zero_copy_arrays(self):
        rng = np.random.default_rng(3)
        payload = {
            "weights": rng.standard_normal((17, 5)).astype(np.float32),
            "ids": np.arange(40, dtype=np.int64),
            "meta": {"version": "v3", "count": 7},
            "empty": np.zeros((0, 4), dtype=np.float64),
        }
        slab = _publish(payload)
        try:
            reader = SnapshotSlab.attach(slab.name)
            try:
                np.testing.assert_array_equal(
                    reader.payload["weights"], payload["weights"]
                )
                np.testing.assert_array_equal(reader.payload["ids"], payload["ids"])
                assert reader.payload["meta"] == payload["meta"]
                assert reader.payload["empty"].shape == (0, 4)
                # Arrays are views over the mapped segment, not copies.
                assert not reader.payload["weights"].flags.owndata
            finally:
                reader.payload = None
                reader.close()
        finally:
            slab.destroy()

    def test_reader_views_are_read_only(self):
        slab = _publish({"a": np.ones(8)})
        try:
            reader = SnapshotSlab.attach(slab.name)
            try:
                assert not reader.payload["a"].flags.writeable
                with pytest.raises(ValueError):
                    reader.payload["a"][0] = 2.0
            finally:
                reader.payload = None
                reader.close()
        finally:
            slab.destroy()

    def test_duplicate_arrays_are_stored_once_and_share_memory(self):
        shared = np.arange(1000, dtype=np.float64)
        slab = _publish({"a": shared, "same": shared, "other": shared + 1})
        try:
            # Byte-level dedup: two references, one copy in the region.
            assert slab.array_bytes < 3 * shared.nbytes
            reader = SnapshotSlab.attach(slab.name)
            try:
                # Reconstructed views are distinct objects over one buffer.
                assert np.shares_memory(reader.payload["a"], reader.payload["same"])
                assert not np.shares_memory(
                    reader.payload["a"], reader.payload["other"]
                )
            finally:
                reader.payload = None
                reader.close()
        finally:
            slab.destroy()

    def test_describe_accounts_for_every_byte(self):
        slab = _publish({"w": np.zeros((32, 8), dtype=np.float32)})
        try:
            stats = slab.describe()
            assert stats["nbytes"] >= stats["pickle_bytes"] + stats["array_bytes"]
            assert stats["array_bytes"] >= 32 * 8 * 4
        finally:
            slab.destroy()

    def test_exists_tracks_lifecycle(self):
        slab = _publish({"x": 1})
        name = slab.name
        assert SnapshotSlab.exists(name)
        slab.destroy()
        assert not SnapshotSlab.exists(name)


class TestCorruptionDetection:
    def test_attach_unknown_name_raises_file_not_found(self):
        with pytest.raises(FileNotFoundError):
            SnapshotSlab.attach(f"{SLAB_PREFIX}_0_999999")

    def test_torn_publish_raises_and_leaves_uncommitted_segment(self):
        plan = FaultPlan(
            seed=0, specs=(FaultSpec("slab.publish", "torn_write", times=1),)
        )
        injector = FaultInjector(plan)
        with pytest.raises(TornSlabError) as excinfo:
            SnapshotSlab.publish({"w": np.ones(64)}, injector=injector)
        torn = excinfo.value.slab
        try:
            # The header never committed, so a reader rejects the segment
            # (this is the no-mixed-generations guarantee: attach sees a
            # complete payload or an error, nothing in between).
            with pytest.raises(SlabFormatError):
                SnapshotSlab.attach(torn.name)
            assert SnapshotSlab.exists(torn.name)
        finally:
            torn.destroy()
        assert not SnapshotSlab.exists(torn.name)

    def test_flipped_body_byte_fails_crc(self):
        slab = _publish({"w": np.arange(128, dtype=np.int64)})
        try:
            buf = slab._segment.buf
            buf[slab.nbytes - 1] ^= 0xFF
            with pytest.raises(SlabFormatError, match="CRC"):
                SnapshotSlab.attach(slab.name)
        finally:
            slab.destroy()


class TestOrphanSweep:
    def test_sweeps_own_dead_segments_and_records_events(self):
        slab = _publish({"x": np.ones(4)})
        name = slab.name
        slab.close()  # handle gone, name still linked: an orphan-to-be
        events = EventLog()
        removed = sweep_orphan_slabs(events=events, clock=lambda: 1.5)
        assert name in removed
        assert not SnapshotSlab.exists(name)
        recovered = events.events("state_recovered")
        assert any(e.attrs["segment"] == name for e in recovered)
        assert all(e.attrs["source"] == "orphan_sweep" for e in recovered)

    def test_excluded_segments_survive_the_sweep(self):
        slab = _publish({"x": 1})
        try:
            removed = sweep_orphan_slabs(exclude=(slab.name,))
            assert slab.name not in removed
            assert SnapshotSlab.exists(slab.name)
        finally:
            slab.destroy()

    def test_other_live_processes_segments_are_left_alone(self):
        # Fake a segment owned by a live foreign pid (pid 1 is always up).
        path = f"/dev/shm/{SLAB_PREFIX}_1_0"
        with open(path, "wb") as fh:
            fh.write(b"\0" * 64)
        try:
            removed = sweep_orphan_slabs()
            assert f"{SLAB_PREFIX}_1_0" not in removed
            assert os.path.exists(path)
        finally:
            os.unlink(path)

    def test_dead_pid_segment_is_reclaimed(self):
        # A pid far beyond pid_max cannot be running.
        name = f"{SLAB_PREFIX}_99999999_7"
        path = f"/dev/shm/{name}"
        with open(path, "wb") as fh:
            fh.write(b"\0" * 64)
        removed = sweep_orphan_slabs()
        assert name in removed
        assert not os.path.exists(path)
