"""Compiled-vs-eager parity: the compiler's correctness contract.

* **float64 mode** replays the exact eager op order, so compiled scores are
  **bitwise equal** to a float64 eager twin of the model;
* **float32 fused mode** may reassociate float arithmetic (packed expert
  GEMM, uniform-session gate dedup) and must stay within 1e-4 relative of
  the eager float32 forward.

Both bars hold for every model the registry can promote: AW-MoE (search and
reco mode, all Table VI gate ablations), with and without ``gate_override``,
the sparse-gate extension — and across hot-swap boundaries.
"""

import numpy as np
import pytest

from repro.core import ModelConfig, build_model
from repro.core.extensions.sparse_gate import SparseGatedAWMoE
from repro.data import WorldConfig
from repro.data.amazon import make_amazon_datasets
from repro.data.dataset import iterate_batches
from repro.infer import CompiledModel, compile_model, float64_twin
from repro.serving import ManualClock, ShardedCluster

RTOL_F32 = 1e-4


def _rel_err(a, b):
    return np.max(np.abs(a - b) / np.maximum(np.abs(b), 1e-8))


@pytest.fixture(scope="module")
def batch(test_set):
    return next(iterate_batches(test_set, 64))


def _model_variants(meta):
    """Every promotable architecture: full AW-MoE, the Table VI gate
    ablations, and the sparse top-K extension."""
    variants = {}
    variants["aw_moe"] = build_model(
        "aw_moe", ModelConfig.unit(), meta, np.random.default_rng(0)
    )
    for gu, au in [(False, False), (True, False), (False, True)]:
        config = ModelConfig.unit().with_gate_ablation(gu, au)
        variants[f"ablation_gu{int(gu)}_au{int(au)}"] = build_model(
            "aw_moe", config, meta, np.random.default_rng(1)
        )
    variants["sparse_top2"] = SparseGatedAWMoE(
        ModelConfig.unit(), meta, np.random.default_rng(2), top_k=2
    )
    return variants


class TestFloat64Bitwise:
    """Parity mode must reproduce a float64 eager forward bit for bit."""

    @pytest.mark.parametrize(
        "name", ["aw_moe", "ablation_gu0_au0", "ablation_gu1_au0", "ablation_gu0_au1", "sparse_top2"]
    )
    def test_scores_bitwise(self, test_set, batch, name):
        model = _model_variants(test_set.meta)[name]
        model.eval()
        compiled = compile_model(model, dtype=np.float64)
        twin = float64_twin(model)
        twin.eval()
        assert np.array_equal(compiled.predict_proba(batch), twin.predict_proba(batch))
        assert np.array_equal(compiled.predict_logits(batch), twin.predict_logits(batch))

    @pytest.mark.parametrize("name", ["aw_moe", "sparse_top2"])
    def test_serving_gate_bitwise(self, test_set, batch, name):
        model = _model_variants(test_set.meta)[name]
        model.eval()
        compiled = compile_model(model, dtype=np.float64)
        twin = float64_twin(model)
        twin.eval()
        assert np.array_equal(compiled.serving_gate(batch), twin.serving_gate(batch))

    @pytest.mark.parametrize("name", ["aw_moe", "sparse_top2"])
    def test_gate_override_bitwise(self, test_set, batch, name):
        """Cached float32 session gates flow through both paths identically."""
        model = _model_variants(test_set.meta)[name]
        model.eval()
        override = model.serving_gate(batch)  # float32, as the cache stores it
        compiled = compile_model(model, dtype=np.float64)
        twin = float64_twin(model)
        twin.eval()
        assert np.array_equal(
            compiled.predict_proba(batch, gate_override=override),
            twin.predict_proba(batch, gate_override=override),
        )

    def test_reco_mode_bitwise(self):
        """Recommendation mode: the gate keys on the target item, the plan
        still compiles (candidate-dependent gate, no session caching)."""
        _, train, test = make_amazon_datasets(WorldConfig.unit(), seed=3)
        rbatch = test.batch_at(np.arange(min(32, len(test))))
        model = build_model(
            "aw_moe", ModelConfig.unit(task="reco"), train.meta, np.random.default_rng(5)
        )
        model.eval()
        compiled = compile_model(model, dtype=np.float64)
        assert not compiled.gate_is_candidate_independent
        twin = float64_twin(model)
        twin.eval()
        assert np.array_equal(compiled.predict_proba(rbatch), twin.predict_proba(rbatch))


class TestFloat32Tolerance:
    """Fused float32 mode: within 1e-4 relative of the eager float32 path."""

    @pytest.mark.parametrize(
        "name", ["aw_moe", "ablation_gu0_au0", "ablation_gu1_au0", "ablation_gu0_au1", "sparse_top2"]
    )
    def test_scores_close(self, test_set, batch, name):
        model = _model_variants(test_set.meta)[name]
        model.eval()
        compiled = compile_model(model)
        assert isinstance(compiled, CompiledModel)
        assert _rel_err(compiled.predict_proba(batch), model.predict_proba(batch)) < RTOL_F32

    @pytest.mark.parametrize("name", ["aw_moe", "sparse_top2"])
    def test_gate_and_override_close(self, test_set, batch, name):
        model = _model_variants(test_set.meta)[name]
        model.eval()
        compiled = compile_model(model)
        assert _rel_err(compiled.serving_gate(batch), model.serving_gate(batch)) < RTOL_F32
        override = model.serving_gate(batch)
        assert (
            _rel_err(
                compiled.predict_proba(batch, gate_override=override),
                model.predict_proba(batch, gate_override=override),
            )
            < RTOL_F32
        )

    def test_uniform_session_dedup_matches_per_row_gate(self, unit_world, test_set):
        """A single-query candidate batch (tiled session rows) takes the
        dedup fast path; scores must match the per-row gate computation."""
        from repro.data.features import assemble_candidate_batch

        model = build_model(
            "aw_moe", ModelConfig.unit(), test_set.meta, np.random.default_rng(0)
        )
        model.eval()
        compiled = compile_model(model)
        candidates = np.flatnonzero(unit_world.item_category == 1)[:8]
        qbatch = assemble_candidate_batch(unit_world, 3, 1, candidates)
        fast = compiled.predict_proba(qbatch)
        compiled.uniform_session_dedup = False
        slow = compiled.predict_proba(qbatch)
        assert _rel_err(fast, slow) < RTOL_F32
        assert _rel_err(fast, model.predict_proba(qbatch)) < RTOL_F32


class TestHotSwapBoundary:
    """Parity must survive recompilation: after a fleet hot swap every shard
    scores with the new model's plan, never a stale one."""

    def test_cluster_scores_track_swapped_model(self, unit_world, make_model):
        model_a = make_model(trained=True)
        model_b = make_model(trained=False, init_seed=99)
        clock = ManualClock()
        cluster = ShardedCluster(
            unit_world, model_a, num_shards=2, seed=0, max_batch_size=4,
            flush_deadline_ms=5.0, cache_capacity=64, clock=clock,
        )
        for worker in cluster.workers:
            worker.engine.set_model(model_a, "v1")
            assert worker.engine.is_compiled

        rng = np.random.default_rng(7)
        events = [(int(rng.integers(0, 150)), int(rng.integers(0, 8))) for _ in range(24)]
        pre = []
        for user, category in events[:12]:
            pre.extend(cluster.submit(user, category))
        pre.extend(cluster.swap_model(model_b, "v2"))
        assert pre and all(r.model_version == "v1" for r in pre)
        post = []
        for user, category in events[12:]:
            post.extend(cluster.submit(user, category))
        post.extend(cluster.flush())
        assert post and all(r.model_version == "v2" for r in post)

        # Every shard's plan now reproduces model_b, not model_a.
        worker = cluster.workers[0]
        candidates = worker.engine.retrieve(2)
        batch = worker.engine.build_batch(5, 2, candidates)
        compiled_scores = worker.engine.score_candidates(batch)
        model_b.eval()
        model_a.eval()
        assert _rel_err(compiled_scores, model_b.predict_proba(batch)) < RTOL_F32
        eager_a = model_a.predict_proba(batch)
        assert not np.allclose(compiled_scores, eager_a, rtol=1e-3)

    def test_swap_recompiles_plan_object(self, unit_world, make_model):
        cluster = ShardedCluster(
            unit_world, make_model(trained=True), num_shards=1, seed=0, clock=ManualClock()
        )
        worker = cluster.workers[0]
        old_plan = worker.engine.compiled_model
        cluster.swap_model(make_model(trained=False, init_seed=41), "v2")
        assert worker.engine.compiled_model is not old_plan
        assert worker.engine.model_version == "v2"
