"""Plan mechanics: arena reuse, gate-subgraph split, fallback, API contracts."""

import numpy as np
import pytest

from repro.core import ModelConfig, build_model
from repro.data.dataset import iterate_batches
from repro.infer import CompileError, compile_model
from repro.nn import Tensor, no_grad
from repro.serving import SearchEngine


@pytest.fixture(scope="module")
def model(test_set):
    m = build_model("aw_moe", ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
    m.eval()
    return m


@pytest.fixture(scope="module")
def batch(test_set):
    return next(iterate_batches(test_set, 32))


class TestBufferArena:
    def test_zero_allocations_after_warmup(self, model, batch):
        """One warmup call populates the arena; every later same-shape call
        leases existing buffers only (the zero-per-call-allocation claim)."""
        compiled = compile_model(model)
        compiled.predict_proba(batch)
        score_arena = compiled.score_plan.arena
        gate_arena = compiled.gate_plan.arena
        buffers_before = (score_arena.num_buffers, gate_arena.num_buffers)
        misses_before = (score_arena.misses, gate_arena.misses)
        for _ in range(5):
            compiled.predict_proba(batch)
        assert (score_arena.num_buffers, gate_arena.num_buffers) == buffers_before
        assert (score_arena.misses, gate_arena.misses) == misses_before
        assert score_arena.hits > 0 and gate_arena.hits > 0

    def test_buffers_are_reused_identically(self, model, batch):
        """copy=False hands back the very same output buffer every call."""
        compiled = compile_model(model)
        first = compiled.predict_logits(batch, copy=False)
        second = compiled.predict_logits(batch, copy=False)
        assert first is second

    def test_new_shape_extends_arena_once(self, model, test_set):
        compiled = compile_model(model)
        small = next(iterate_batches(test_set, 8))
        large = next(iterate_batches(test_set, 16))
        compiled.predict_proba(small)
        count_small = compiled.score_plan.arena.num_buffers
        compiled.predict_proba(large)
        count_both = compiled.score_plan.arena.num_buffers
        assert count_both > count_small
        compiled.predict_proba(small)
        compiled.predict_proba(large)
        assert compiled.score_plan.arena.num_buffers == count_both

    def test_arena_reports_working_set(self, model, batch):
        compiled = compile_model(model)
        compiled.predict_proba(batch)
        stats = compiled.stats()
        assert stats["score"]["arena_bytes"] > 0
        assert stats["gate"]["arena_buffers"] > 0
        assert stats["score"]["calls"] >= 1


class TestPlanStructure:
    def test_flat_fused_program(self, model):
        """The plan is a flat topologically ordered kernel list — embeds
        before MLPs before pooling before experts before the mix."""
        compiled = compile_model(model)
        kinds = [step.kind for step in compiled.score_plan.steps]
        assert kinds.index("embed") < kinds.index("mlp")
        assert kinds.index("experts") < kinds.index("mix")
        assert compiled.score_plan.steps[-1].kind == "mix"
        names = [step.name for step in compiled.score_plan.steps]
        assert "input.v_imp" in names and "experts" in names

    def test_gate_subgraph_is_candidate_independent(self, model):
        """Search mode: the split-out gate plan never reads the candidate,
        which is what makes per-session caching sound (§III-F1)."""
        compiled = compile_model(model)
        assert compiled.gate_is_candidate_independent
        for key in compiled.gate_plan.inputs:
            assert not key.startswith("target_")
        assert "query" in compiled.gate_plan.inputs

    def test_missing_input_raises(self, model, batch):
        compiled = compile_model(model)
        broken = {k: v for k, v in batch.items() if k != "query"}
        with pytest.raises(KeyError, match="query"):
            compiled.gate_plan.run(broken)

    def test_unsupported_dtype_rejected(self, model):
        with pytest.raises(CompileError):
            compile_model(model, dtype=np.float16)


class TestFallback:
    def test_unregistered_model_raises(self, test_set):
        dnn = build_model("dnn", ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
        with pytest.raises(CompileError):
            compile_model(dnn)

    def test_engine_falls_back_to_eager(self, unit_world, test_set):
        """Baselines with no compiler still serve — eagerly."""
        dnn = build_model("dnn", ModelConfig.unit(), test_set.meta, np.random.default_rng(0))
        engine = SearchEngine(unit_world, dnn, np.random.default_rng(1))
        assert not engine.is_compiled
        result = engine.search(user=3, query_category=2)
        assert np.all(np.diff(result.scores) <= 0)

    def test_engine_compiles_awmoe_by_default(self, unit_world, model):
        engine = SearchEngine(unit_world, model, np.random.default_rng(1))
        assert engine.is_compiled
        result = engine.search(user=3, query_category=2)
        assert result.items.size == result.scores.size

    def test_compile_false_forces_eager(self, unit_world, model):
        engine = SearchEngine(unit_world, model, np.random.default_rng(1), compile=False)
        assert not engine.is_compiled


class TestApiContracts:
    def test_default_copy_survives_next_call(self, model, batch):
        compiled = compile_model(model)
        first = compiled.predict_proba(batch)
        snapshot = first.copy()
        compiled.predict_proba(batch)  # would overwrite a borrowed buffer
        assert np.array_equal(first, snapshot)

    def test_serving_gate_returns_owned_copy(self, model, batch):
        """Cached gate vectors must survive arbitrarily many later calls."""
        compiled = compile_model(model)
        gate = compiled.serving_gate(batch)
        snapshot = gate.copy()
        compiled.serving_gate(batch)
        compiled.predict_proba(batch)
        assert np.array_equal(gate, snapshot)

    def test_engine_serving_gate_matches_model(self, unit_world, model, batch):
        engine = SearchEngine(unit_world, model, np.random.default_rng(1))
        compiled_gate = engine.serving_gate(batch)
        eager_gate = model.serving_gate(batch)
        assert np.allclose(compiled_gate, eager_gate, rtol=1e-4, atol=1e-6)

    def test_packed_weights_are_snapshots(self, model, batch):
        """Mutating the source model after compile must not leak into the
        plan — hot swap relies on the old plan serving unchanged weights."""
        compiled = compile_model(model)
        before = compiled.predict_proba(batch)
        param = model.parameters()[0]
        original = param.data.copy()
        try:
            param.data[...] += 1.0
            after = compiled.predict_proba(batch)
        finally:
            param.data[...] = original
        assert np.array_equal(before, after)


class TestTensorFastPath:
    """The eager-side satellite: no graph bookkeeping under no_grad."""

    def test_detach_numpy_is_zero_copy_and_graphless(self):
        t = Tensor(np.arange(6.0, dtype=np.float32).reshape(2, 3), requires_grad=True)
        out = (t * 2.0).relu()
        raw = out.detach_numpy()
        assert raw is out.data  # documented: no copy
        assert isinstance(raw, np.ndarray)

    def test_no_grad_ops_build_no_graph(self):
        t = Tensor(np.ones((4, 3), dtype=np.float32), requires_grad=True)
        w = Tensor(np.ones((3, 2), dtype=np.float32), requires_grad=True)
        with no_grad():
            out = (t.matmul(w) + 1.0).relu().sum()
        assert out._backward is None
        assert out._parents == ()
        assert not out.requires_grad

    def test_grad_path_unchanged(self):
        t = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        (t * 3.0).sum().backward()
        assert np.allclose(t.grad, 3.0)
