"""Shared fixtures: tiny deterministic worlds and datasets."""

import numpy as np
import pytest

from repro.core import ModelConfig, TrainConfig
from repro.data import WorldConfig, make_search_datasets
from repro.utils import SeedBank


@pytest.fixture(scope="session")
def unit_world_and_data():
    """One tiny world with train/test datasets, shared across the session."""
    return make_search_datasets(WorldConfig.unit(), 400, 150, seed=2)


@pytest.fixture(scope="session")
def unit_world(unit_world_and_data):
    return unit_world_and_data[0]


@pytest.fixture(scope="session")
def train_set(unit_world_and_data):
    return unit_world_and_data[1]


@pytest.fixture(scope="session")
def test_set(unit_world_and_data):
    return unit_world_and_data[2]


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


@pytest.fixture()
def bank():
    return SeedBank(7)


@pytest.fixture()
def unit_model_config():
    return ModelConfig.unit()


@pytest.fixture()
def fast_train_config():
    return TrainConfig(epochs=1, batch_size=64, learning_rate=3e-3)
