"""IVF-flat item index: exactness, recall monotonicity, determinism."""

import numpy as np
import pytest

from repro.retrieval import ItemIndex, kmeans


@pytest.fixture()
def corpus():
    rng = np.random.default_rng(7)
    num_items, dim, num_categories = 400, 8, 4
    vectors = rng.normal(size=(num_items, dim)).astype(np.float32)
    categories = rng.integers(0, num_categories, size=num_items)
    return vectors, categories, num_categories


def _brute_force(vectors, categories, query, category, topn):
    members = np.flatnonzero(categories == category)
    scores = vectors[members] @ query
    if topn >= members.size:
        return np.sort(members)
    keep = np.argpartition(-scores, topn - 1)[:topn]
    return np.sort(members[keep])


class TestKMeans:
    def test_deterministic_given_rng_seed(self):
        rng = np.random.default_rng(3)
        points = rng.normal(size=(100, 4)).astype(np.float32)
        c1, a1 = kmeans(points, 5, np.random.default_rng(9))
        c2, a2 = kmeans(points, 5, np.random.default_rng(9))
        np.testing.assert_array_equal(c1, c2)
        np.testing.assert_array_equal(a1, a2)

    def test_no_empty_clusters(self):
        rng = np.random.default_rng(3)
        points = rng.normal(size=(50, 3)).astype(np.float32)
        _, assignments = kmeans(points, 8, np.random.default_rng(0))
        assert set(np.unique(assignments)) == set(range(8))

    def test_clusters_capped_at_points(self):
        points = np.random.default_rng(0).normal(size=(3, 2)).astype(np.float32)
        centroids, assignments = kmeans(points, 10, np.random.default_rng(1))
        assert centroids.shape[0] == 3
        assert assignments.max() < 3


class TestItemIndex:
    def test_nprobe_all_matches_brute_force(self, corpus):
        vectors, categories, num_categories = corpus
        index = ItemIndex(vectors, categories, num_categories)
        rng = np.random.default_rng(1)
        for category in range(num_categories):
            query = rng.normal(size=vectors.shape[1]).astype(np.float32)
            for topn in (5, 25, 10_000):
                got = index.search(query, category, topn=topn, nprobe="all")
                want = _brute_force(vectors, categories, query, category, topn)
                np.testing.assert_array_equal(got, want)

    def test_recall_monotone_in_nprobe(self, corpus):
        """More probed cells can only widen the scanned set, so recall
        against the exact top-N is non-decreasing — the cascade's knob."""
        vectors, categories, num_categories = corpus
        index = ItemIndex(vectors, categories, num_categories)
        rng = np.random.default_rng(2)
        queries = [rng.normal(size=vectors.shape[1]).astype(np.float32) for _ in range(20)]
        topn = 10
        recalls = []
        for nprobe in (1, 2, 4, "all"):
            hits = total = 0
            for q, query in enumerate(queries):
                category = q % num_categories
                exact = set(index.search(query, category, topn=topn, nprobe="all").tolist())
                got = set(index.search(query, category, topn=topn, nprobe=nprobe).tolist())
                hits += len(exact & got)
                total += len(exact)
            recalls.append(hits / total)
        assert all(a <= b + 1e-12 for a, b in zip(recalls, recalls[1:]))
        assert recalls[-1] == 1.0
        assert recalls[0] < 1.0  # one probe of many cells must actually miss

    def test_build_deterministic(self, corpus):
        vectors, categories, num_categories = corpus
        a = ItemIndex(vectors, categories, num_categories, seed=4)
        b = ItemIndex(vectors, categories, num_categories, seed=4)
        query = np.random.default_rng(0).normal(size=vectors.shape[1]).astype(np.float32)
        for category in range(num_categories):
            np.testing.assert_array_equal(
                a.search(query, category, topn=7, nprobe=2),
                b.search(query, category, topn=7, nprobe=2),
            )

    def test_results_ascending_and_in_category(self, corpus):
        vectors, categories, num_categories = corpus
        index = ItemIndex(vectors, categories, num_categories)
        query = np.random.default_rng(5).normal(size=vectors.shape[1]).astype(np.float32)
        ids = index.search(query, 1, topn=9, nprobe=2)
        assert np.all(np.diff(ids) > 0)
        assert np.all(categories[ids] == 1)

    def test_empty_partition(self):
        vectors = np.ones((4, 3), dtype=np.float32)
        categories = np.zeros(4, dtype=np.int64)
        index = ItemIndex(vectors, categories, num_categories=2)
        assert index.partition_size(1) == 0
        assert index.search(np.ones(3, dtype=np.float32), 1, topn=5).size == 0

    def test_validation(self, corpus):
        vectors, categories, num_categories = corpus
        index = ItemIndex(vectors, categories, num_categories)
        with pytest.raises(ValueError):
            index.search(np.zeros(vectors.shape[1], dtype=np.float32), 0, topn=3, nprobe=0)
        with pytest.raises(ValueError):
            ItemIndex(vectors[None], categories, num_categories)
        with pytest.raises(ValueError):
            ItemIndex(vectors, categories[:-1], num_categories)

    def test_stats_accounting(self, corpus):
        vectors, categories, num_categories = corpus
        index = ItemIndex(vectors, categories, num_categories)
        stats = index.stats()
        assert stats["num_items"] == vectors.shape[0]
        assert stats["partitions"] == num_categories
        assert stats["nbytes"] == index.nbytes > 0
        sizes = [index.partition_size(c) for c in range(num_categories)]
        assert sum(sizes) == vectors.shape[0]
