"""Retrieval cascade: exhaustive parity, recall monotonicity, hot-swap
rebuilds, and the canary retrieval probe."""

import numpy as np
import pytest

from repro.core import ModelConfig, build_model
from repro.retrieval import (
    CascadeConfig,
    Prefilter,
    RetrievalCascade,
    RetrievalProbe,
)
from repro.serving import SearchEngine, SessionCache, MicroBatcher


@pytest.fixture()
def model(test_set):
    return build_model("aw_moe", ModelConfig.unit(), test_set.meta, np.random.default_rng(0))


@pytest.fixture()
def other_model(test_set):
    return build_model("aw_moe", ModelConfig.unit(), test_set.meta, np.random.default_rng(99))


class TestPrefilter:
    def test_scores_linear_form(self):
        vectors = np.arange(12, dtype=np.float32).reshape(4, 3)
        static = np.array([0.0, 1.0, -1.0, 2.0], dtype=np.float32)
        prefilter = Prefilter(vectors, static)
        session = np.array([1.0, 0.0, -1.0], dtype=np.float32)
        candidates = np.array([0, 2, 3])
        got = prefilter.scores(candidates, session)
        np.testing.assert_allclose(got, vectors[candidates] @ session + static[candidates])

    def test_prune_keeps_top_k_ascending(self):
        vectors = np.eye(5, dtype=np.float32)
        static = np.array([0.0, 5.0, 1.0, 4.0, 2.0], dtype=np.float32)
        prefilter = Prefilter(vectors, static)
        survivors = prefilter.prune(np.arange(5), np.zeros(5, dtype=np.float32), keep=2)
        np.testing.assert_array_equal(survivors, [1, 3])

    def test_prune_none_is_identity(self):
        prefilter = Prefilter(np.ones((3, 2), dtype=np.float32), np.zeros(3, dtype=np.float32))
        candidates = np.array([0, 2])
        assert prefilter.prune(candidates, np.zeros(2, dtype=np.float32), None) is candidates

    def test_plan_is_allocation_free_after_warmup(self):
        rng = np.random.default_rng(0)
        prefilter = Prefilter(
            rng.normal(size=(50, 4)).astype(np.float32),
            rng.normal(size=50).astype(np.float32),
        )
        candidates = np.arange(20)
        session = rng.normal(size=4).astype(np.float32)
        prefilter.scores(candidates, session)
        arena = prefilter.plan.arena
        arena.reset_stats()
        prefilter.scores(candidates, session)
        assert arena.misses == 0 and arena.hits > 0


class TestExhaustiveParity:
    def test_cascade_parity_with_sampling_pipeline(self, unit_world, model):
        """nprobe='all' + prune=None serves *exactly* what the pre-cascade
        pipeline serves: same candidates, bitwise-equal scores."""
        plain = SearchEngine(
            unit_world, model, np.random.default_rng(1),
            candidates_per_query=unit_world.num_items + 1,
        )
        cascade = SearchEngine(
            unit_world, model, np.random.default_rng(1),
            candidates_per_query=unit_world.num_items + 1,
            cascade=CascadeConfig.exhaustive(),
        )
        for user, category in ((3, 2), (11, 0), (40, 5)):
            want = plain.search(user, category)
            got = cascade.search(user, category)
            np.testing.assert_array_equal(got.items, want.items)
            np.testing.assert_array_equal(got.scores, want.scores)

    def test_exhaustive_mode_returns_whole_category(self, unit_world, model):
        engine = SearchEngine(
            unit_world, model, np.random.default_rng(1), cascade=CascadeConfig.exhaustive()
        )
        members = np.flatnonzero(unit_world.item_category == 3)
        np.testing.assert_array_equal(engine.retrieve(3, user=2), members)

    def test_batched_cascade_matches_single_query(self, unit_world, model):
        """The micro-batcher over a cascade engine scores the same survivors
        to the same values as the one-query loop (the batcher contract)."""
        config = CascadeConfig(retrieve_n=12, prune=8, nprobe="all")
        single = SearchEngine(unit_world, model, np.random.default_rng(1), cascade=config)
        batched_engine = SearchEngine(unit_world, model, np.random.default_rng(2), cascade=config)
        batcher = MicroBatcher(batched_engine, max_batch_size=4, cache=SessionCache(64))
        queries = [(3, 2), (11, 0), (40, 5), (7, 1)]
        results = []
        for user, category in queries:
            results.extend(batcher.submit(user, category))
        results.extend(batcher.flush())
        assert len(results) == len(queries)
        for ranking in results:
            want = single.search(ranking.user, ranking.query_category)
            np.testing.assert_array_equal(ranking.items, want.items)
            np.testing.assert_allclose(ranking.scores, want.scores, rtol=1e-5, atol=1e-6)

    def test_batcher_cached_gate_feeds_cascade(self, unit_world, model, monkeypatch):
        """A session-cache gate hit saves the cascade its own gate
        evaluation — retrieval and scoring share one §III-F1 vector."""
        config = CascadeConfig(retrieve_n=12, prune=8, nprobe="all")
        engine = SearchEngine(unit_world, model, np.random.default_rng(1), cascade=config)
        cache = SessionCache(64)
        batcher = MicroBatcher(engine, max_batch_size=64, cache=cache)
        calls = []
        original = engine.cascade._session_gate

        def counting_gate(user, category):
            calls.append((user, category))
            return original(user, category)

        monkeypatch.setattr(engine.cascade, "_session_gate", counting_gate)
        batcher.submit(7, 2)  # cache miss: the cascade evaluates its own gate
        assert calls == [(7, 2)]
        first = batcher.flush()  # resolves and caches the session gate
        batcher.submit(7, 2)  # cache hit: the cached vector is forwarded
        assert calls == [(7, 2)]
        second = batcher.flush()
        np.testing.assert_array_equal(
            np.sort(first[0].items), np.sort(second[0].items)
        )

    def test_without_user_falls_back_to_sampling(self, unit_world, model):
        """retrieve() without a user cannot personalize; it keeps the
        popularity-sampling behaviour so old callers stay valid."""
        engine = SearchEngine(
            unit_world, model, np.random.default_rng(1),
            cascade=CascadeConfig(retrieve_n=6, prune=4, nprobe=1),
        )
        twin = SearchEngine(unit_world, model, np.random.default_rng(1))
        np.testing.assert_array_equal(engine.retrieve(2), twin.retrieve(2))


class TestRecallMonotonicity:
    def _recall(self, unit_world, model, config, queries):
        cascade = RetrievalCascade.from_model(model, unit_world, config)
        hits = total = 0
        for user, category in queries:
            kept = set(cascade.retrieve(user, category).tolist())
            everything = cascade.index.partition_ids(category)
            order = np.argsort(
                -cascade.score_candidates(user, category, everything), kind="stable"
            )
            top = everything[order][:5]
            hits += sum(1 for item in top.tolist() if item in kept)
            total += top.size
        return hits / total

    def test_recall_monotone_in_prune_and_nprobe(self, unit_world, model):
        rng = np.random.default_rng(4)
        queries = [
            (int(rng.integers(0, unit_world.num_users)), int(rng.integers(0, 8)))
            for _ in range(24)
        ]
        by_prune = [
            self._recall(unit_world, model, CascadeConfig(retrieve_n=30, prune=prune, nprobe="all"), queries)
            for prune in (5, 10, 20)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(by_prune, by_prune[1:]))
        by_nprobe = [
            self._recall(unit_world, model, CascadeConfig(retrieve_n=10, prune=None, nprobe=nprobe), queries)
            for nprobe in (1, 2, "all")
        ]
        assert all(a <= b + 1e-12 for a, b in zip(by_nprobe, by_nprobe[1:]))
        assert by_nprobe[-1] == 1.0

    def test_empty_history_users_share_static_ranking(self, unit_world, model):
        """Without history the embedding/profile blocks zero out; what
        remains — statics plus the age-matched, gate-weighted probe block —
        is identical for any two new users of the same age group, so they
        retrieve the same candidates."""
        cascade = RetrievalCascade.from_model(
            model, unit_world, CascadeConfig(retrieve_n=5, prune=3, nprobe="all")
        )
        by_age: dict = {}
        for u in range(unit_world.num_users):
            if len(unit_world.histories[u]) == 0:
                by_age.setdefault(int(unit_world.user_age[u]), []).append(u)
        age, users = next((a, us) for a, us in by_age.items() if len(us) >= 2)
        vec = cascade.session_vector(users[0], 1)
        probe_end = cascade._NUM_STATIC + cascade.num_ages * cascade.num_probes
        assert not vec[probe_end:].any()  # no history → no emb/profile terms
        assert vec[cascade._age_block(users[0])].any()
        first = cascade.retrieve(users[0], 1)
        second = cascade.retrieve(users[1], 1)
        assert 0 < first.size <= 3
        np.testing.assert_array_equal(first, second)


class TestHotSwapRebuild:
    def test_set_model_rebuilds_cascade_atomically(self, unit_world, model, other_model):
        config = CascadeConfig(retrieve_n=10, prune=6, nprobe="all")
        engine = SearchEngine(unit_world, model, np.random.default_rng(1), cascade=config)
        before = engine.cascade
        engine.set_model(other_model, "v2")
        assert engine.cascade is not before
        # The rebuilt index serves the new snapshot: candidate sets match a
        # twin engine built directly on the new model (same compiled scorer
        # path, so probe/calibration floats are identical), per category.
        fresh = SearchEngine(
            unit_world, other_model, np.random.default_rng(2), cascade=config
        ).cascade
        for user, category in ((3, 2), (11, 0), (40, 5)):
            np.testing.assert_array_equal(
                engine.retrieve(category, user=user), fresh.retrieve(user, category)
            )

    def test_swap_changes_retrieval_when_embeddings_change(self, unit_world, model, other_model):
        """Different embedding snapshots must actually retrieve differently
        for history-rich users — otherwise the rebuild test is vacuous.
        Fresh random inits are too small to shift the top-K, so the swapped
        model's table is scaled to trained-like magnitudes."""
        weight = other_model.embedder.item.weight
        weight.data = (weight.data * 25.0).astype(weight.data.dtype)
        config = CascadeConfig(retrieve_n=8, prune=4, nprobe="all")
        engine = SearchEngine(unit_world, model, np.random.default_rng(1), cascade=config)
        rich = [u for u in range(unit_world.num_users) if len(unit_world.histories[u]) >= 4]
        before = [engine.retrieve(c, user=u) for u in rich[:20] for c in range(4)]
        engine.set_model(other_model, "v2")
        after = [engine.retrieve(c, user=u) for u in rich[:20] for c in range(4)]
        assert any(
            not np.array_equal(a, b) for a, b in zip(before, after)
        ), "swap did not change any candidate set"


class TestRetrievalProbe:
    def test_healthy_model_passes(self, unit_world, model):
        probe = RetrievalProbe(
            unit_world,
            CascadeConfig(retrieve_n=40, prune=20, nprobe="all"),
            queries=((3, 2), (11, 0), (40, 5)),
            min_recall=0.9,
            k=5,
        )
        ok, recall = probe.check(model)
        assert ok and recall > 0.9

    def test_corrupted_embeddings_fail(self, unit_world, model):
        """Scrambling the embedding table collapses retrieval recall under a
        tight (low-nprobe, hard-pruning) cascade — the failure the probe
        exists to catch before a hot swap."""
        import copy

        probe = RetrievalProbe(
            unit_world,
            CascadeConfig(retrieve_n=6, prune=3, nprobe=1),
            queries=tuple((u, c) for u in (3, 11, 40, 7, 19) for c in range(8)),
            min_recall=0.95,
            k=5,
        )
        corrupted = copy.deepcopy(model)
        weight = corrupted.embedder.item.weight
        weight.data = weight.data * 40.0 + np.random.default_rng(0).normal(
            scale=10.0, size=weight.data.shape
        ).astype(weight.data.dtype)
        ok, recall = probe.check(corrupted)
        healthy_ok, healthy_recall = probe.check(model)
        # The probe measures each model against its *own* oracle; corruption
        # shows up as a recall drop, not a score change.
        assert recall <= healthy_recall

    def test_canary_gate_blocks_on_probe(self, unit_world, model, test_set):
        from repro.online import CanaryGate

        class FailingProbe:
            min_recall = 0.99

            def check(self, _model, scorer=None):
                return False, 0.5

        gate = CanaryGate(retrieval_probe=FailingProbe())
        report = gate.judge(model, None, test_set)
        assert not report.passed
        assert any("retrieval recall" in reason for reason in report.reasons)
        assert report.candidate["retrieval_recall"] == 0.5
