"""Serving metrics: QPS, latency percentiles, batch sizes, cache hit rate,
and online-loop events (model swaps, canary verdicts, click-log lag).

Every serving component (engine, micro-batcher, shard workers) reports into
a :class:`MetricsSink`; the cluster merges per-shard sinks into one fleet
view.  The online learning loop (:mod:`repro.online`) reports its control
events — hot swaps, canary pass/fail, click-log consumption lag — into the
same sink, so one fleet report covers traffic *and* the feedback loop.  The
sink is pure accounting — it never influences scheduling — so tests can
assert on it without perturbing behaviour.

Attaching the §III-F1 cost model (:meth:`MetricsSink.record_cost_model`)
turns the cache hit counters into estimated FLOPs saved: every gate-cache
hit skips one full gate-network evaluation.

:class:`ManualClock` provides a deterministic time source: the batcher and
load generator accept any ``() -> float`` callable, so tests advance time
explicitly instead of sleeping.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.serving.cache import CacheStats
from repro.serving.cost import CascadeCostReport, GateCostReport

__all__ = ["ManualClock", "MetricsSink", "latency_percentile", "sorted_percentile"]


class ManualClock:
    """Deterministic clock: time moves only when the test advances it."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("clock cannot move backwards")
        self._now += seconds

    def advance_to(self, timestamp: float) -> None:
        self._now = max(self._now, float(timestamp))


def sorted_percentile(sorted_values: np.ndarray, percentile: float) -> float:
    """Nearest-rank percentile of an already-sorted array (0.0 when empty).

    Factored out of :func:`latency_percentile` so a caller reading several
    percentiles (a summary's p50/p95/p99) sorts **once** and reuses the
    sorted array, instead of re-sorting the full latency list per quantile.
    """
    if not 0 < percentile <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {percentile}")
    if sorted_values.size == 0:
        return 0.0
    rank = max(int(np.ceil(percentile / 100.0 * sorted_values.size)) - 1, 0)
    return float(sorted_values[rank])


def latency_percentile(latencies_ms: Sequence[float], percentile: float) -> float:
    """Nearest-rank percentile of recorded latencies (0.0 when empty)."""
    return sorted_percentile(np.sort(np.asarray(latencies_ms, dtype=float)), percentile)


class MetricsSink:
    """Accumulates per-query latencies, batch sizes, and cache counters."""

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self.latencies_ms: List[float] = []
        self.batch_sizes: List[int] = []
        self.cache_stats = CacheStats()
        self._first_ts: Optional[float] = None
        self._last_ts: Optional[float] = None
        # Online-loop events (see repro.online): counters plus gauges.
        self.swaps = 0
        self.canary_passes = 0
        self.canary_failures = 0
        self.log_lag = 0  # gauge: logged-but-unconsumed click sessions
        self.cost_model: Optional[GateCostReport] = None
        self.cascade_cost: Optional[CascadeCostReport] = None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_query(self, latency_ms: float, now: Optional[float] = None) -> None:
        """One served query: its end-to-end latency and completion time."""
        now = self._clock() if now is None else now
        self.latencies_ms.append(float(latency_ms))
        if self._first_ts is None:
            self._first_ts = now
        self._last_ts = now

    def record_batch(self, size: int) -> None:
        """One model forward covering ``size`` coalesced queries."""
        self.batch_sizes.append(int(size))

    def record_cache(self, stats: CacheStats) -> None:
        """Snapshot cache counters (overwrites the previous snapshot)."""
        self.cache_stats = CacheStats(stats.hits, stats.misses, stats.evictions)

    def record_swap(self) -> None:
        """One model hot-swap deployed into the serving stack."""
        self.swaps += 1

    def record_canary(self, passed: bool) -> None:
        """One canary-gate verdict on a candidate model version."""
        if passed:
            self.canary_passes += 1
        else:
            self.canary_failures += 1

    def record_log_lag(self, lag: int) -> None:
        """Gauge: click-log sessions appended but not yet consumed by the
        incremental trainer (freshness of the feedback loop)."""
        self.log_lag = int(lag)

    def record_cost_model(self, report: GateCostReport) -> None:
        """Attach the §III-F1 FLOP cost model so cache counters translate
        into estimated computation saved (see :attr:`gate_flops_saved`)."""
        self.cost_model = report

    def record_cascade_cost(self, report: CascadeCostReport) -> None:
        """Attach the retrieval-cascade FLOP comparison (exhaustive category
        scan vs ANN index + prefilter + survivor ranking) so the fleet
        summary reports the sublinear-retrieval saving next to the §III-F1
        gate saving."""
        self.cascade_cost = report

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    @property
    def queries(self) -> int:
        return len(self.latencies_ms)

    @property
    def wall_seconds(self) -> float:
        """Span between first and last recorded query completion."""
        if self._first_ts is None or self._last_ts is None:
            return 0.0
        return self._last_ts - self._first_ts

    @property
    def qps(self) -> float:
        """Observed throughput over the recorded span."""
        span = self.wall_seconds
        if span <= 0.0:
            return 0.0
        return self.queries / span

    def percentile(self, p: float) -> float:
        return latency_percentile(self.latencies_ms, p)

    def batch_size_histogram(self) -> Dict[int, int]:
        """``{batch size: number of forwards}`` over all flushes."""
        histogram: Dict[int, int] = {}
        for size in self.batch_sizes:
            histogram[size] = histogram.get(size, 0) + 1
        return dict(sorted(histogram.items()))

    @property
    def mean_batch_size(self) -> float:
        if not self.batch_sizes:
            return 0.0
        return float(np.mean(self.batch_sizes))

    @property
    def gate_flops_saved(self) -> int:
        """Estimated gate-network FLOPs skipped thanks to cache hits.

        Each gate-cache hit avoids exactly one gate evaluation, whose cost
        the attached :class:`~repro.serving.cost.GateCostReport` supplies;
        0 until :meth:`record_cost_model` is called.
        """
        if self.cost_model is None:
            return 0
        return self.cache_stats.hits * self.cost_model.gate_flops

    def merge(self, other: "MetricsSink") -> "MetricsSink":
        """Fleet-level union of two sinks (latencies pooled, spans unioned).

        Online counters sum; the log-lag gauge takes the worst (largest)
        shard; the cost model carries over from whichever sink has one.
        """
        merged = MetricsSink(clock=self._clock)
        merged.latencies_ms = self.latencies_ms + other.latencies_ms
        merged.batch_sizes = self.batch_sizes + other.batch_sizes
        merged.cache_stats = self.cache_stats.merge(other.cache_stats)
        stamps = [ts for ts in (self._first_ts, other._first_ts) if ts is not None]
        merged._first_ts = min(stamps) if stamps else None
        stamps = [ts for ts in (self._last_ts, other._last_ts) if ts is not None]
        merged._last_ts = max(stamps) if stamps else None
        merged.swaps = self.swaps + other.swaps
        merged.canary_passes = self.canary_passes + other.canary_passes
        merged.canary_failures = self.canary_failures + other.canary_failures
        merged.log_lag = max(self.log_lag, other.log_lag)
        merged.cost_model = self.cost_model if self.cost_model is not None else other.cost_model
        merged.cascade_cost = (
            self.cascade_cost if self.cascade_cost is not None else other.cascade_cost
        )
        return merged

    def summary(self) -> Dict[str, object]:
        """One JSON-serializable report of every headline metric.

        Latencies are sorted **once** per snapshot and every percentile is
        read off the same sorted array (a three-quantile summary used to
        sort the full list three times).
        """
        sorted_latencies = np.sort(np.asarray(self.latencies_ms, dtype=float))
        return {
            "queries": self.queries,
            "qps": self.qps,
            "latency_ms": {
                "mean": float(sorted_latencies.mean()) if sorted_latencies.size else 0.0,
                "p50": sorted_percentile(sorted_latencies, 50),
                "p95": sorted_percentile(sorted_latencies, 95),
                "p99": sorted_percentile(sorted_latencies, 99),
            },
            "batches": len(self.batch_sizes),
            "mean_batch_size": self.mean_batch_size,
            "batch_size_histogram": {
                str(size): count for size, count in self.batch_size_histogram().items()
            },
            "cache": {
                "hits": self.cache_stats.hits,
                "misses": self.cache_stats.misses,
                "evictions": self.cache_stats.evictions,
                "hit_rate": self.cache_stats.hit_rate,
            },
            "online": {
                "swaps": self.swaps,
                "canary_passes": self.canary_passes,
                "canary_failures": self.canary_failures,
                "click_log_lag": self.log_lag,
            },
            "cost": {
                "gate_flops": self.cost_model.gate_flops if self.cost_model else None,
                "gate_flops_saved_by_cache": self.gate_flops_saved,
                "session_saving_factor": (
                    self.cost_model.total_saving_factor if self.cost_model else None
                ),
                "cascade": self.cascade_cost.as_dict() if self.cascade_cost else None,
            },
        }
