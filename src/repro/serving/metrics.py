"""Serving metrics: QPS, latency percentiles, batch sizes, cache hit rate,
and online-loop events (model swaps, canary verdicts, click-log lag).

Every serving component (engine, micro-batcher, shard workers) reports into
a :class:`MetricsSink`; the cluster merges per-shard sinks into one fleet
view.  The online learning loop (:mod:`repro.online`) reports its control
events — hot swaps, canary pass/fail, click-log consumption lag — into the
same sink, so one fleet report covers traffic *and* the feedback loop.  The
sink is pure accounting — it never influences scheduling — so tests can
assert on it without perturbing behaviour.

The sink runs at **bounded memory** by default: latencies stream into a
fixed-size exponential-bucket histogram
(:class:`~repro.obs.streaming.StreamingHistogram`, quantile error ≤ 2%)
instead of an unbounded Python list, and batch sizes into a small counts
map — a sink that has absorbed ten million queries is the same size as one
that absorbed ten.  ``exact=True`` opts back into the full per-query lists
for tests that assert bitwise summaries.  Control events additionally land
in a bounded :class:`~repro.obs.events.EventLog`, and an optional shared
:class:`~repro.obs.slo.SloTracker` receives every latency for sliding-window
SLO evaluation.  :meth:`MetricsSink.prometheus_text` /
:meth:`MetricsSink.to_registry` export the whole sink as a Prometheus-style
snapshot.

Attaching the §III-F1 cost model (:meth:`MetricsSink.record_cost_model`)
turns the cache hit counters into estimated FLOPs saved: every gate-cache
hit skips one full gate-network evaluation.

:class:`ManualClock` provides a deterministic time source: the batcher and
load generator accept any ``() -> float`` callable, so tests advance time
explicitly instead of sleeping.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.obs.events import EventLog
from repro.obs.slo import SloTracker
from repro.obs.streaming import MetricsRegistry, StreamingHistogram
from repro.serving.cache import CacheStats
from repro.serving.cost import CascadeCostReport, GateCostReport

__all__ = ["ManualClock", "MetricsSink", "latency_percentile", "sorted_percentile"]


class ManualClock:
    """Deterministic clock: time moves only when the test advances it."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("clock cannot move backwards")
        self._now += seconds

    def advance_to(self, timestamp: float) -> None:
        self._now = max(self._now, float(timestamp))


def sorted_percentile(sorted_values: np.ndarray, percentile: float) -> float:
    """Nearest-rank percentile of an already-sorted array (0.0 when empty).

    Factored out of :func:`latency_percentile` so a caller reading several
    percentiles (a summary's p50/p95/p99) sorts **once** and reuses the
    sorted array, instead of re-sorting the full latency list per quantile.
    """
    if not 0 < percentile <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {percentile}")
    if sorted_values.size == 0:
        return 0.0
    rank = max(int(np.ceil(percentile / 100.0 * sorted_values.size)) - 1, 0)
    return float(sorted_values[rank])


def latency_percentile(latencies_ms: Sequence[float], percentile: float) -> float:
    """Nearest-rank percentile of recorded latencies (0.0 when empty)."""
    return sorted_percentile(np.sort(np.asarray(latencies_ms, dtype=float)), percentile)


#: Latency histogram layout shared by every sink so shard merges line up:
#: 0.1 µs granularity floor, ≤ 2% quantile error, covers any float latency.
_LATENCY_HIST_KWARGS = dict(min_value=1e-4, growth=1.04, num_buckets=2048)


class MetricsSink:
    """Accumulates per-query latencies, batch sizes, and cache counters.

    Parameters
    ----------
    clock:
        Time source in seconds (completion timestamps and event stamps).
    exact:
        Keep the full per-query ``latencies_ms`` / ``batch_sizes`` lists and
        compute bitwise-exact percentiles from them.  **Opt-in**: the
        default streams into bounded structures (approximate quantiles,
        O(1) memory) — lists are ``None`` then.
    slo:
        Optional shared :class:`~repro.obs.slo.SloTracker` fed every
        recorded latency (a fleet typically shares one across shard sinks).
    event_capacity:
        Ring-buffer size of the control-plane :class:`EventLog`.
    """

    def __init__(
        self,
        clock=time.perf_counter,
        exact: bool = False,
        slo: Optional[SloTracker] = None,
        event_capacity: int = 256,
    ) -> None:
        self._clock = clock
        self.exact = bool(exact)
        self.latencies_ms: Optional[List[float]] = [] if self.exact else None
        self.batch_sizes: Optional[List[int]] = [] if self.exact else None
        # The streaming structures are maintained in both modes, so merges
        # and Prometheus exports never depend on which mode a sink ran in.
        self._latency_hist = StreamingHistogram(**_LATENCY_HIST_KWARGS)
        self._batch_counts: Dict[int, int] = {}
        self.cache_stats = CacheStats()
        self._first_ts: Optional[float] = None
        self._last_ts: Optional[float] = None
        # Online-loop events (see repro.online): counters plus gauges,
        # mirrored as typed entries in the bounded event log.
        self.swaps = 0
        self.canary_passes = 0
        self.canary_failures = 0
        self.log_lag = 0  # gauge: logged-but-unconsumed click sessions
        # Degradation-ladder accounting (repro.serving.degrade): responses
        # per tier, plus how many of those were load-shed at admission.
        self.tier_counts: Dict[str, int] = {}
        self.shed = 0
        self.events = EventLog(capacity=event_capacity)
        self.slo = slo
        self.cost_model: Optional[GateCostReport] = None
        self.cascade_cost: Optional[CascadeCostReport] = None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_query(self, latency_ms: float, now: Optional[float] = None) -> None:
        """One served query: its end-to-end latency and completion time."""
        now = self._clock() if now is None else now
        latency_ms = float(latency_ms)
        self._latency_hist.record(latency_ms)
        if self.latencies_ms is not None:
            self.latencies_ms.append(latency_ms)
        if self.slo is not None:
            self.slo.record(latency_ms, now)
        if self._first_ts is None:
            self._first_ts = now
        self._last_ts = now

    def record_batch(self, size: int) -> None:
        """One model forward covering ``size`` coalesced queries."""
        size = int(size)
        self._batch_counts[size] = self._batch_counts.get(size, 0) + 1
        if self.batch_sizes is not None:
            self.batch_sizes.append(size)

    def record_cache(self, stats: CacheStats) -> None:
        """Snapshot cache counters (overwrites the previous snapshot)."""
        self.cache_stats = CacheStats(stats.hits, stats.misses, stats.evictions)

    def record_swap(self, version: Optional[str] = None) -> None:
        """One model hot-swap deployed into the serving stack."""
        self.swaps += 1
        self.events.record("hot_swap", self._clock(), version=version)

    def record_canary(
        self,
        passed: bool,
        version: Optional[str] = None,
        recall: Optional[float] = None,
    ) -> None:
        """One canary-gate verdict on a candidate model version; ``recall``
        forwards the retrieval probe's measurement when one ran."""
        if passed:
            self.canary_passes += 1
        else:
            self.canary_failures += 1
        now = self._clock()
        self.events.record("canary_verdict", now, passed=bool(passed), version=version)
        if recall is not None:
            self.events.record(
                "recall_probe", now, recall=float(recall), version=version
            )

    def record_tier(self, tier: str) -> None:
        """One response served at ``tier`` (see :mod:`repro.serving.degrade`)."""
        self.tier_counts[tier] = self.tier_counts.get(tier, 0) + 1

    def record_shed(self) -> None:
        """One request answered via admission-control load shedding."""
        self.shed += 1

    def record_log_lag(self, lag: int) -> None:
        """Gauge: click-log sessions appended but not yet consumed by the
        incremental trainer (freshness of the feedback loop)."""
        self.log_lag = int(lag)
        self.events.record("click_log_lag", self._clock(), lag=int(lag))

    def record_cost_model(self, report: GateCostReport) -> None:
        """Attach the §III-F1 FLOP cost model so cache counters translate
        into estimated computation saved (see :attr:`gate_flops_saved`)."""
        self.cost_model = report

    def record_cascade_cost(self, report: CascadeCostReport) -> None:
        """Attach the retrieval-cascade FLOP comparison (exhaustive category
        scan vs ANN index + prefilter + survivor ranking) so the fleet
        summary reports the sublinear-retrieval saving next to the §III-F1
        gate saving."""
        self.cascade_cost = report

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    @property
    def queries(self) -> int:
        return self._latency_hist.count

    @property
    def wall_seconds(self) -> float:
        """Span between first and last recorded query completion."""
        if self._first_ts is None or self._last_ts is None:
            return 0.0
        return self._last_ts - self._first_ts

    @property
    def qps(self) -> float:
        """Observed throughput over the recorded span."""
        span = self.wall_seconds
        if span <= 0.0:
            return 0.0
        return self.queries / span

    def percentile(self, p: float) -> float:
        """Latency percentile: nearest-rank over the exact list in exact
        mode, the streaming estimate (≤ 2% relative error) otherwise."""
        if self.latencies_ms is not None:
            return latency_percentile(self.latencies_ms, p)
        return self._latency_hist.quantile(p)

    @property
    def batches(self) -> int:
        """Number of model forwards (flushes) recorded."""
        return sum(self._batch_counts.values())

    def batch_size_histogram(self) -> Dict[int, int]:
        """``{batch size: number of forwards}`` over all flushes."""
        if self.batch_sizes is not None:
            # Exact mode keeps the raw list; one vectorized pass replaces
            # the old per-element Python loop.
            sizes, counts = np.unique(np.asarray(self.batch_sizes, dtype=np.int64), return_counts=True)
            return {int(size): int(count) for size, count in zip(sizes, counts)}
        return dict(sorted(self._batch_counts.items()))

    @property
    def mean_batch_size(self) -> float:
        total = self.batches
        if total == 0:
            return 0.0
        return sum(size * count for size, count in self._batch_counts.items()) / total

    @property
    def max_batch_size(self) -> int:
        """Largest flush recorded (0 before any batch)."""
        if not self._batch_counts:
            return 0
        return max(self._batch_counts)

    @property
    def tier_responses(self) -> int:
        """Responses with a recorded degradation tier (any rung)."""
        return sum(self.tier_counts.values())

    @property
    def degraded_share(self) -> float:
        """Fraction of tiered responses served below the full tier."""
        total = self.tier_responses
        if total == 0:
            return 0.0
        return 1.0 - self.tier_counts.get("full", 0) / total

    @property
    def shed_rate(self) -> float:
        """Fraction of tiered responses answered via load shedding."""
        total = self.tier_responses
        if total == 0:
            return 0.0
        return self.shed / total

    @property
    def gate_flops_saved(self) -> int:
        """Estimated gate-network FLOPs skipped thanks to cache hits.

        Each gate-cache hit avoids exactly one gate evaluation, whose cost
        the attached :class:`~repro.serving.cost.GateCostReport` supplies;
        0 until :meth:`record_cost_model` is called.
        """
        if self.cost_model is None:
            return 0
        return self.cache_stats.hits * self.cost_model.gate_flops

    def merge(self, other: "MetricsSink") -> "MetricsSink":
        """Fleet-level union of two sinks (latencies pooled, spans unioned).

        Online counters sum; the log-lag gauge takes the worst (largest)
        shard; the cost model carries over from whichever sink has one.
        Streaming histograms add bucket-wise (associative, so shard merges
        compose in any order); exact lists survive only when **both**
        operands are exact — merging a streaming sink in demotes the result
        to streaming, since the pooled list no longer exists.
        """
        merged = MetricsSink(
            clock=self._clock,
            exact=self.exact and other.exact,
            slo=self.slo if self.slo is not None else other.slo,
            event_capacity=max(self.events.capacity, other.events.capacity),
        )
        merged._latency_hist = self._latency_hist.merge(other._latency_hist)
        if merged.exact:
            merged.latencies_ms = list(self.latencies_ms) + list(other.latencies_ms)
            merged.batch_sizes = list(self.batch_sizes) + list(other.batch_sizes)
        for counts in (self._batch_counts, other._batch_counts):
            for size, count in counts.items():
                merged._batch_counts[size] = merged._batch_counts.get(size, 0) + count
        merged.cache_stats = self.cache_stats.merge(other.cache_stats)
        stamps = [ts for ts in (self._first_ts, other._first_ts) if ts is not None]
        merged._first_ts = min(stamps) if stamps else None
        stamps = [ts for ts in (self._last_ts, other._last_ts) if ts is not None]
        merged._last_ts = max(stamps) if stamps else None
        merged.swaps = self.swaps + other.swaps
        merged.canary_passes = self.canary_passes + other.canary_passes
        merged.canary_failures = self.canary_failures + other.canary_failures
        merged.log_lag = max(self.log_lag, other.log_lag)
        for counts in (self.tier_counts, other.tier_counts):
            for tier, count in counts.items():
                merged.tier_counts[tier] = merged.tier_counts.get(tier, 0) + count
        merged.shed = self.shed + other.shed
        merged.events = self.events.merge(other.events)
        merged.cost_model = self.cost_model if self.cost_model is not None else other.cost_model
        merged.cascade_cost = (
            self.cascade_cost if self.cascade_cost is not None else other.cascade_cost
        )
        return merged

    def summary(self) -> Dict[str, object]:
        """One JSON-serializable report of every headline metric.

        In exact mode latencies are sorted **once** per snapshot and every
        percentile is read off the same sorted array; in streaming mode the
        percentiles come from the bounded histogram (mean stays exact — the
        histogram tracks the true sum).  The schema is identical either way.
        """
        if self.latencies_ms is not None:
            sorted_latencies = np.sort(np.asarray(self.latencies_ms, dtype=float))
            latency = {
                "mean": float(sorted_latencies.mean()) if sorted_latencies.size else 0.0,
                "p50": sorted_percentile(sorted_latencies, 50),
                "p95": sorted_percentile(sorted_latencies, 95),
                "p99": sorted_percentile(sorted_latencies, 99),
            }
        else:
            hist = self._latency_hist
            latency = {
                "mean": hist.mean,
                "p50": hist.quantile(50),
                "p95": hist.quantile(95),
                "p99": hist.quantile(99),
            }
        return {
            "queries": self.queries,
            "qps": self.qps,
            "latency_ms": latency,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "batch_size_histogram": {
                str(size): count for size, count in self.batch_size_histogram().items()
            },
            "cache": {
                "hits": self.cache_stats.hits,
                "misses": self.cache_stats.misses,
                "evictions": self.cache_stats.evictions,
                "hit_rate": self.cache_stats.hit_rate,
            },
            "online": {
                "swaps": self.swaps,
                "canary_passes": self.canary_passes,
                "canary_failures": self.canary_failures,
                "click_log_lag": self.log_lag,
            },
            "degradation": {
                "tiers": dict(sorted(self.tier_counts.items())),
                "shed": self.shed,
                "shed_rate": self.shed_rate,
                "degraded_share": self.degraded_share,
            },
            "events": self.events.counts(),
            "slo": self.slo.status() if self.slo is not None else None,
            "cost": {
                "gate_flops": self.cost_model.gate_flops if self.cost_model else None,
                "gate_flops_saved_by_cache": self.gate_flops_saved,
                "session_saving_factor": (
                    self.cost_model.total_saving_factor if self.cost_model else None
                ),
                "cascade": self.cascade_cost.as_dict() if self.cascade_cost else None,
            },
        }

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_registry(self, prefix: str = "repro") -> MetricsRegistry:
        """Snapshot as a :class:`~repro.obs.streaming.MetricsRegistry`
        (Prometheus-name metrics); registries from several sinks merge."""
        registry = MetricsRegistry()
        registry.counter(f"{prefix}_queries_total", "queries served").inc(self.queries)
        registry.counter(f"{prefix}_batches_total", "model forwards (flushes)").inc(self.batches)
        registry.gauge(f"{prefix}_mean_batch_size", "mean coalesced batch size").set(
            self.mean_batch_size
        )
        hist = registry.histogram(
            f"{prefix}_latency_ms", "end-to-end query latency (ms)", **_LATENCY_HIST_KWARGS
        )
        np.copyto(hist.counts, self._latency_hist.counts)
        hist.count = self._latency_hist.count
        hist.total = self._latency_hist.total
        hist.min = self._latency_hist.min
        hist.max = self._latency_hist.max
        registry.counter(f"{prefix}_cache_hits_total", "gate-cache hits").inc(
            self.cache_stats.hits
        )
        registry.counter(f"{prefix}_cache_misses_total", "gate-cache misses").inc(
            self.cache_stats.misses
        )
        registry.counter(f"{prefix}_cache_evictions_total", "gate-cache evictions").inc(
            self.cache_stats.evictions
        )
        registry.counter(f"{prefix}_model_swaps_total", "hot swaps deployed").inc(self.swaps)
        registry.counter(f"{prefix}_canary_passes_total", "canary verdicts: pass").inc(
            self.canary_passes
        )
        registry.counter(f"{prefix}_canary_failures_total", "canary verdicts: fail").inc(
            self.canary_failures
        )
        registry.gauge(
            f"{prefix}_click_log_lag", "unconsumed click-log sessions"
        ).set(self.log_lag)
        for tier, count in sorted(self.tier_counts.items()):
            registry.counter(
                f"{prefix}_served_{tier}_total", f"responses served at the {tier} tier"
            ).inc(count)
        registry.counter(
            f"{prefix}_requests_shed_total", "requests answered via load shedding"
        ).inc(self.shed)
        registry.gauge(
            f"{prefix}_shed_rate", "load-shed fraction of tiered responses"
        ).set(self.shed_rate)
        registry.gauge(
            f"{prefix}_degraded_share", "below-full-tier fraction of responses"
        ).set(self.degraded_share)
        return registry

    def prometheus_text(self, prefix: str = "repro") -> str:
        """Prometheus exposition-format snapshot of this sink."""
        return self.to_registry(prefix=prefix).prometheus_text()
