"""Session-level serving cache (paper §III-F1).

The deployed AW-MoE evaluates the gate network **once per user/query
session** because the gate reads only the behaviour sequence and the query —
never the candidate item.  Under production traffic the same users issue
many queries (and re-issue the same query category while paginating), so the
per-session gate vector and the user's encoded behaviour features are ideal
cache entries:

* gate vectors are keyed ``(user, query_category)`` — a hit skips the gate
  network entirely (the > 10x resource saving of §III-F);
* behaviour encodings are keyed ``user`` — a hit skips history padding and
  dense-profile lookup during feature assembly.

Both live in bounded LRU stores with hit/miss/eviction accounting so the
metrics sink (:mod:`repro.serving.metrics`) can report cache effectiveness.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional, Tuple

import numpy as np

from repro.data.features import BehaviorEncoding

__all__ = ["CacheStats", "LRUCache", "SessionCache"]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Counters summed with ``other`` (for cross-shard aggregation)."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
        )

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = 0


class LRUCache:
    """Bounded least-recently-used map with lookup accounting.

    ``get`` refreshes recency; ``put`` evicts the least recently used entry
    once ``capacity`` is exceeded.  ``capacity <= 0`` disables storage (every
    lookup misses), which lets benchmarks run the no-cache baseline through
    identical code paths.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Membership test without touching recency or stats."""
        return key in self._entries

    def get(self, key: Hashable) -> Optional[Any]:
        """Value for ``key`` (refreshing recency), or ``None`` on a miss."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return self._entries[key]
        self.stats.misses += 1
        return None

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh ``key``; evicts the LRU entry when over capacity."""
        if self.capacity <= 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def pop(self, key: Hashable) -> None:
        """Remove ``key`` if present (no stats impact)."""
        self._entries.pop(key, None)

    def keys(self) -> Tuple[Hashable, ...]:
        """Current keys, least recently used first (no stats impact)."""
        return tuple(self._entries.keys())

    def clear(self) -> None:
        self._entries.clear()


class SessionCache:
    """The serving stack's two cooperating LRU stores.

    Parameters
    ----------
    gate_capacity:
        Maximum number of per-(user, query-category) gate vectors retained.
    behavior_capacity:
        Maximum number of per-user behaviour encodings retained; defaults to
        ``gate_capacity``.
    """

    def __init__(self, gate_capacity: int, behavior_capacity: Optional[int] = None) -> None:
        self.gates = LRUCache(gate_capacity)
        self.behaviors = LRUCache(
            gate_capacity if behavior_capacity is None else behavior_capacity
        )
        #: Model generation the cached gate vectors belong to.  Bumped by
        #: :meth:`invalidate_all` on every model hot-swap; consumers that
        #: hold a gate across a flush boundary (the micro-batcher) record
        #: the generation at lookup time and discard the vector if it no
        #: longer matches — a gate produced by an old model must never be
        #: applied under a new one.
        self.generation = 0

    # -- gate vectors ---------------------------------------------------
    def get_gate(self, user: int, query_category: int) -> Optional[np.ndarray]:
        return self.gates.get((user, query_category))

    def put_gate(self, user: int, query_category: int, gate: np.ndarray) -> None:
        self.gates.put((user, query_category), gate)

    # -- behaviour encodings --------------------------------------------
    def get_behavior(self, user: int) -> Optional[BehaviorEncoding]:
        return self.behaviors.get(user)

    def put_behavior(self, user: int, encoding: BehaviorEncoding) -> None:
        self.behaviors.put(user, encoding)

    # -- accounting ------------------------------------------------------
    @property
    def gate_hit_rate(self) -> float:
        """Gate-vector hit rate — the headline §III-F cache metric."""
        return self.gates.stats.hit_rate

    def reset_stats(self) -> None:
        self.gates.stats.reset()
        self.behaviors.stats.reset()

    def invalidate_all(self, include_behaviors: bool = False) -> None:
        """Drop every cached gate vector and bump :attr:`generation`.

        Called on model hot-swap (:meth:`repro.serving.cluster.ShardedCluster.
        swap_model`): gate vectors are a function of the model's weights, so
        none may survive a version switch.  Behaviour encodings are pure
        data features (independent of the model) and are kept unless
        ``include_behaviors`` is set.
        """
        self.gates.clear()
        self.generation += 1
        if include_behaviors:
            self.behaviors.clear()

    def invalidate_user(self, user: int) -> None:
        """Drop every entry derived from ``user``'s behaviour sequence.

        Production systems call this when the user's history changes (a new
        click invalidates both the encoding and all cached gate vectors).
        """
        self.behaviors.pop(user)
        for key in self.gates.keys():
            if key[0] == user:
                self.gates.pop(key)
