"""Online A/B-test simulator (paper §IV-I).

The paper ran AW-MoE against the previous production Category-MoE on live
traffic and reported +0.78% UCVR and +0.35% UCTR (user conversion / click
rates).  We replay that experiment against the synthetic world: simulated
users are split into two buckets, each served by one ranker; users examine
the returned list with a position-discounted attention model and click /
purchase according to the *ground-truth* preference model.  UCTR and UCVR
are user-level success proportions compared with a two-proportion z-test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.ranking_model import RankingModel
from repro.data.features import UserState, cross_features
from repro.data.synthetic import World, _true_logits
from repro.eval.significance import two_proportion_z_test
from repro.serving.engine import SearchEngine

__all__ = ["ABTestResult", "run_ab_test"]


@dataclass
class ABTestResult:
    """Outcome of a simulated A/B experiment (control A vs treatment B)."""

    users_a: int
    users_b: int
    uctr_a: float
    uctr_b: float
    ucvr_a: float
    ucvr_b: float
    uctr_p_value: float
    ucvr_p_value: float

    @property
    def uctr_lift(self) -> float:
        """Relative UCTR gain of the treatment (B vs A)."""
        return (self.uctr_b - self.uctr_a) / self.uctr_a if self.uctr_a else 0.0

    @property
    def ucvr_lift(self) -> float:
        """Relative UCVR gain of the treatment (B vs A)."""
        return (self.ucvr_b - self.ucvr_a) / self.ucvr_a if self.ucvr_a else 0.0


def _position_bias(rank: int) -> float:
    """Examination probability by displayed position (log-discount)."""
    return 1.0 / np.log2(rank + 2.0)


def _simulate_user_session(
    world: World,
    engine: SearchEngine,
    user: int,
    rng: np.random.Generator,
    top_k: int,
) -> Tuple[bool, bool]:
    """Serve one session; return (clicked_anything, purchased_anything)."""
    interests = world.user_interests[user]
    query_category = int(rng.choice(len(interests), p=interests))
    ranking = engine.search(user, query_category)
    state = UserState(world, user)
    clicked = False
    purchased = False
    shown = ranking.items[:top_k]
    cross = cross_features(state, world, shown)
    logits = _true_logits(world, user, shown, query_category, cross)
    preference = 1.0 / (1.0 + np.exp(-logits))
    for rank, pref in enumerate(preference):
        if rng.random() > _position_bias(rank):
            continue  # the user never examined this position
        if rng.random() < min(1.0, 2.5 * pref):
            clicked = True
            if rng.random() < pref:
                purchased = True
    return clicked, purchased


def run_ab_test(
    world: World,
    control: RankingModel,
    treatment: RankingModel,
    num_users: int,
    seed: int = 0,
    top_k: int = 10,
) -> ABTestResult:
    """Split ``num_users`` simulated users 50/50 and measure UCTR / UCVR.

    Users are sampled with replacement proportionally to activity, like the
    live traffic the paper's experiment ran on.
    """
    if num_users < 10:
        raise ValueError("need at least 10 users for a meaningful A/B test")
    rng = np.random.default_rng(seed)
    lengths = np.asarray([len(h) for h in world.histories], dtype=float)
    user_probs = (lengths + 1.0) / (lengths + 1.0).sum()

    engines = {
        "a": SearchEngine(world, control, np.random.default_rng(seed + 1)),
        "b": SearchEngine(world, treatment, np.random.default_rng(seed + 2)),
    }
    clicks: Dict[str, int] = {"a": 0, "b": 0}
    purchases: Dict[str, int] = {"a": 0, "b": 0}
    totals: Dict[str, int] = {"a": 0, "b": 0}

    for i in range(num_users):
        bucket = "a" if i % 2 == 0 else "b"
        user = int(rng.choice(world.num_users, p=user_probs))
        clicked, purchased = _simulate_user_session(world, engines[bucket], user, rng, top_k)
        totals[bucket] += 1
        clicks[bucket] += int(clicked)
        purchases[bucket] += int(purchased)

    _, uctr_p = two_proportion_z_test(clicks["a"], totals["a"], clicks["b"], totals["b"])
    _, ucvr_p = two_proportion_z_test(purchases["a"], totals["a"], purchases["b"], totals["b"])
    return ABTestResult(
        users_a=totals["a"],
        users_b=totals["b"],
        uctr_a=clicks["a"] / totals["a"],
        uctr_b=clicks["b"] / totals["b"],
        ucvr_a=purchases["a"] / totals["a"],
        ucvr_b=purchases["b"] / totals["b"],
        uctr_p_value=uctr_p,
        ucvr_p_value=ucvr_p,
    )
