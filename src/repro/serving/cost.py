"""Serving-cost models for the deployed pipeline (paper §III-F).

Two cost comparisons live here, both counting multiply-accumulate FLOPs
from the actual layer shapes of a :class:`repro.core.config.ModelConfig`:

* the **gate optimization** (§III-F1): the paper's initial design fed the
  *target item* into the gate network, so the gate had to be recomputed for
  every candidate item in a session; the deployed design feeds only
  user/query-level features, so one gate computation serves all candidates
  — "> 10x saving in computational resource and latency";
* the **retrieval cascade** (the stage in front of the ranker in Fig. 6):
  exhaustively scoring a category with the full model versus probing the
  ANN item index, prefiltering, and ranking only the survivors
  (:mod:`repro.retrieval`) — the factor that keeps serving cost sublinear
  in catalog size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.config import ModelConfig
from repro.data.schema import DatasetMeta

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.retrieval import CascadeConfig

__all__ = [
    "GateCostReport",
    "CascadeCostReport",
    "mlp_flops",
    "gate_network_flops",
    "model_flops",
    "compare_gate_strategies",
    "compare_retrieval_strategies",
]


def mlp_flops(in_dim: int, layer_sizes: Sequence[int]) -> int:
    """Multiply-accumulate count of one MLP forward pass (2·in·out per layer)."""
    total = 0
    previous = in_dim
    for width in layer_sizes:
        total += 2 * previous * width
        previous = width
    return total


def _item_repr_dim(config: ModelConfig, meta: DatasetMeta) -> int:
    return config.item_embed_dim + config.category_embed_dim + meta.num_item_dense


def gate_network_flops(config: ModelConfig, meta: DatasetMeta, seq_len: int) -> int:
    """FLOPs of one gate-network evaluation over a length-``seq_len`` sequence."""
    hidden = list(config.input_hidden)
    h = hidden[-1]
    item_dim = _item_repr_dim(config, meta)
    key_dim = config.query_embed_dim if config.task == "search" else item_dim
    per_item = (
        mlp_flops(item_dim, hidden)  # behaviour MLP^G
        + mlp_flops(3 * h, list(config.unit_hidden) + [config.num_experts])  # gate unit
        + mlp_flops(3 * h, list(config.unit_hidden) + [1])  # activation unit
        + 2 * config.num_experts  # weighted accumulation
    )
    return seq_len * per_item + mlp_flops(key_dim, hidden)


def input_network_flops(config: ModelConfig, meta: DatasetMeta, seq_len: int) -> int:
    """FLOPs of the input network for one impression."""
    hidden = list(config.input_hidden)
    h = hidden[-1]
    item_dim = _item_repr_dim(config, meta)
    per_item = mlp_flops(item_dim, hidden) + mlp_flops(3 * h, list(config.unit_hidden) + [1])
    components = 3 if config.task == "search" else 2
    fixed = mlp_flops(item_dim, hidden) + mlp_flops(meta.num_features, hidden)
    if config.task == "search":
        fixed += mlp_flops(config.query_embed_dim, hidden)
    return seq_len * per_item + fixed + (components + 1) * h


def expert_flops(config: ModelConfig, meta: DatasetMeta) -> int:
    """FLOPs of all K experts for one impression."""
    components = 3 if config.task == "search" else 2
    v_imp = (components + 1) * config.input_hidden[-1]
    return config.num_experts * mlp_flops(v_imp, list(config.expert_hidden) + [1])


def model_flops(
    config: ModelConfig, meta: DatasetMeta, seq_len: int, gate_per_item: bool, items: int
) -> int:
    """Total session FLOPs for ``items`` candidates under one gate strategy."""
    per_item = input_network_flops(config, meta, seq_len) + expert_flops(config, meta)
    gate = gate_network_flops(config, meta, seq_len)
    gate_count = items if gate_per_item else 1
    return items * per_item + gate_count * gate


@dataclass(frozen=True)
class GateCostReport:
    """Cost comparison between per-item and per-session gate evaluation."""

    items_per_session: int
    seq_len: int
    gate_flops: int
    per_item_total: int
    per_session_total: int

    @property
    def gate_saving_factor(self) -> float:
        """How many times fewer gate FLOPs the deployed design spends."""
        return float(self.items_per_session)

    @property
    def total_saving_factor(self) -> float:
        """End-to-end session FLOP ratio (per-item / per-session)."""
        return self.per_item_total / self.per_session_total


def compare_gate_strategies(
    config: ModelConfig, meta: DatasetMeta, items_per_session: int, seq_len: int
) -> GateCostReport:
    """Reproduce §III-F1: gate-once-per-session vs gate-per-item costs."""
    if items_per_session < 1:
        raise ValueError("items_per_session must be >= 1")
    return GateCostReport(
        items_per_session=items_per_session,
        seq_len=seq_len,
        gate_flops=gate_network_flops(config, meta, seq_len),
        per_item_total=model_flops(config, meta, seq_len, gate_per_item=True, items=items_per_session),
        per_session_total=model_flops(
            config, meta, seq_len, gate_per_item=False, items=items_per_session
        ),
    )


@dataclass(frozen=True)
class CascadeCostReport:
    """Per-query cost comparison: exhaustive full-model scoring of one
    category versus the two-stage retrieval cascade in front of it."""

    category_size: int
    survivors: int
    stage1_flops: int  # ANN probe: coarse centroids + probed slab rows
    prefilter_flops: int  # linear re-score of the N retrieved candidates
    exhaustive_flops: int  # full model over every category member
    cascade_flops: int  # stage 1 + stage 2 + full model over survivors

    @property
    def ranker_saving_factor(self) -> float:
        """How many times fewer full-model candidates the cascade scores."""
        return self.category_size / max(self.survivors, 1)

    @property
    def total_saving_factor(self) -> float:
        """End-to-end per-query FLOP ratio (exhaustive / cascade)."""
        return self.exhaustive_flops / max(self.cascade_flops, 1)

    def as_dict(self) -> dict:
        return {
            "category_size": self.category_size,
            "survivors": self.survivors,
            "stage1_flops": self.stage1_flops,
            "prefilter_flops": self.prefilter_flops,
            "exhaustive_flops": self.exhaustive_flops,
            "cascade_flops": self.cascade_flops,
            "ranker_saving_factor": self.ranker_saving_factor,
            "total_saving_factor": self.total_saving_factor,
        }


def compare_retrieval_strategies(
    config: ModelConfig,
    meta: DatasetMeta,
    seq_len: int,
    category_size: int,
    cascade: "CascadeConfig",
    vector_dim: int,
    num_cells: int | None = None,
) -> CascadeCostReport:
    """Per-query FLOPs: exhaustive category scan vs the retrieval cascade.

    ``vector_dim`` is the cascade's augmented item-vector width and
    ``num_cells`` the category's IVF cell count (defaults to the index's
    ``ceil(sqrt(members))`` sizing).  Both pipelines pay one session-gate
    evaluation (§III-F1); the difference is how many candidates reach the
    per-item input network + experts.
    """
    if category_size < 1:
        raise ValueError("category_size must be >= 1")
    cells = int(num_cells) if num_cells else int(-(-(category_size**0.5) // 1))
    if cascade.nprobe == "all":
        probed_rows = category_size
        coarse = 0
    else:
        probed_rows = min(category_size, -(-(category_size * int(cascade.nprobe)) // cells))
        coarse = cells
    # Mirrors RetrievalCascade.retrieve: exhaustive-parity mode ignores the
    # retrieval depth and passes the whole category through.
    retrieved = category_size if cascade.is_exhaustive else min(cascade.retrieve_n, category_size)
    survivors = retrieved if cascade.prune is None else min(cascade.prune, retrieved)
    per_item = input_network_flops(config, meta, seq_len) + expert_flops(config, meta)
    gate = gate_network_flops(config, meta, seq_len)
    stage1 = 2 * vector_dim * (coarse + probed_rows)
    prefilter = 2 * vector_dim * retrieved + 2 * retrieved
    return CascadeCostReport(
        category_size=category_size,
        survivors=survivors,
        stage1_flops=stage1,
        prefilter_flops=prefilter,
        exhaustive_flops=category_size * per_item + gate,
        cascade_flops=stage1 + prefilter + survivors * per_item + gate,
    )
