"""Serving-cost model for the gate-network optimization (paper §III-F1).

The paper's initial design fed the *target item* into the gate network, so
the gate had to be recomputed for every candidate item in a session; the
deployed design feeds only user/query-level features, so one gate computation
serves all candidates — "> 10x saving in computational resource and latency".

This module counts multiply-accumulate FLOPs from the actual layer shapes of
a :class:`repro.core.config.ModelConfig` and reproduces that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.config import ModelConfig
from repro.data.schema import DatasetMeta

__all__ = ["GateCostReport", "mlp_flops", "gate_network_flops", "model_flops", "compare_gate_strategies"]


def mlp_flops(in_dim: int, layer_sizes: Sequence[int]) -> int:
    """Multiply-accumulate count of one MLP forward pass (2·in·out per layer)."""
    total = 0
    previous = in_dim
    for width in layer_sizes:
        total += 2 * previous * width
        previous = width
    return total


def _item_repr_dim(config: ModelConfig, meta: DatasetMeta) -> int:
    return config.item_embed_dim + config.category_embed_dim + meta.num_item_dense


def gate_network_flops(config: ModelConfig, meta: DatasetMeta, seq_len: int) -> int:
    """FLOPs of one gate-network evaluation over a length-``seq_len`` sequence."""
    hidden = list(config.input_hidden)
    h = hidden[-1]
    item_dim = _item_repr_dim(config, meta)
    key_dim = config.query_embed_dim if config.task == "search" else item_dim
    per_item = (
        mlp_flops(item_dim, hidden)  # behaviour MLP^G
        + mlp_flops(3 * h, list(config.unit_hidden) + [config.num_experts])  # gate unit
        + mlp_flops(3 * h, list(config.unit_hidden) + [1])  # activation unit
        + 2 * config.num_experts  # weighted accumulation
    )
    return seq_len * per_item + mlp_flops(key_dim, hidden)


def input_network_flops(config: ModelConfig, meta: DatasetMeta, seq_len: int) -> int:
    """FLOPs of the input network for one impression."""
    hidden = list(config.input_hidden)
    h = hidden[-1]
    item_dim = _item_repr_dim(config, meta)
    per_item = mlp_flops(item_dim, hidden) + mlp_flops(3 * h, list(config.unit_hidden) + [1])
    components = 3 if config.task == "search" else 2
    fixed = mlp_flops(item_dim, hidden) + mlp_flops(meta.num_features, hidden)
    if config.task == "search":
        fixed += mlp_flops(config.query_embed_dim, hidden)
    return seq_len * per_item + fixed + (components + 1) * h


def expert_flops(config: ModelConfig, meta: DatasetMeta) -> int:
    """FLOPs of all K experts for one impression."""
    components = 3 if config.task == "search" else 2
    v_imp = (components + 1) * config.input_hidden[-1]
    return config.num_experts * mlp_flops(v_imp, list(config.expert_hidden) + [1])


def model_flops(
    config: ModelConfig, meta: DatasetMeta, seq_len: int, gate_per_item: bool, items: int
) -> int:
    """Total session FLOPs for ``items`` candidates under one gate strategy."""
    per_item = input_network_flops(config, meta, seq_len) + expert_flops(config, meta)
    gate = gate_network_flops(config, meta, seq_len)
    gate_count = items if gate_per_item else 1
    return items * per_item + gate_count * gate


@dataclass(frozen=True)
class GateCostReport:
    """Cost comparison between per-item and per-session gate evaluation."""

    items_per_session: int
    seq_len: int
    gate_flops: int
    per_item_total: int
    per_session_total: int

    @property
    def gate_saving_factor(self) -> float:
        """How many times fewer gate FLOPs the deployed design spends."""
        return float(self.items_per_session)

    @property
    def total_saving_factor(self) -> float:
        """End-to-end session FLOP ratio (per-item / per-session)."""
        return self.per_item_total / self.per_session_total


def compare_gate_strategies(
    config: ModelConfig, meta: DatasetMeta, items_per_session: int, seq_len: int
) -> GateCostReport:
    """Reproduce §III-F1: gate-once-per-session vs gate-per-item costs."""
    if items_per_session < 1:
        raise ValueError("items_per_session must be >= 1")
    return GateCostReport(
        items_per_session=items_per_session,
        seq_len=seq_len,
        gate_flops=gate_network_flops(config, meta, seq_len),
        per_item_total=model_flops(config, meta, seq_len, gate_per_item=True, items=items_per_session),
        per_session_total=model_flops(
            config, meta, seq_len, gate_per_item=False, items=items_per_session
        ),
    )
