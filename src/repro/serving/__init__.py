"""``repro.serving`` — the online serving stack (§III-F) and A/B testing (§IV-I).

The serving pipeline mirrors the paper's Fig. 6 deployment, grown into a
high-throughput subsystem::

    traffic (loadgen) ──► shard router (cluster) ──► micro-batcher (batcher)
                                                          │
                             session cache (cache) ◄──────┤ gate reuse
                                                          ▼
                          retrieval + feature dump + model forward (engine)
                                                          │
                                metrics sink (metrics) ◄──┘ QPS / p99 / hits

* :mod:`~repro.serving.engine` — retrieval (the :mod:`repro.retrieval`
  ANN + prefilter cascade on large catalogs), feature assembly, scoring;
* :mod:`~repro.serving.batcher` — size/deadline micro-batching with one
  gate evaluation per session (§III-F1);
* :mod:`~repro.serving.cache` — LRU session cache for gate vectors and
  behaviour encodings, with hit/miss accounting;
* :mod:`~repro.serving.cluster` — deterministic user → shard hashing over
  N independent workers;
* :mod:`~repro.serving.loadgen` — Zipf user traffic with Poisson arrivals;
* :mod:`~repro.serving.metrics` — QPS, latency percentiles, batch-size
  histogram, cache hit rate (bounded-memory streaming histograms by
  default; Prometheus-text export via ``MetricsSink.prometheus_text``);
* :mod:`~repro.serving.cost` / :mod:`~repro.serving.ab_test` — the paper's
  FLOP cost model and simulated online A/B test.

Observability threads through every layer via :mod:`repro.obs`: pass a
:class:`repro.obs.Tracer` to the engine/batcher/cluster for per-request
span trees (submit → queue-wait → gate → retrieve → rank → flush, with
cascade sub-stages and per-kernel rank children), and a
:class:`repro.obs.SloTracker` to the cluster for sliding-window p99 and
error-budget burn rate — surfaced by ``ShardedCluster.fleet_report()``.

Scoring executes through the compiled inference path (:mod:`repro.infer`)
by default: engines compile models into flat fused-kernel plans at
construction and on every hot swap; models with no registered compiler
serve through the eager forward.

The stack is hot-swappable: :meth:`ShardedCluster.swap_model` drains each
shard between micro-batches, recompiles and switches the model+plan, and
invalidates the gate cache (generation-tagged), which is how the online
learning loop (:mod:`repro.online`) deploys refreshed versions with zero
downtime.  The swap is transactional: a mid-drain failure rolls every
already-swapped shard back and raises :class:`SwapFailed` — the fleet is
never left serving mixed generations.

Resilience (PR 8, :mod:`repro.faults`): a :class:`DegradationPolicy` gives
every request a deadline budget and admission control, degrading full
cascade ranking to a prefilter shortlist or the popularity prior instead of
timing out (each response's :attr:`RankedList.tier` says which); per-shard
circuit breakers plus deterministic failover rerouting keep a crashing
shard from taking its users down with it.
"""

from repro.serving.ab_test import ABTestResult, run_ab_test
from repro.serving.batcher import MicroBatcher, PreparedQuery
from repro.serving.cache import CacheStats, LRUCache, SessionCache
from repro.serving.cluster import ShardedCluster, ShardWorker, SwapFailed, shard_for_user
from repro.serving.degrade import (
    TIER_FULL,
    TIER_POPULARITY,
    TIER_PREFILTER,
    TIERS,
    DegradationPolicy,
)
from repro.serving.cost import (
    CascadeCostReport,
    GateCostReport,
    compare_gate_strategies,
    compare_retrieval_strategies,
    gate_network_flops,
    mlp_flops,
    model_flops,
)
from repro.serving.engine import RankedList, SearchEngine
from repro.serving.fleet import FleetConfig, FleetSupervisor, build_fleet
from repro.serving.loadgen import TrafficEvent, ZipfLoadGenerator, replay
from repro.serving.metrics import (
    ManualClock,
    MetricsSink,
    latency_percentile,
    sorted_percentile,
)

__all__ = [
    "ABTestResult",
    "run_ab_test",
    "MicroBatcher",
    "PreparedQuery",
    "CacheStats",
    "LRUCache",
    "SessionCache",
    "ShardedCluster",
    "ShardWorker",
    "SwapFailed",
    "shard_for_user",
    "FleetConfig",
    "FleetSupervisor",
    "build_fleet",
    "TIER_FULL",
    "TIER_POPULARITY",
    "TIER_PREFILTER",
    "TIERS",
    "DegradationPolicy",
    "CascadeCostReport",
    "GateCostReport",
    "compare_gate_strategies",
    "compare_retrieval_strategies",
    "gate_network_flops",
    "mlp_flops",
    "model_flops",
    "RankedList",
    "SearchEngine",
    "TrafficEvent",
    "ZipfLoadGenerator",
    "replay",
    "ManualClock",
    "MetricsSink",
    "latency_percentile",
    "sorted_percentile",
]
