"""``repro.serving`` — deployment simulators (§III-F) and A/B testing (§IV-I)."""

from repro.serving.ab_test import ABTestResult, run_ab_test
from repro.serving.cost import (
    GateCostReport,
    compare_gate_strategies,
    gate_network_flops,
    mlp_flops,
    model_flops,
)
from repro.serving.engine import RankedList, SearchEngine

__all__ = [
    "ABTestResult",
    "run_ab_test",
    "GateCostReport",
    "compare_gate_strategies",
    "gate_network_flops",
    "mlp_flops",
    "model_flops",
    "RankedList",
    "SearchEngine",
]
