"""Micro-batch scheduler: coalesce concurrent queries into one forward.

Production rankers never score one query at a time — a scheduler collects
the queries that arrive within a short window and runs them through the
model as a single batch, trading a bounded queueing delay for much higher
hardware utilization.  This module implements that tick loop over the
:class:`~repro.serving.engine.SearchEngine`:

* a query is **prepared** at submit time (retrieval + feature assembly,
  reusing the session cache's behaviour encodings);
* the pending set is **flushed** — one concatenated model forward — when it
  reaches ``max_batch_size`` or when the oldest entry has waited
  ``flush_deadline_ms`` (checked by :meth:`MicroBatcher.poll`);
* at flush, gate vectors are resolved per the §III-F1 deployed design: one
  gate evaluation per *cache-missing session* (batched across sessions),
  never one per candidate; cache hits skip the gate network entirely.

Scores are identical to the one-query-at-a-time path — the batcher changes
*when* the model runs, never *what* it computes — which
``tests/serving/test_batcher.py`` asserts end to end.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.data.schema import Batch
from repro.faults.breaker import CircuitBreaker
from repro.faults.injector import NULL_INJECTOR, CrashFault
from repro.obs.trace import NULL_SPAN, NULL_TRACE, NULL_TRACER
from repro.serving.cache import SessionCache
from repro.serving.degrade import TIER_FULL, TIER_POPULARITY, TIER_PREFILTER, DegradationPolicy
from repro.serving.engine import RankedList, SearchEngine
from repro.serving.metrics import MetricsSink

__all__ = ["MicroBatcher", "PreparedQuery"]


@dataclass
class PreparedQuery:
    """One enqueued query with its features assembled and gate resolved."""

    user: int
    query_category: int
    candidates: np.ndarray
    batch: Batch
    gate: Optional[np.ndarray]  # (K,) cached session gate, None = cache miss
    enqueue_time: float
    #: Cache generation the gate was read under; if the cache's generation
    #: advances before the flush (a model hot-swap), the gate is stale and
    #: is re-resolved against the new model instead of being applied.
    gate_generation: int = 0
    #: The retrieval cascade the candidates came from (``None`` without
    #: one).  Candidates are snapshot state exactly like gate vectors: if
    #: the engine's cascade is swapped before the flush, these ids were
    #: retrieved against embeddings the scoring model no longer owns and
    #: must be re-retrieved.
    cascade: Optional[object] = None
    #: This request's trace (:data:`NULL_TRACE` when unsampled) and its
    #: open ``queue-wait`` span, ended when the flush picks the query up.
    trace: object = NULL_TRACE
    queue_span: object = NULL_SPAN

    @property
    def num_candidates(self) -> int:
        return int(self.candidates.size)


class MicroBatcher:
    """Deadline/size-triggered micro-batching over a :class:`SearchEngine`.

    Parameters
    ----------
    engine:
        The retrieval + ranking pipeline to serve through.
    max_batch_size:
        Flush as soon as this many queries are pending (size trigger).
    flush_deadline_ms:
        Maximum queueing delay: :meth:`poll` flushes once the oldest pending
        query has waited this long (deadline trigger).
    cache:
        Optional :class:`~repro.serving.cache.SessionCache`; enables gate
        reuse across sessions and behaviour-encoding reuse across queries.
    metrics:
        Optional :class:`~repro.serving.metrics.MetricsSink` receiving
        latency, batch-size, and cache accounting.
    clock:
        Time source in **seconds** (defaults to ``time.perf_counter``);
        tests pass a :class:`~repro.serving.metrics.ManualClock`.
    tracer:
        Optional :class:`repro.obs.Tracer`.  A sampled request's trace
        follows it end to end: ``submit`` (with ``gate`` / ``retrieve`` /
        ``assemble`` children), ``queue-wait`` (open from submit until the
        flush picks the query up), and ``flush`` (with the shared batched
        ``gate-flush`` and per-kernel ``rank`` work attached).  For
        consistent span offsets, pass the tracer the same ``clock``.
    """

    def __init__(
        self,
        engine: SearchEngine,
        max_batch_size: int = 8,
        flush_deadline_ms: float = 5.0,
        cache: Optional[SessionCache] = None,
        metrics: Optional[MetricsSink] = None,
        clock: Callable[[], float] = time.perf_counter,
        tracer=None,
        policy: Optional[DegradationPolicy] = None,
        injector=None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if flush_deadline_ms < 0:
            raise ValueError(f"flush_deadline_ms must be >= 0, got {flush_deadline_ms}")
        self.engine = engine
        self.max_batch_size = int(max_batch_size)
        self.flush_deadline_ms = float(flush_deadline_ms)
        self.cache = cache
        self.metrics = metrics if metrics is not None else MetricsSink(clock=clock)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Deadline budget + admission control (:class:`~repro.serving.
        #: degrade.DegradationPolicy`).  ``None`` — the default — performs
        #: no budget or queue checks at all: the pre-policy hot path.
        self.policy = policy
        self.injector = injector if injector is not None else NULL_INJECTOR
        #: Owning shard's circuit breaker; the batcher only reports flush
        #: outcomes to it — routing decisions live in the cluster.
        self.breaker = breaker
        self._clock = clock
        self._pending: List[PreparedQuery] = []

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of queries waiting for the next flush."""
        return len(self._pending)

    def submit(self, user: int, query_category: int) -> List[RankedList]:
        """Enqueue one query; returns flushed results when the size trigger
        fires, an empty list otherwise.

        With a :class:`~repro.serving.degrade.DegradationPolicy` attached,
        a request may instead be answered **immediately** below the full
        tier — shed at admission (queue over ``max_queue`` or drowning past
        ``deadline_ms``), dropped to the prefilter tier when submit-side
        preparation burns past the budget, or dropped to popularity when
        retrieval itself crashes.  Degraded requests never enter the queue,
        so every submit yields a response from *some* tier — nothing is
        dropped on the floor.  A ``crash`` fault at the ``batcher.submit``
        injection point raises before admission: the request is untouched
        and the cluster reroutes it to a sibling shard.
        """
        now = self._clock()
        self.injector.fire("batcher.submit", user=int(user), category=int(query_category))
        policy = self.policy
        if policy is not None and self._should_shed(now, policy):
            return [
                self._respond_degraded(
                    user, query_category, TIER_POPULARITY, "load_shed", now, shed=True
                )
            ]
        trace = self.tracer.trace("serve", user=int(user), category=int(query_category))
        use_gate = self.engine.supports_session_gate
        submit_span = trace.begin("submit")
        behavior = None
        if self.cache is not None:
            behavior = self.cache.get_behavior(user)
            if behavior is None:
                behavior = self.engine.encode_user_behavior(user)
                self.cache.put_behavior(user, behavior)
        # Gate resolution happens *before* retrieval: a cascade-enabled
        # engine scores retrieval through the same §III-F1 session gate, so
        # a cached vector saves the cascade its own gate evaluation — and on
        # a cache miss the vector the cascade computes is cached right here,
        # so neither the flush nor a later query evaluates this session's
        # gate again.
        gate = None
        generation = 0
        with trace.span("gate") as gate_span:
            if use_gate and self.cache is not None:
                gate = self.cache.get_gate(user, query_category)
                generation = self.cache.generation
            gate_span.set(cache_hit=gate is not None)
            if use_gate and gate is None and self.engine.cascade is not None:
                gate = self.engine.cascade.resolve_gate(user, query_category)
                if gate is not None and self.cache is not None:
                    self.cache.put_gate(user, query_category, gate)
                    generation = self.cache.generation
        try:
            with trace.span("retrieve", cascade=self.engine.cascade is not None) as span:
                candidates = self.engine.retrieve(
                    query_category, user=user, gate=gate, trace=trace
                )
                span.set(candidates=int(candidates.size))
        except CrashFault:
            # Retrieval is gone for this call; the popularity prior still
            # answers (no cascade, no model) — degraded beats dropped.
            submit_span.end()
            return [
                self._respond_degraded(
                    user, query_category, TIER_POPULARITY, "retrieve_failure",
                    now, trace=trace,
                )
            ]
        if policy is not None:
            elapsed_ms = (self._clock() - now) * 1000.0
            if elapsed_ms > policy.degrade_after_ms:
                # Submit-side preparation (gate + retrieval) already burned
                # the full-tier budget — a latency spike in the cascade, say
                # — so answer now from the prefilter over the shortlist we
                # just retrieved instead of queueing for a forward that
                # would land past the deadline.
                submit_span.end()
                return [
                    self._respond_degraded(
                        user, query_category, TIER_PREFILTER, "deadline_budget",
                        now, trace=trace, candidates=candidates,
                    )
                ]
        with trace.span("assemble"):
            batch = self.engine.build_batch(
                user, query_category, candidates, behavior=behavior
            )
        submit_span.end()
        self._pending.append(
            PreparedQuery(
                user=user,
                query_category=query_category,
                candidates=candidates,
                batch=batch,
                gate=gate,
                enqueue_time=now,
                gate_generation=generation,
                cascade=self.engine.cascade,
                trace=trace,
                queue_span=trace.begin("queue-wait"),
            )
        )
        if len(self._pending) >= self.max_batch_size:
            return self.flush()
        return []

    def poll(self) -> List[RankedList]:
        """Flush if the oldest pending query has exceeded the deadline.

        The comparison uses exactly :meth:`next_flush_due`'s arithmetic: a
        simulated-time driver that advances its clock *to* the due time must
        observe the flush fire (computing the wait as ``(now - enqueue) *
        1000 >= deadline_ms`` instead can fall one float ULP short of the
        deadline and spin forever).
        """
        if not self._pending:
            return []
        if self._clock() >= self._deadline():
            return self.flush()
        return []

    def _deadline(self) -> float:
        """Clock time (seconds) at which the oldest pending query expires."""
        return self._pending[0].enqueue_time + self.flush_deadline_ms / 1000.0

    def next_flush_due(self) -> Optional[float]:
        """Clock time (seconds) when the deadline trigger next fires, or
        ``None`` with nothing pending.  Simulated-time drivers advance the
        clock here before polling so queueing latency reflects the deadline,
        not the gap until the next arrival."""
        if not self._pending:
            return None
        return self._deadline()

    # ------------------------------------------------------------------
    # degradation ladder
    # ------------------------------------------------------------------
    def _should_shed(self, now: float, policy: DegradationPolicy) -> bool:
        """Admission control: is the queue too deep or too stale to join?"""
        if policy.max_queue is not None and len(self._pending) >= policy.max_queue:
            return True
        if policy.shed_when_stale and self._pending:
            waited_ms = (now - self._pending[0].enqueue_time) * 1000.0
            return waited_ms > policy.deadline_ms
        return False

    def _respond_degraded(
        self,
        user: int,
        query_category: int,
        tier: str,
        reason: str,
        enqueue_time: float,
        trace=NULL_TRACE,
        candidates: Optional[np.ndarray] = None,
        shed: bool = False,
    ) -> RankedList:
        """Answer one request below the full tier, immediately.

        The response is produced by :meth:`SearchEngine.degraded_ranking`
        (which may itself fall further down the ladder), counted on the
        metrics sink, stamped on the trace as a span attribute, and logged
        as a typed ``load_shed`` / ``degraded`` event.
        """
        items, scores, tier = self.engine.degraded_ranking(
            user, query_category, tier, candidates=candidates
        )
        done = self._clock()
        latency_ms = (done - enqueue_time) * 1000.0
        self.engine.record_query(latency_ms)
        self.metrics.record_query(latency_ms, now=done)
        self.metrics.record_tier(tier)
        if shed:
            self.metrics.record_shed()
            self.metrics.events.record(
                "load_shed", done, user=int(user), queued=len(self._pending)
            )
        else:
            self.metrics.events.record(
                "degraded", done, tier=tier, reason=reason, user=int(user)
            )
        trace.finish(latency_ms=latency_ms, tier=tier, degraded=reason)
        return RankedList(
            user=user,
            query_category=query_category,
            items=items,
            scores=scores,
            latency_ms=latency_ms,
            model_version=self.engine.model_version,
            tier=tier,
        )

    def _flush_degraded(self, pending: List[PreparedQuery], exc: Exception) -> List[RankedList]:
        """Answer a whole failed flush one tier down.

        Each query keeps its own submit-time shortlist, so the prefilter
        tier still ranks personalized retrievals; without a cascade the
        popularity prior answers.  The flush therefore *never* raises —
        ``poll``/``replay`` drivers survive any scoring failure.
        """
        reason = f"flush:{type(exc).__name__}"
        results = [
            self._respond_degraded(
                q.user,
                q.query_category,
                TIER_PREFILTER if self.engine.cascade is not None else TIER_POPULARITY,
                reason,
                q.enqueue_time,
                trace=q.trace,
                candidates=q.candidates,
            )
            for q in pending
        ]
        if self.cache is not None:
            self.metrics.record_cache(self.cache.gates.stats)
        return results

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def flush(self) -> List[RankedList]:
        """Score every pending query in one padded model forward.

        Sampled traces get the shared micro-batched work attached: each
        opens a ``flush`` span holding the batched ``gate-flush`` forward
        (timed once, recorded on every sampled trace) and the ``rank``
        forward with one child span per fused kernel.
        """
        if not self._pending:
            return []
        pending, self._pending = self._pending, []
        keys = pending[0].batch.keys()

        for q in pending:
            q.queue_span.end()
        # (query, flush span) pairs for the sampled subset only — with
        # tracing off this list is empty and nothing below touches it.
        sampled = [
            (q, q.trace.begin("flush", batch_size=len(pending)))
            for q in pending
            if q.trace.sampled
        ]

        # Stale-retrieval guard: a model swap between submit and flush also
        # swaps the engine's cascade; candidates retrieved from the old
        # snapshot were chosen against embeddings the scoring model no
        # longer owns, so they are re-retrieved (and their features
        # reassembled) against the current one.  The sanctioned swap path
        # drains first, so this fires only on a swap that skipped the drain
        # — the retrieval analogue of the stale-gate guard below.
        for q in pending:
            if q.cascade is not self.engine.cascade:
                q.candidates = self.engine.retrieve(q.query_category, user=q.user)
                q.batch = self.engine.build_batch(q.user, q.query_category, q.candidates)
                q.gate = None
                q.cascade = self.engine.cascade

        # Stale-gate guard: a model swap between submit and flush bumps the
        # cache generation; any gate resolved under an older generation was
        # produced by the previous model and must not score this batch.
        if self.cache is not None:
            for q in pending:
                if q.gate is not None and q.gate_generation != self.cache.generation:
                    q.gate = None
                    q.gate_generation = self.cache.generation

        rank_spans = []
        try:
            self.injector.fire("batcher.flush", batch=len(pending))
            gate_rows: Optional[np.ndarray] = None
            if self.engine.supports_session_gate:
                missing = sum(1 for q in pending if q.gate is None)
                gate_begin = self._clock()
                self._resolve_gates(pending, keys)
                gate_end = self._clock()
                for q, flush_span in sampled:
                    q.trace.record_span(
                        "gate-flush", gate_begin, gate_end,
                        parent=flush_span, sessions=missing,
                    )
                gate_rows = np.concatenate(
                    [np.tile(q.gate, (q.num_candidates, 1)) for q in pending], axis=0
                )

            combined: Batch = {
                key: np.concatenate([q.batch[key] for q in pending], axis=0)
                for key in keys
            }
            step_hook = None
            if sampled:
                total_rows = int(combined["label"].shape[0])
                # ``begin`` nests each rank span under its trace's open flush
                # span; the hook fans every kernel's interval out to all of
                # them.
                rank_spans = [
                    (q.trace, q.trace.begin("rank", rows=total_rows)) for q, _ in sampled
                ]

                def step_hook(step, seconds):
                    now = self._clock()
                    for trace, rank_span in rank_spans:
                        trace.record_span(
                            step.name, now - seconds, now,
                            parent=rank_span, kind=step.kind, flops=step.flops,
                        )

            scores = self.engine.score_candidates(
                combined, gate=gate_rows, step_hook=step_hook
            )
        except Exception as exc:
            # The batched forward (or its gate resolution) failed — degrade
            # every queued request one tier instead of losing the batch.
            # The shard's breaker counts the failure; enough of them in a
            # row and the cluster stops routing here until the cooldown.
            for _, rank_span in rank_spans:
                rank_span.end()
            for _, flush_span in sampled:
                flush_span.end()
            if self.breaker is not None:
                self.breaker.record_failure()
            return self._flush_degraded(pending, exc)
        if self.breaker is not None:
            self.breaker.record_success()
        for _, rank_span in rank_spans:
            rank_span.end()
        self.metrics.record_batch(len(pending))

        for _, flush_span in sampled:
            flush_span.end()

        results: List[RankedList] = []
        done = self._clock()
        offset = 0
        for q in pending:
            query_scores = scores[offset : offset + q.num_candidates]
            offset += q.num_candidates
            order = np.argsort(-query_scores, kind="stable")
            latency_ms = (done - q.enqueue_time) * 1000.0
            self.engine.record_query(latency_ms)
            self.metrics.record_query(latency_ms, now=done)
            self.metrics.record_tier(TIER_FULL)
            q.trace.finish(latency_ms=latency_ms, batch_size=len(pending), tier=TIER_FULL)
            results.append(
                RankedList(
                    user=q.user,
                    query_category=q.query_category,
                    items=q.candidates[order],
                    scores=query_scores[order],
                    latency_ms=latency_ms,
                    model_version=self.engine.model_version,
                )
            )
        if self.cache is not None:
            self.metrics.record_cache(self.cache.gates.stats)
        return results

    def _resolve_gates(self, pending: List[PreparedQuery], keys) -> None:
        """Fill cache-missing gate vectors with ONE batched gate forward.

        The gate is candidate-independent (§III-F1), so each missing session
        contributes a single row — its first candidate — to the gate batch.
        """
        missing = [q for q in pending if q.gate is None]
        if not missing:
            return
        gate_batch: Batch = {
            key: np.concatenate([q.batch[key][:1] for q in missing], axis=0) for key in keys
        }
        # Resolved through the engine so the compiled gate plan (when one
        # exists) serves the cache, not the eager gate network.
        gates = self.engine.serving_gate(gate_batch)  # (len(missing), K)
        for q, gate in zip(missing, gates):
            q.gate = gate
            if self.cache is not None:
                self.cache.put_gate(q.user, q.query_category, gate)
