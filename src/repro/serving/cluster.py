"""Sharded serving cluster: hash users across N micro-batching workers.

Scaling past one worker requires a router.  Users are hashed onto shards
with a fixed multiplicative hash — *not* Python's randomized ``hash`` — so
the mapping is deterministic across processes and runs: the same user always
lands on the same worker, which is what makes per-shard session caches
effective (a user's gate vectors and behaviour encodings live on exactly one
shard and are never duplicated or thrashed across the fleet).

Each shard owns a full serving stack: a :class:`~repro.serving.engine.SearchEngine`
with its own RNG stream (derived from one :class:`~repro.utils.rng.SeedBank`
root so the fleet is reproducible), a :class:`~repro.serving.cache.SessionCache`,
a :class:`~repro.serving.batcher.MicroBatcher`, and a
:class:`~repro.serving.metrics.MetricsSink`.  The cluster merges the
per-shard sinks into one fleet report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.ranking_model import RankingModel
from repro.data.synthetic import World
from repro.faults.breaker import CircuitBreaker
from repro.faults.injector import NULL_INJECTOR, CrashFault
from repro.obs import (
    NULL_TRACER,
    AlertManager,
    DriftMonitor,
    ShadowRecallMonitor,
    SloTracker,
    write_dashboard,
)
from repro.retrieval import CascadeConfig
from repro.serving.batcher import MicroBatcher
from repro.serving.cache import SessionCache
from repro.serving.degrade import TIER_POPULARITY, DegradationPolicy
from repro.serving.engine import RankedList, SearchEngine
from repro.serving.metrics import MetricsSink
from repro.utils.rng import SeedBank
from repro.utils.tables import format_table

__all__ = ["ShardWorker", "ShardedCluster", "SwapFailed", "shard_for_user"]


class SwapFailed(RuntimeError):
    """A hot swap failed partway and the cluster rolled itself back.

    Raised by :meth:`ShardedCluster.swap_model` after every already-swapped
    shard has been restored to the previous model/cascade/generation — the
    fleet is consistent (all shards old) when this reaches the caller.
    ``drained`` carries the results flushed before the failure; they were
    scored by the old model and should still be delivered.
    """

    def __init__(self, message: str, drained: Optional[List[RankedList]] = None) -> None:
        super().__init__(message)
        self.drained: List[RankedList] = list(drained) if drained is not None else []

#: Knuth's multiplicative hash constant (2^32 / golden ratio).
_HASH_MULTIPLIER = 2654435761


def shard_for_user(user: int, num_shards: int) -> int:
    """Deterministic user → shard mapping (stable across runs/processes)."""
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    return int((int(user) * _HASH_MULTIPLIER) % (1 << 32)) % num_shards


@dataclass
class ShardWorker:
    """One shard's serving stack."""

    shard_id: int
    engine: SearchEngine
    cache: SessionCache
    batcher: MicroBatcher
    metrics: MetricsSink
    breaker: CircuitBreaker


class ShardedCluster:
    """Route queries across ``num_shards`` independent serving workers.

    All shards score with the same (shared) model weights — as production
    replicas do — but own disjoint RNG streams, caches, and batch queues.
    """

    def __init__(
        self,
        world: World,
        model: RankingModel,
        num_shards: int,
        seed: int = 0,
        max_batch_size: int = 8,
        flush_deadline_ms: float = 5.0,
        cache_capacity: int = 512,
        candidates_per_query: Optional[int] = None,
        clock: Callable[[], float] = time.perf_counter,
        compile: bool = True,
        cascade: Optional[CascadeConfig] = None,
        tracer=None,
        slo: Optional[SloTracker] = None,
        shadow_recall: Optional[ShadowRecallMonitor] = None,
        drift: Optional[DriftMonitor] = None,
        alerts: Optional[AlertManager] = None,
        policy: Optional[DegradationPolicy] = None,
        injector=None,
        breaker_failure_threshold: int = 3,
        breaker_cooldown_s: float = 0.05,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = int(num_shards)
        self._clock = clock
        #: Fleet fault injector (:class:`repro.faults.FaultInjector`); each
        #: shard's engine/batcher receives a view bound with its shard id so
        #: plans can target individual shards.  ``None`` installs the no-op.
        self.injector = injector if injector is not None else NULL_INJECTOR
        #: Degradation policy shared by every shard's batcher (``None`` —
        #: the default — disables budget checks and admission control).
        self.policy = policy
        #: Fleet tracer, shared by every shard's engine and batcher (one
        #: sampling decision per request, wherever it lands).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Fleet SLO tracker: every shard's sink feeds the same sliding
        #: windows, so p99 and burn rate are fleet-wide quantities.
        self.slo = slo
        #: Fleet shadow-recall monitor, shared by every shard's engine (one
        #: sampling stream and one running recall across the fleet).
        self.shadow_recall = shadow_recall
        #: Optional fleet drift monitor / alert manager.  The cluster never
        #: feeds them itself — the online loop owns observation and
        #: evaluation — but holding references here lets ``fleet_report()``
        #: and the HTML dashboard surface their state next to the serving
        #: metrics they alarm on.
        self.drift = drift
        self.alerts = alerts
        #: Fleet-level control-plane sink: one entry per deployment event
        #: (hot swap, canary verdict, click-log lag) regardless of shard
        #: count; merged into :meth:`merged_metrics`.
        self.control = MetricsSink(clock=clock, slo=slo)
        bank = SeedBank(seed)
        self.workers: List[ShardWorker] = []
        # One cascade build for the whole fleet: shard 0 builds it, every
        # other shard gets a worker view (shared immutable snapshot, own
        # prefilter scratch) — probe pass, calibration, and k-means are paid
        # once, not per shard.
        shared_cascade = None
        for shard_id in range(self.num_shards):
            shard_injector = self.injector.bind(shard=shard_id)
            engine = SearchEngine(
                world,
                model,
                bank.child(f"shard-{shard_id}"),
                candidates_per_query=candidates_per_query,
                compile=compile,
                cascade=cascade,
                prebuilt_cascade=(
                    shared_cascade.worker_view() if shared_cascade is not None else None
                ),
                tracer=self.tracer,
                shadow_recall=shadow_recall,
                injector=shard_injector,
            )
            if cascade is not None and shared_cascade is None:
                shared_cascade = engine.cascade
            cache = SessionCache(cache_capacity)
            metrics = MetricsSink(clock=clock, slo=slo)
            breaker = CircuitBreaker(
                failure_threshold=breaker_failure_threshold,
                cooldown_s=breaker_cooldown_s,
                clock=clock,
            )
            batcher = MicroBatcher(
                engine,
                max_batch_size=max_batch_size,
                flush_deadline_ms=flush_deadline_ms,
                cache=cache,
                metrics=metrics,
                clock=clock,
                tracer=self.tracer,
                policy=policy,
                injector=shard_injector,
                breaker=breaker,
            )
            self.workers.append(
                ShardWorker(shard_id, engine, cache, batcher, metrics, breaker)
            )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard_for(self, user: int) -> int:
        return shard_for_user(user, self.num_shards)

    def worker_for(self, user: int) -> ShardWorker:
        return self.workers[self.shard_for(user)]

    def submit(self, user: int, query_category: int) -> List[RankedList]:
        """Route one query to its owning shard's batcher.

        Fault-aware routing: a shard whose circuit breaker is open is
        skipped, and a shard that crashes on the submit (a
        :class:`~repro.faults.CrashFault` at ``batcher.submit``) records a
        breaker failure and the query **reroutes deterministically** to the
        next sibling — ``(home + 1) % N``, ``(home + 2) % N``, … — so the
        same user under the same fault state always lands on the same
        fallback shard (its gate/behaviour caches stay warm there for the
        duration of the incident).  If every shard refuses, the home
        shard's popularity prior answers as the last-resort tier: a
        submitted query *always* yields a response.

        On the healthy path (home breaker closed, no crash) this is one
        extra attribute compare over the pre-breaker routing.
        """
        home = self.shard_for(user)
        for offset in range(self.num_shards):
            shard = (home + offset) % self.num_shards
            worker = self.workers[shard]
            breaker = worker.breaker
            if not breaker.allow():
                continue
            try:
                results = worker.batcher.submit(user, query_category)
            except CrashFault:
                previous = breaker.state
                breaker.record_failure()
                if breaker.state == CircuitBreaker.OPEN and previous != CircuitBreaker.OPEN:
                    self.control.events.record(
                        "circuit_open", self._clock(), shard=shard,
                        failures=breaker.failures_total,
                    )
                self.control.events.record(
                    "shard_failover", self._clock(), shard=shard, user=int(user)
                )
                continue
            previous = breaker.state
            breaker.record_success()
            if previous != CircuitBreaker.CLOSED and breaker.state == CircuitBreaker.CLOSED:
                self.control.events.record("circuit_closed", self._clock(), shard=shard)
            return results
        return [self._last_resort(user, query_category)]

    def _last_resort(self, user: int, query_category: int) -> RankedList:
        """Every shard open or crashing: the home engine's popularity prior
        still answers (no model forward, no cascade — nothing left to fail)."""
        worker = self.worker_for(user)
        items, scores, tier = worker.engine.degraded_ranking(
            user, query_category, TIER_POPULARITY
        )
        now = self._clock()
        worker.metrics.record_query(0.0, now=now)
        worker.metrics.record_tier(tier)
        worker.metrics.record_shed()
        self.control.events.record(
            "load_shed", now, user=int(user), reason="all_shards_unavailable"
        )
        return RankedList(
            user=user,
            query_category=query_category,
            items=items,
            scores=scores,
            latency_ms=0.0,
            model_version=worker.engine.model_version,
            tier=tier,
        )

    def poll(self) -> List[RankedList]:
        """Deadline check on every shard; returns all flushed results."""
        results: List[RankedList] = []
        for worker in self.workers:
            results.extend(worker.batcher.poll())
        return results

    def next_flush_due(self) -> Optional[float]:
        """Earliest deadline-trigger time across shards (``None`` if idle)."""
        dues = [
            due
            for worker in self.workers
            if (due := worker.batcher.next_flush_due()) is not None
        ]
        return min(dues) if dues else None

    def flush(self) -> List[RankedList]:
        """Force-flush every shard (end-of-traffic drain)."""
        results: List[RankedList] = []
        for worker in self.workers:
            results.extend(worker.batcher.flush())
        return results

    # ------------------------------------------------------------------
    # model lifecycle
    # ------------------------------------------------------------------
    @property
    def model_version(self) -> Optional[str]:
        """The version currently serving (identical across shards)."""
        return self.workers[0].engine.model_version

    @property
    def compile_enabled(self) -> bool:
        """Whether shards compile inference plans (identical across shards)."""
        return self.workers[0].engine.compile_enabled

    def swap_model(self, model: RankingModel, version: Optional[str] = None) -> List[RankedList]:
        """Hot-swap every shard to ``model`` with zero dropped queries.

        Per shard, in order: (1) force-flush the micro-batcher so every
        pending query is scored by the *old* model's plan — a flush is one
        plan execution, so no batch can mix versions or run a stale plan;
        (2) recompile and switch the engine's model+plan together
        (:meth:`SearchEngine.set_model` assigns them atomically), which —
        when the fleet runs the retrieval cascade — also rebuilds the ANN
        item index from the *new* weight snapshot and swaps it in the same
        assignment, so no post-swap query can retrieve against the old
        model's embeddings; (3) invalidate the session cache's gate vectors
        and bump its generation, so no gate computed by the old plan can
        ever be applied under the new one (the batcher additionally
        re-resolves any gate whose generation went stale between submit and
        flush).

        Each shard compiles its own plan: plans own mutable scratch
        buffers, so they are per-worker state exactly like caches and RNG
        streams.  The cascade's expensive build output (probe pass,
        calibration, index slabs) is an *immutable* snapshot, so it is
        built once — by the first shard's swap — and every other shard
        receives a :meth:`~repro.retrieval.RetrievalCascade.worker_view`
        sharing the snapshot with its own prefilter scratch.

        Returns the drained results (old-version rankings), which callers
        serving live traffic should still deliver.

        The swap is **transactional at fleet granularity**: the previous
        model/version/cascade of every shard is captured up front, and any
        failure mid-loop (an index-build exception, a ``swap.shard`` /
        ``cascade.build`` injected crash) rolls every already-swapped shard
        back to its captured state — including a fresh generation bump, so
        no gate vector resolved against the transient new model can
        survive — before raising :class:`SwapFailed`.  The cluster is
        always left in a *consistent generation*: all shards new on
        success, all shards old on failure, never mixed.
        """
        drained: List[RankedList] = []
        previous = [
            (worker.engine.model, worker.engine.model_version, worker.engine.cascade)
            for worker in self.workers
        ]
        swapped = 0
        try:
            shared_cascade = None
            for index, worker in enumerate(self.workers):
                drained.extend(worker.batcher.flush())
                self.injector.fire("swap.shard", shard=index, version=version)
                if index == 0:
                    worker.engine.set_model(model, version)
                    shared_cascade = worker.engine.cascade  # None without a cascade config
                else:
                    worker.engine.set_model(
                        model,
                        version,
                        cascade=(
                            shared_cascade.worker_view()
                            if shared_cascade is not None
                            else None
                        ),
                    )
                worker.cache.invalidate_all()
                swapped = index + 1
        except Exception as exc:
            # set_model assigns model/plan/cascade only after every build
            # step succeeds, so the failing shard itself is still old; the
            # shards before it swap back to their captured snapshots (the
            # old cascade objects are reused — no rebuild on the rollback
            # path) and get a second generation bump.
            for index in range(swapped):
                worker = self.workers[index]
                old_model, old_version, old_cascade = previous[index]
                worker.engine.set_model(old_model, old_version, cascade=old_cascade)
                worker.cache.invalidate_all()
            self.control.events.record(
                "rollback", self._clock(), version=version,
                swapped_shards=swapped, reason=type(exc).__name__,
            )
            raise SwapFailed(
                f"hot swap to {version!r} failed at shard {swapped}: {exc}",
                drained=drained,
            ) from exc
        self.control.events.record(
            "cache_invalidation", self._clock(), shards=self.num_shards
        )
        self.control.record_swap(version=version)
        return drained

    def attach_shadow_recall(self, monitor: Optional[ShadowRecallMonitor]) -> None:
        """Attach (or replace, or with ``None`` detach) the fleet's shared
        shadow-recall monitor at runtime.

        The ops pattern this serves: warm or benchmark a fleet clean, then
        switch sampling on — every shard's engine consults ``monitor`` on
        its next cascade retrieval.
        """
        self.shadow_recall = monitor
        for worker in self.workers:
            worker.engine.shadow_recall = monitor

    # ------------------------------------------------------------------
    # fleet health
    # ------------------------------------------------------------------
    @property
    def open_breakers(self) -> int:
        """Shards currently not fully closed (open or half-open)."""
        return sum(
            1 for worker in self.workers if worker.breaker.state != CircuitBreaker.CLOSED
        )

    def breaker_status(self) -> List[Dict[str, object]]:
        """Per-shard circuit-breaker health state."""
        return [
            {"shard": worker.shard_id, **worker.breaker.status()}
            for worker in self.workers
        ]

    # ------------------------------------------------------------------
    # fleet metrics
    # ------------------------------------------------------------------
    def merged_metrics(self) -> MetricsSink:
        """All shard sinks (plus the control-plane sink) pooled into one."""
        merged = self.control
        for worker in self.workers:
            merged = merged.merge(worker.metrics)
        return merged

    def summary(self) -> Dict[str, object]:
        """Fleet report: merged headline metrics plus a per-shard breakdown."""
        fleet = self.merged_metrics().summary()
        fleet["num_shards"] = self.num_shards
        fleet["shards"] = [
            {
                "shard": worker.shard_id,
                "queries": worker.metrics.queries,
                "avg_latency_ms": worker.engine.avg_latency_ms,
                "cache_hit_rate": worker.cache.gate_hit_rate,
                "breaker": worker.breaker.state,
            }
            for worker in self.workers
        ]
        fleet["breakers"] = self.breaker_status()
        return fleet

    def dashboard(
        self, path: str, registry=None, title: str = "repro fleet", traces=None
    ) -> str:
        """Write the self-contained HTML dashboard; returns ``path``.

        Renders everything the text :meth:`fleet_report` shows — fleet
        summary, streaming metrics, SLO, control-plane events — plus the
        drift, alert, and shadow-recall panels and the tracer's recent
        sampled span trees (request traces and, when the online loop shares
        this tracer, refresh-cycle traces).  ``registry`` merges extra
        metrics in (the online loop passes the trainer's registry so
        train-step histograms land on the same page).  ``traces`` overrides
        the trace list — pass ``list(loop.tracer.finished)`` to render the
        refresh-cycle spans when the loop's tracer is separate from the
        cluster's request tracer.
        """
        merged_registry = self.merged_metrics().to_registry()
        if registry is not None:
            merged_registry = merged_registry.merge(registry)
        summary = self.summary()
        degradation = summary["degradation"]
        flat_summary = {
            "shards": self.num_shards,
            "model_version": self.model_version or "unversioned",
            "queries": summary["queries"],
            "qps": round(summary["qps"], 1),
            "p50_ms": round(summary["latency_ms"]["p50"], 3),
            "p99_ms": round(summary["latency_ms"]["p99"], 3),
            "mean_batch": round(summary["mean_batch_size"], 2),
            "cache_hit_rate": round(summary["cache"]["hit_rate"], 4),
            "requests_shed": degradation["shed"],
            "degraded_share": round(degradation["degraded_share"], 4),
            "open_breakers": self.open_breakers,
        }
        return write_dashboard(
            path,
            title=title,
            summary=flat_summary,
            registry=merged_registry,
            slo=self.slo,
            events=self.control.events,
            drift=self.drift,
            alerts=self.alerts,
            shadow=self.shadow_recall,
            breakers=self.breaker_status(),
            tiers=degradation["tiers"],
            traces=(
                traces
                if traces is not None
                else (list(self.tracer.finished) if self.tracer.enabled else None)
            ),
        )

    def fleet_report(self, dashboard_path: Optional[str] = None) -> str:
        """Text dashboard of the fleet: headline metrics, per-shard
        breakdown, SLO status, drift/alert/shadow-recall state, and the
        recent control-plane event tail — what examples and benchmarks
        print after a traffic run.  ``dashboard_path`` additionally writes
        the HTML dashboard there and appends its location to the report."""
        merged = self.merged_metrics()
        summary = merged.summary()
        latency = summary["latency_ms"]
        version = self.model_version or "unversioned"
        sections = [
            format_table(
                ["queries", "qps", "p50 ms", "p95 ms", "p99 ms", "mean batch", "cache hit"],
                [[
                    summary["queries"],
                    f"{summary['qps']:.0f}",
                    f"{latency['p50']:.2f}",
                    f"{latency['p95']:.2f}",
                    f"{latency['p99']:.2f}",
                    f"{summary['mean_batch_size']:.2f}",
                    f"{summary['cache']['hit_rate']:.1%}",
                ]],
                title=f"fleet — {self.num_shards} shard(s), model {version}",
            ),
            format_table(
                ["shard", "queries", "avg ms", "cache hit", "breaker", "opens"],
                [
                    [
                        worker.shard_id,
                        worker.metrics.queries,
                        f"{worker.engine.avg_latency_ms:.2f}",
                        f"{worker.cache.gate_hit_rate:.1%}",
                        worker.breaker.state,
                        worker.breaker.opens,
                    ]
                    for worker in self.workers
                ],
                title="per-shard",
            ),
        ]
        degradation = summary["degradation"]
        tiers = degradation["tiers"]
        sections.append(
            format_table(
                ["full", "prefilter", "popularity", "shed", "degraded share", "open breakers"],
                [[
                    tiers.get("full", 0),
                    tiers.get("prefilter", 0),
                    tiers.get("popularity", 0),
                    degradation["shed"],
                    f"{degradation['degraded_share']:.2%}",
                    self.open_breakers,
                ]],
                title="degradation ladder",
            )
        )
        if self.slo is not None:
            status = self.slo.status()
            sections.append(
                f"SLO: p99 {status['p99_ms']:.2f} ms vs {status['latency_slo_ms']:.2f} ms"
                f" | violation rate {status['violation_rate']:.2%}"
                f" | error-budget burn {status['error_budget_burn_rate']:.2f}x"
                f" | {'HEALTHY' if status['healthy'] else 'BURNING'}"
            )
        if self.tracer.enabled:
            stats = self.tracer.stats()
            sections.append(
                f"tracing: {stats['sampled']}/{stats['started']} requests sampled"
                f" (rate {stats['sample_rate']:.2f}), {stats['exported']} exported"
            )
        if self.shadow_recall is not None and self.shadow_recall.samples:
            shadow = self.shadow_recall
            sections.append(
                f"shadow recall@{shadow.k}: {shadow.recall_at_k:.4f} over "
                f"{shadow.samples}/{shadow.requests} sampled retrievals"
                f" (rate {shadow.rate:.3%})"
            )
        if self.drift is not None and self.drift.has_reference:
            sections.append(
                format_table(
                    ["feature", "psi", "ks", "live n"],
                    [
                        [name, f"{scores['psi']:.4f}", f"{scores['ks']:.4f}",
                         scores["live_samples"]]
                        for name, scores in sorted(self.drift.scores().items())
                    ],
                    title="drift vs training reference",
                )
            )
        if self.alerts is not None and self.alerts.rules:
            firing = self.alerts.firing()
            sections.append(
                format_table(
                    ["rule", "predicate", "state", "last value"],
                    [
                        [
                            row["rule"],
                            f"{row['metric']} {row['op']} {row['threshold']:g}",
                            "FIRING" if row["firing"] else "ok",
                            "-" if row["last_value"] is None
                            else f"{row['last_value']:.4f}",
                        ]
                        for row in self.alerts.status()
                    ],
                    title=f"alerts — {len(firing)} firing",
                )
            )
        events = self.control.events.tail(5)
        if events:
            sections.append(
                format_table(
                    ["t", "kind", "attrs"],
                    [
                        [f"{event.timestamp:.3f}", event.kind, str(event.attrs)]
                        for event in events
                    ],
                    title="recent control-plane events",
                )
            )
        if dashboard_path is not None:
            sections.append(f"dashboard: {self.dashboard(dashboard_path)}")
        return "\n\n".join(sections)
