"""Supervised multi-process serving fleet over shared-memory model slabs.

:class:`~repro.serving.cluster.ShardedCluster` scales the serving stack
across shards *inside one interpreter*; this module promotes those shards
to real worker processes, which is what the compiled plan's contiguous
weight buffers (PR 3) and the cascade's cell-ordered index slabs (PR 5)
were packed for: the supervisor publishes one
:class:`~repro.infer.slabs.SnapshotSlab` holding the model, the world, and
the detached cascade build, and every worker maps it zero-copy — the
weights exist once in physical memory no matter how many processes serve.

The robustness core is :class:`FleetSupervisor`:

* **Heartbeats** — workers beat over their pipe every
  ``heartbeat_interval_s`` carrying a cumulative telemetry snapshot
  (metrics sink, shadow recall, injector log); a worker silent past
  ``heartbeat_deadline_s`` is declared hung, killed, and restarted.
* **Crash detection** — a dead pipe or a nonzero exit is a worker death;
  the supervisor emits a typed ``worker_died`` event (exit code, beats
  missed, outstanding requests) and merges the worker's **last-flushed
  snapshot** so no telemetry is lost to an abnormal exit.
* **Zero drops** — requests in flight on a dead worker re-dispatch
  deterministically through the same ``(home + offset) % N`` failover
  order the in-process cluster uses, and when no worker is available the
  supervisor itself answers from the popularity prior (the PR 8
  degradation-ladder floor), so every submitted request is answered.
* **Restart with backoff + flap quarantine** — restarts reuse the
  currently published slab generation and back off exponentially; a worker
  that keeps dying inside ``quarantine_window_s`` is parked
  (``worker_quarantined``) and its users reroute to siblings.
* **Atomic hot swap** — ``swap_model`` publishes the new generation's
  slab, verifies it, flips workers one by one (drain → attach → ack), and
  unlinks the old slab only after every live worker has acked the flip;
  restarts that race the swap attach the new generation.  A torn publish
  (injected or real) is destroyed and retried — readers can never observe
  a mixed generation because a slab is only attachable once its header
  commits.
* **Orphan sweep** — startup and shutdown reclaim stale ``repro_slab_*``
  segments left by a crashed supervisor (``state_recovered`` events).

Fault injection threads through the new layer at ``worker.spawn``,
``worker.exec``, ``worker.heartbeat`` and ``slab.publish``; a
:class:`~repro.faults.FaultPlan` ships to each worker, whose injector
binds ``worker=<id>``/``shard=<id>`` so plans target individual processes
deterministically.

:func:`build_fleet` is the front door: ``backend="process"`` builds the
supervisor, ``backend="inprocess"`` returns a plain
:class:`ShardedCluster` — the *same object* PR 8 shipped, so the fallback
path is bitwise-identical — and ``backend="auto"`` picks by platform.
"""

from __future__ import annotations

import os
import signal
import time
import traceback
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.core.ranking_model import RankingModel
from repro.data.synthetic import World
from repro.faults.breaker import CircuitBreaker
from repro.faults.injector import (
    NULL_INJECTOR,
    CrashFault,
    FaultInjector,
    FaultPlan,
    InjectedFault,
)
from repro.infer.compiler import CompileError, compile_model
from repro.infer.slabs import (
    SnapshotSlab,
    TornSlabError,
    shared_memory_available,
    sweep_orphan_slabs,
)
from repro.obs import ShadowRecallMonitor
from repro.retrieval import CascadeConfig, RetrievalCascade, category_popularity_probs
from repro.serving.batcher import MicroBatcher
from repro.serving.cache import SessionCache
from repro.serving.cluster import ShardedCluster, SwapFailed, shard_for_user
from repro.serving.degrade import TIER_POPULARITY, DegradationPolicy
from repro.serving.engine import RankedList, SearchEngine
from repro.serving.metrics import MetricsSink
from repro.utils.rng import SeedBank
from repro.utils.tables import format_table

__all__ = ["FleetConfig", "FleetSupervisor", "build_fleet"]

#: Worker states tracked by the supervisor.
HEALTHY = "healthy"
RESTARTING = "restarting"
QUARANTINED = "quarantined"
STOPPED = "stopped"

#: Exit code a worker uses for an injected ``worker.exec`` crash (the
#: simulated OOM kill) — distinguishable from a real fault in the logs.
_EXIT_EXEC_CRASH = 13
#: Exit code for an unexpected exception escaping the worker loop.
_EXIT_FATAL = 21


class _WorkerFailure(Exception):
    """Internal: a worker died or hung mid-exchange; reason in ``args[0]``."""


class _RequestRejected(Exception):
    """Internal: the worker refused this request (breaker open / injected
    crash at its batcher) — fail over without killing the process."""


@dataclass(frozen=True)
class FleetConfig:
    """Everything a worker process needs to rebuild its serving stack.

    The per-shard construction parameters mirror
    :class:`~repro.serving.cluster.ShardedCluster` exactly — same
    :class:`~repro.utils.rng.SeedBank` child streams, same batcher/cache
    wiring — which is what makes the process fleet's scores bitwise
    identical to the in-process fleet's.  The supervisor-only knobs
    (heartbeat, backoff, quarantine) tune the robustness machinery.
    """

    num_workers: int = 2
    seed: int = 0
    max_batch_size: int = 8
    flush_deadline_ms: float = 5.0
    cache_capacity: int = 512
    candidates_per_query: Optional[int] = None
    compile: bool = True
    cascade: Optional[CascadeConfig] = None
    policy: Optional[DegradationPolicy] = None
    breaker_failure_threshold: int = 3
    breaker_cooldown_s: float = 0.05
    shadow_recall_rate: float = 0.0
    shadow_recall_k: int = 10
    # --- supervisor knobs -------------------------------------------------
    heartbeat_interval_s: float = 0.05
    heartbeat_deadline_s: float = 1.0
    request_timeout_s: float = 10.0
    startup_timeout_s: float = 30.0
    restart_backoff_s: float = 0.05
    restart_backoff_max_s: float = 2.0
    max_restarts: int = 3
    quarantine_window_s: float = 30.0
    start_method: str = "fork"

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {self.num_workers}")
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be > 0")
        if self.heartbeat_deadline_s < self.heartbeat_interval_s:
            raise ValueError("heartbeat_deadline_s must cover >= 1 interval")
        if self.max_restarts < 1:
            raise ValueError(f"max_restarts must be >= 1, got {self.max_restarts}")


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
class _WorkerSystem:
    """One worker's serving stack, rebuilt from an attached slab."""

    def __init__(
        self,
        worker_id: int,
        slab_name: str,
        config: FleetConfig,
        plan: Optional[FaultPlan],
    ) -> None:
        self.worker_id = int(worker_id)
        self.config = config
        self.injector = (
            FaultInjector(plan).bind(shard=self.worker_id, worker=self.worker_id)
            if plan is not None
            else NULL_INJECTOR
        )
        self.slab = SnapshotSlab.attach(slab_name)
        #: Superseded generations whose arrays may still be referenced by
        #: the engine (the world never changes across swaps, so its views
        #: stay rooted in the bootstrap generation's mapping).
        self._retired_slabs: List[SnapshotSlab] = []
        payload = self.slab.payload
        self.generation = int(payload["generation"])
        world: World = payload["world"]
        model: RankingModel = payload["model"]
        shadow = None
        if config.shadow_recall_rate > 0:
            shadow = ShadowRecallMonitor(
                rate=config.shadow_recall_rate,
                k=config.shadow_recall_k,
                seed=config.seed + self.worker_id + 1,
            )
        self.shadow = shadow
        # Construction mirrors ShardedCluster.__init__ for shard
        # ``worker_id``: same SeedBank child stream, same batcher wiring.
        bank = SeedBank(config.seed)
        self.engine = SearchEngine(
            world,
            model,
            bank.child(f"shard-{self.worker_id}"),
            candidates_per_query=config.candidates_per_query,
            model_version=payload.get("version"),
            compile=config.compile,
            cascade=config.cascade,
            prebuilt_cascade=self._cascade_view(payload),
            shadow_recall=shadow,
            injector=self.injector,
        )
        self.cache = SessionCache(config.cache_capacity)
        self.metrics = MetricsSink()
        self.breaker = CircuitBreaker(
            failure_threshold=config.breaker_failure_threshold,
            cooldown_s=config.breaker_cooldown_s,
        )
        self.batcher = MicroBatcher(
            self.engine,
            max_batch_size=config.max_batch_size,
            flush_deadline_ms=config.flush_deadline_ms,
            cache=self.cache,
            metrics=self.metrics,
            policy=config.policy,
            injector=self.injector,
            breaker=self.breaker,
        )

    @staticmethod
    def _cascade_view(payload: Dict[str, Any]) -> Optional[RetrievalCascade]:
        detached = payload.get("cascade")
        if detached is None:
            return None
        # worker_view restores the per-worker prefilter scratch; set_model
        # binds this worker's compiled plan as the scorer.
        return detached.worker_view()

    # ------------------------------------------------------------------
    def report(self) -> Dict[str, Any]:
        """Cumulative telemetry snapshot — associative, so the supervisor
        always merges only the *latest* snapshot per worker incarnation."""
        return {
            "worker": self.worker_id,
            "pid": os.getpid(),
            "generation": self.generation,
            "metrics": self.metrics,
            "shadow": self.shadow,
            "queries": self.engine.queries_served,
            "avg_latency_ms": self.engine.avg_latency_ms,
            "cache_hit_rate": self.cache.gate_hit_rate,
            "breaker": self.breaker.state,
            "faults_fired": self.injector.fired(),
        }

    def handle_submit(self, user: int, category: int) -> List[RankedList]:
        if not self.breaker.allow():
            raise _RequestRejected("breaker_open")
        try:
            results = self.batcher.submit(user, category)
        except CrashFault:
            self.breaker.record_failure()
            raise _RequestRejected("crash") from None
        self.breaker.record_success()
        return results

    def handle_swap(self, slab_name: str) -> List[RankedList]:
        drained = self.batcher.flush()
        new_slab = SnapshotSlab.attach(slab_name)
        payload = new_slab.payload
        self.engine.set_model(
            payload["model"],
            payload.get("version"),
            cascade=self._cascade_view(payload),
        )
        self.cache.invalidate_all()
        self.generation = int(payload["generation"])
        # The old mapping must stay mapped: numpy views do NOT pin a
        # SharedMemory mapping (close() unmaps under them), and the engine
        # still holds world arrays from the generation it was built on.
        # Retaining the handle costs one idle mapping per swap; the pages
        # are freed when the worker restarts or stops.
        self._retired_slabs.append(self.slab)
        self.slab = new_slab
        return drained


def _fleet_worker_main(
    worker_id: int,
    slab_name: str,
    config: FleetConfig,
    plan: Optional[FaultPlan],
    conn: Any,
) -> None:
    """Worker entry point: attach the slab, serve the pipe, beat."""
    try:
        system = _WorkerSystem(worker_id, slab_name, config, plan)
    except Exception:
        try:
            conn.send(("fatal", worker_id, traceback.format_exc()))
        except OSError:
            pass
        os._exit(_EXIT_FATAL)
    conn.send(("ready", worker_id, os.getpid(), system.generation))
    last_beat = time.monotonic()
    try:
        while True:
            now = time.monotonic()
            if now - last_beat >= config.heartbeat_interval_s:
                last_beat = now
                try:
                    system.injector.fire("worker.heartbeat")
                    conn.send(
                        ("beat", worker_id, now, system.generation, system.report())
                    )
                except InjectedFault:
                    pass  # the beat is lost — that *is* the fault
            timeout = max(0.0, last_beat + config.heartbeat_interval_s - now)
            due = system.batcher.next_flush_due()
            if due is not None:
                timeout = min(timeout, max(0.0, due - time.perf_counter()))
            if not conn.poll(timeout):
                flushed = system.batcher.poll()
                if flushed:
                    conn.send(("results", worker_id, flushed, system.generation))
                continue
            message = conn.recv()
            op, rid = message[0], message[1]
            if op == "stop":
                conn.send(("ack", rid, "stop", system.report(), system.generation))
                break
            try:
                if op == "submit":
                    _, _, user, category = message
                    try:
                        system.injector.fire("worker.exec", op="submit", user=user)
                    except CrashFault:
                        os._exit(_EXIT_EXEC_CRASH)  # simulated OOM kill
                    payload: Any = system.handle_submit(user, category)
                elif op == "flush":
                    system.injector.fire("worker.exec", op="flush")
                    payload = system.batcher.flush()
                elif op == "poll":
                    payload = system.batcher.poll()
                elif op == "swap":
                    _, _, new_name, _version = message
                    system.injector.fire("worker.exec", op="swap")
                    payload = system.handle_swap(new_name)
                elif op == "report":
                    payload = system.report()
                else:
                    raise RuntimeError(f"unknown fleet op {op!r}")
            except _RequestRejected as rejected:
                conn.send(("nack", rid, str(rejected)))
                continue
            except InjectedFault as fault:
                conn.send(("nack", rid, type(fault).__name__))
                continue
            conn.send(("ack", rid, op, payload, system.generation))
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # supervisor went away — exit quietly
    except Exception:
        try:
            conn.send(("fatal", worker_id, traceback.format_exc()))
        except OSError:
            pass
        os._exit(_EXIT_FATAL)
    finally:
        try:
            conn.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------
@dataclass
class _WorkerHandle:
    """Supervisor-side bookkeeping for one worker slot."""

    worker_id: int
    state: str = RESTARTING
    process: Any = None
    conn: Any = None
    pid: Optional[int] = None
    generation: int = 0
    last_beat: float = 0.0
    last_report: Optional[Dict[str, Any]] = None
    #: FIFO of ``(user, category)`` queued on the worker, unanswered.
    outstanding: Deque[Tuple[int, int]] = field(default_factory=deque)
    restart_times: Deque[float] = field(default_factory=deque)
    restart_at: float = 0.0
    restarts: int = 0
    spawn_attempt: int = 0


class FleetSupervisor:
    """Own a pool of worker processes serving one published slab generation.

    The public surface is duck-typed to :class:`ShardedCluster` — ``submit``
    / ``poll`` / ``flush`` / ``swap_model`` / ``merged_metrics`` /
    ``summary`` / ``fleet_report`` — so load generators
    (:func:`repro.serving.loadgen.replay`) and soak drivers run unchanged
    against either backend.
    """

    def __init__(
        self,
        world: World,
        model: RankingModel,
        config: Optional[FleetConfig] = None,
        version: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if not shared_memory_available():
            raise RuntimeError(
                "POSIX shared memory unavailable; use build_fleet(backend='inprocess')"
            )
        self.config = config if config is not None else FleetConfig()
        self.num_workers = self.config.num_workers
        self.model_version = version
        self.generation = 0
        self.fault_plan = fault_plan
        #: Supervisor control-plane sink: fleet lifecycle events, shed
        #: queries, swap records — merged into :meth:`merged_metrics`.
        self.control = MetricsSink()
        self.injector = (
            FaultInjector(fault_plan, events=self.control.events)
            if fault_plan is not None
            else NULL_INJECTOR
        )
        #: Orphan segments reclaimed at startup (satellite: crash recovery).
        self.recovered_segments = sweep_orphan_slabs(
            events=self.control.events, clock=time.monotonic
        )
        self._world = world
        self._model = model
        self._by_category = [
            np.flatnonzero(world.item_category == cat)
            for cat in range(world.config.num_categories)
        ]
        self._pop_probs = category_popularity_probs(world)
        self._candidates = (
            self.config.candidates_per_query or world.config.items_per_session
        )
        self._rid = 0
        self._delivered: List[RankedList] = []
        self._redispatch: Deque[Tuple[int, int]] = deque()
        self._retired_reports: List[Dict[str, Any]] = []
        self._stopped = False
        import multiprocessing

        method = self.config.start_method
        if method not in multiprocessing.get_all_start_methods():
            method = "spawn"
        self._ctx = multiprocessing.get_context(method)
        self._slab = self._publish(model, version, generation=0)
        self.workers = [_WorkerHandle(worker_id=i) for i in range(self.num_workers)]
        for handle in self.workers:
            self._spawn(handle)

    # ------------------------------------------------------------------
    # slab lifecycle
    # ------------------------------------------------------------------
    def _build_cascade(self, model: RankingModel) -> Optional[RetrievalCascade]:
        if self.config.cascade is None:
            return None
        compiled = None
        if self.config.compile:
            try:
                compiled = compile_model(model)
            except CompileError:
                compiled = None
        cascade = RetrievalCascade.from_model(
            model,
            self._world,
            self.config.cascade,
            self._pop_probs,
            scorer=compiled if compiled is not None else model,
        )
        return cascade.detach_for_publish()

    def _publish(
        self, model: RankingModel, version: Optional[str], generation: int
    ) -> SnapshotSlab:
        """Publish one generation's slab, retrying torn publishes.

        A torn segment (the ``slab.publish`` ``torn_write`` fault — the
        injected stand-in for a crash mid-write) is destroyed and the
        publish retried under a fresh name; readers never see it because
        its header was never committed.
        """
        payload = {
            "world": self._world,
            "model": model,
            "cascade": self._build_cascade(model),
            "version": version,
            "generation": int(generation),
        }
        failures = 0
        while True:
            try:
                slab = SnapshotSlab.publish(
                    payload, injector=self.injector, generation=int(generation)
                )
            except TornSlabError as torn:
                torn.slab.destroy()
                self.control.events.record(
                    "slab_unlinked",
                    time.monotonic(),
                    segment=torn.slab.name,
                    generation=int(generation),
                    reason="torn_publish",
                )
                failures += 1
                if failures >= 3:
                    raise SwapFailed(
                        f"slab publish for generation {generation} torn "
                        f"{failures} times"
                    ) from torn
                continue
            except InjectedFault as fault:
                failures += 1
                if failures >= 3:
                    raise SwapFailed(
                        f"slab publish for generation {generation} failed: {fault}"
                    ) from fault
                continue
            break
        self.control.events.record(
            "slab_published",
            time.monotonic(),
            segment=slab.name,
            generation=int(generation),
            nbytes=slab.nbytes,
        )
        return slab

    # ------------------------------------------------------------------
    # spawn / restart / death
    # ------------------------------------------------------------------
    def _spawn(self, handle: _WorkerHandle) -> bool:
        handle.spawn_attempt += 1
        try:
            self.injector.fire(
                "worker.spawn", worker=handle.worker_id, attempt=handle.spawn_attempt
            )
        except InjectedFault as fault:
            self._schedule_restart(handle, reason=f"spawn_{type(fault).__name__}")
            return False
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_fleet_worker_main,
            args=(
                handle.worker_id,
                self._slab.name,
                self.config,
                self.fault_plan,
                child_conn,
            ),
            daemon=True,
            name=f"repro-fleet-{handle.worker_id}",
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        deadline = time.monotonic() + self.config.startup_timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not parent_conn.poll(max(remaining, 0.0)):
                self._on_death(handle, reason="spawn_timeout")
                return False
            try:
                message = parent_conn.recv()
            except (EOFError, OSError):
                self._on_death(handle, reason="spawn_died")
                return False
            if message[0] == "ready":
                break
            if message[0] == "fatal":
                self._on_death(handle, reason="spawn_fatal", detail=message[2])
                return False
            # beats or stale results from a previous incarnation: ignore.
        handle.pid = message[2]
        handle.generation = message[3]
        handle.state = HEALTHY
        handle.last_beat = time.monotonic()
        kind = "worker_restarted" if handle.restarts else "worker_spawned"
        self.control.events.record(
            kind,
            time.monotonic(),
            worker=handle.worker_id,
            pid=handle.pid,
            generation=handle.generation,
            attempt=handle.spawn_attempt,
        )
        return True

    def _schedule_restart(self, handle: _WorkerHandle, reason: str) -> None:
        now = time.monotonic()
        handle.restart_times.append(now)
        while (
            handle.restart_times
            and now - handle.restart_times[0] > self.config.quarantine_window_s
        ):
            handle.restart_times.popleft()
        handle.restarts += 1
        if len(handle.restart_times) > self.config.max_restarts:
            handle.state = QUARANTINED
            self.control.events.record(
                "worker_quarantined",
                now,
                worker=handle.worker_id,
                restarts_in_window=len(handle.restart_times),
                window_s=self.config.quarantine_window_s,
                reason=reason,
            )
            return
        backoff = min(
            self.config.restart_backoff_s * (2 ** (len(handle.restart_times) - 1)),
            self.config.restart_backoff_max_s,
        )
        handle.state = RESTARTING
        handle.restart_at = now + backoff

    def _on_death(
        self,
        handle: _WorkerHandle,
        reason: str,
        beats_missed: Optional[int] = None,
        detail: Optional[str] = None,
    ) -> None:
        """A worker is gone: harvest telemetry, re-queue its requests,
        schedule the restart (or quarantine)."""
        process = handle.process
        exit_code: Optional[int] = None
        if process is not None:
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=1.0)
            exit_code = process.exitcode
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:
                pass
            handle.conn = None
        # Final telemetry flush: the last-beaten snapshot is cumulative for
        # the incarnation, so merging it loses nothing the worker measured.
        if handle.last_report is not None:
            self._retired_reports.append(handle.last_report)
            handle.last_report = None
        orphaned = len(handle.outstanding)
        while handle.outstanding:
            self._redispatch.append(handle.outstanding.popleft())
        attrs: Dict[str, Any] = {
            "worker": handle.worker_id,
            "reason": reason,
            "exit_code": exit_code,
            "outstanding": orphaned,
        }
        if beats_missed is not None:
            attrs["beats_missed"] = beats_missed
        if detail is not None:
            attrs["detail"] = detail[-400:]
        self.control.events.record("worker_died", time.monotonic(), **attrs)
        handle.process = None
        handle.pid = None
        self._schedule_restart(handle, reason=reason)

    def _service(self) -> None:
        """Housekeeping pass: pump pipes, detect hangs, restart due workers."""
        if self._stopped:
            return
        now = time.monotonic()
        for handle in self.workers:
            if handle.state == HEALTHY:
                self._pump(handle)
            if handle.state == HEALTHY:
                process_dead = handle.process is not None and not handle.process.is_alive()
                silence = time.monotonic() - handle.last_beat
                if process_dead:
                    self._on_death(handle, reason="crashed")
                elif silence > self.config.heartbeat_deadline_s:
                    missed = int(silence / self.config.heartbeat_interval_s)
                    self._on_death(handle, reason="hung", beats_missed=missed)
            elif handle.state == RESTARTING and now >= handle.restart_at:
                self._spawn(handle)

    # ------------------------------------------------------------------
    # pipe pumping
    # ------------------------------------------------------------------
    def _pump(self, handle: _WorkerHandle) -> None:
        """Drain asynchronous traffic (beats, deadline-flush results)."""
        conn = handle.conn
        if conn is None:
            return
        try:
            while conn.poll(0):
                self._absorb(handle, conn.recv())
        except (EOFError, OSError):
            self._on_death(handle, reason="crashed")
        except _WorkerFailure as failure:
            detail = failure.args[1] if len(failure.args) > 1 else None
            self._on_death(handle, reason="fatal", detail=detail)

    def _absorb(self, handle: _WorkerHandle, message: Tuple) -> bool:
        """Process one asynchronous message; False for ack/nack (caller's)."""
        kind = message[0]
        if kind == "beat":
            handle.last_beat = time.monotonic()
            handle.generation = message[3]
            handle.last_report = message[4]
            return True
        if kind == "results":
            self._deliver(handle, message[2])
            return True
        if kind == "fatal":
            raise _WorkerFailure("fatal", message[2])
        return False

    def _deliver(self, handle: _WorkerHandle, results: List[RankedList]) -> None:
        for ranking in results:
            key = (int(ranking.user), int(ranking.query_category))
            try:
                handle.outstanding.remove(key)
            except ValueError:
                pass  # a redispatched twin already answered it
            self._delivered.append(ranking)

    def _exchange(self, handle: _WorkerHandle, request: Tuple, timeout: float) -> Tuple:
        """Send one request and wait for its ack, absorbing async traffic.

        Raises :class:`_WorkerFailure` on a dead pipe or timeout (the
        caller kills/restarts) and :class:`_RequestRejected` on a nack.
        """
        conn = handle.conn
        rid = request[1]
        try:
            conn.send(request)
        except (OSError, ValueError) as exc:
            raise _WorkerFailure("send_failed") from exc
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise _WorkerFailure("timeout")
            try:
                if not conn.poll(remaining):
                    raise _WorkerFailure("timeout")
                message = conn.recv()
            except (EOFError, OSError) as exc:
                raise _WorkerFailure("crashed") from exc
            if self._absorb(handle, message):
                continue
            kind = message[0]
            if kind == "nack" and message[1] == rid:
                raise _RequestRejected(message[2])
            if kind == "ack" and message[1] == rid:
                return message
            # stale ack from a timed-out earlier exchange: drop it.

    def _next_rid(self) -> int:
        self._rid += 1
        return self._rid

    # ------------------------------------------------------------------
    # serving surface (duck-typed to ShardedCluster)
    # ------------------------------------------------------------------
    def shard_for(self, user: int) -> int:
        return shard_for_user(user, self.num_workers)

    def submit(self, user: int, query_category: int) -> List[RankedList]:
        """Route one query; returns every result ready right now.

        The return value interleaves this query's batch results (if its
        batch flushed) with deadline flushes and re-dispatched answers that
        arrived on the pipes — exactly the at-least-once delivery contract
        ``poll``/``flush`` already have on the in-process cluster.
        """
        self._service()
        out = self._submit_once(int(user), int(query_category))
        out.extend(self._drain_redispatch())
        out.extend(self._drain_delivered())
        return out

    def _submit_once(self, user: int, category: int) -> List[RankedList]:
        home = self.shard_for(user)
        for offset in range(self.num_workers):
            handle = self.workers[(home + offset) % self.num_workers]
            if handle.state != HEALTHY:
                continue
            rid = self._next_rid()
            handle.outstanding.append((user, category))
            try:
                ack = self._exchange(
                    handle,
                    ("submit", rid, user, category),
                    self.config.request_timeout_s,
                )
            except _RequestRejected:
                try:
                    handle.outstanding.remove((user, category))
                except ValueError:
                    pass
                self.control.events.record(
                    "shard_failover",
                    time.monotonic(),
                    shard=handle.worker_id,
                    user=user,
                )
                continue
            except _WorkerFailure as failure:
                self._on_death(handle, reason=str(failure.args[0]))
                continue  # the request re-queued via outstanding → redispatch
            self._deliver(handle, ack[3])
            return self._drain_delivered()
        return [self._last_resort(user, category)]

    def _drain_redispatch(self) -> List[RankedList]:
        out: List[RankedList] = []
        while self._redispatch:
            user, category = self._redispatch.popleft()
            out.extend(self._submit_once(user, category))
        return out

    def _drain_delivered(self) -> List[RankedList]:
        delivered, self._delivered = self._delivered, []
        return delivered

    def _last_resort(self, user: int, query_category: int) -> RankedList:
        """No worker available: the popularity prior answers from the
        supervisor itself — the same ladder floor the in-process cluster
        serves, with nothing left to fail."""
        members = self._by_category[query_category]
        probs = self._pop_probs[query_category]
        order = np.argsort(-probs, kind="stable")[: self._candidates]
        now = time.monotonic()
        self.control.record_query(0.0)
        self.control.record_tier(TIER_POPULARITY)
        self.control.record_shed()
        self.control.events.record(
            "load_shed", now, user=int(user), reason="no_worker_available"
        )
        return RankedList(
            user=user,
            query_category=query_category,
            items=members[order],
            scores=probs[order].astype(np.float32),
            latency_ms=0.0,
            model_version=self.model_version,
            tier=TIER_POPULARITY,
        )

    def poll(self) -> List[RankedList]:
        """Deadline check across the fleet; returns everything flushed."""
        self._service()
        out = self._drain_redispatch()
        out.extend(self._drain_delivered())
        return out

    def next_flush_due(self) -> Optional[float]:
        """Workers flush on their own deadlines in real time."""
        return None

    def flush(self) -> List[RankedList]:
        """Force-flush every healthy worker (end-of-traffic drain)."""
        self._service()
        out: List[RankedList] = []
        for handle in self.workers:
            if handle.state != HEALTHY:
                continue
            rid = self._next_rid()
            try:
                ack = self._exchange(
                    handle, ("flush", rid), self.config.request_timeout_s
                )
            except _RequestRejected:
                continue
            except _WorkerFailure as failure:
                self._on_death(handle, reason=str(failure.args[0]))
                continue
            self._deliver(handle, ack[3])
        out.extend(self._drain_redispatch())
        out.extend(self._drain_delivered())
        return out

    # ------------------------------------------------------------------
    # model lifecycle
    # ------------------------------------------------------------------
    def swap_model(
        self, model: RankingModel, version: Optional[str] = None
    ) -> List[RankedList]:
        """Atomic generation flip: publish → verify → flip workers → unlink.

        The new slab is published and verified first (torn publishes are
        destroyed and retried; exhaustion raises :class:`SwapFailed` with
        the fleet still consistently on the old generation).  Once the new
        slab is durable the supervisor commits: every worker restart from
        here attaches the *new* generation, each live worker drains its
        batcher and flips (drain → attach → ack — no flush can mix
        versions), and the old slab is unlinked only after every live
        worker has acked.  A worker dying mid-flip restarts onto the new
        generation, so the fleet converges rather than mixing.
        """
        self._service()
        new_generation = self.generation + 1
        slab = self._publish(model, version, generation=new_generation)
        old_slab = self._slab
        # Commit point: restarts now attach the new generation.
        self._slab = slab
        self._model = model
        drained: List[RankedList] = []
        for handle in self.workers:
            if handle.state != HEALTHY:
                continue
            rid = self._next_rid()
            try:
                ack = self._exchange(
                    handle,
                    ("swap", rid, slab.name, version),
                    self.config.request_timeout_s,
                )
            except _RequestRejected:
                self._on_death(handle, reason="swap_rejected")
                continue
            except _WorkerFailure as failure:
                self._on_death(handle, reason=str(failure.args[0]))
                continue
            self._deliver(handle, ack[3])
            handle.generation = ack[4]
        self.generation = new_generation
        self.model_version = version
        old_slab.destroy()
        self.control.events.record(
            "slab_unlinked",
            time.monotonic(),
            segment=old_slab.name,
            generation=new_generation - 1,
            reason="superseded",
        )
        self.control.record_swap(version=version)
        self.control.events.record(
            "cache_invalidation", time.monotonic(), shards=self.num_workers
        )
        drained.extend(self._drain_redispatch())
        drained.extend(self._drain_delivered())
        return drained

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def refresh_reports(self) -> None:
        """Ask every healthy worker for a fresh cumulative snapshot."""
        self._service()
        for handle in self.workers:
            if handle.state != HEALTHY:
                continue
            rid = self._next_rid()
            try:
                ack = self._exchange(
                    handle, ("report", rid), self.config.request_timeout_s
                )
            except _RequestRejected:
                continue
            except _WorkerFailure as failure:
                self._on_death(handle, reason=str(failure.args[0]))
                continue
            handle.last_report = ack[3]
            handle.generation = ack[4]

    def merged_metrics(self) -> MetricsSink:
        """Control sink + every incarnation's latest snapshot, pooled."""
        merged = self.control
        for report in self._retired_reports:
            merged = merged.merge(report["metrics"])
        for handle in self.workers:
            if handle.last_report is not None:
                merged = merged.merge(handle.last_report["metrics"])
        return merged

    def merged_shadow_recall(self) -> Optional[ShadowRecallMonitor]:
        """Fleet-wide shadow recall (None when sampling is disabled)."""
        monitors = [
            report["shadow"]
            for report in self._retired_reports
            if report.get("shadow") is not None
        ]
        monitors.extend(
            handle.last_report["shadow"]
            for handle in self.workers
            if handle.last_report is not None
            and handle.last_report.get("shadow") is not None
        )
        if not monitors:
            return None
        merged = monitors[0]
        for monitor in monitors[1:]:
            merged = merged.merge(monitor)
        return merged

    @property
    def workers_available(self) -> int:
        return sum(1 for handle in self.workers if handle.state == HEALTHY)

    @property
    def restarts_total(self) -> int:
        return sum(handle.restarts for handle in self.workers)

    @property
    def quarantined_workers(self) -> int:
        return sum(1 for handle in self.workers if handle.state == QUARANTINED)

    def worker_status(self) -> List[Dict[str, Any]]:
        """Per-worker health rows for reports and dashboards."""
        rows = []
        for handle in self.workers:
            report = handle.last_report or {}
            rows.append(
                {
                    "worker": handle.worker_id,
                    "state": handle.state,
                    "pid": handle.pid,
                    "generation": handle.generation,
                    "restarts": handle.restarts,
                    "queries": report.get("queries", 0),
                    "outstanding": len(handle.outstanding),
                }
            )
        return rows

    def telemetry_extra(self) -> Dict[str, float]:
        """Scalars for :func:`repro.obs.telemetry_snapshot`'s ``extra`` —
        the namespace the fleet alert rules evaluate over."""
        return {
            "worker_restarts": float(self.restarts_total),
            "worker_deaths": float(
                self.control.events.counts().get("worker_died", 0)
            ),
            "quarantined_workers": float(self.quarantined_workers),
            "workers_available": float(self.workers_available),
            "slab_generation": float(self.generation),
            "slab_bytes": float(self._slab.nbytes),
        }

    def summary(self) -> Dict[str, Any]:
        """Fleet report: merged headline metrics + supervisor health."""
        self.refresh_reports()
        fleet = self.merged_metrics().summary()
        fleet["num_shards"] = self.num_workers
        fleet["backend"] = "process"
        fleet["generation"] = self.generation
        fleet["slab"] = self._slab.describe()
        fleet["workers"] = self.worker_status()
        fleet["restarts"] = self.restarts_total
        fleet["quarantined"] = self.quarantined_workers
        fleet["recovered_segments"] = list(self.recovered_segments)
        return fleet

    def fleet_report(self) -> str:
        """Text dashboard mirroring ``ShardedCluster.fleet_report``."""
        self.refresh_reports()
        merged = self.merged_metrics()
        summary = merged.summary()
        latency = summary["latency_ms"]
        version = self.model_version or "unversioned"
        sections = [
            format_table(
                ["queries", "qps", "p50 ms", "p99 ms", "mean batch", "generation"],
                [[
                    summary["queries"],
                    f"{summary['qps']:.0f}",
                    f"{latency['p50']:.2f}",
                    f"{latency['p99']:.2f}",
                    f"{summary['mean_batch_size']:.2f}",
                    self.generation,
                ]],
                title=(
                    f"process fleet — {self.num_workers} worker(s), model {version},"
                    f" slab {self._slab.nbytes / 1024:.0f} KiB"
                ),
            ),
            format_table(
                ["worker", "state", "pid", "gen", "restarts", "queries", "outstanding"],
                [
                    [
                        row["worker"], row["state"], row["pid"] or "-",
                        row["generation"], row["restarts"], row["queries"],
                        row["outstanding"],
                    ]
                    for row in self.worker_status()
                ],
                title="workers",
            ),
        ]
        events = self.control.events.tail(8)
        if events:
            sections.append(
                format_table(
                    ["t", "kind", "attrs"],
                    [
                        [f"{event.timestamp:.3f}", event.kind, str(event.attrs)]
                        for event in events
                    ],
                    title="recent supervisor events",
                )
            )
        return "\n\n".join(sections)

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Graceful shutdown: final telemetry flush, kill stragglers,
        unlink the published slab, sweep anything left."""
        if self._stopped:
            return
        self._stopped = True
        for handle in self.workers:
            if handle.state == HEALTHY and handle.conn is not None:
                rid = self._next_rid()
                try:
                    ack = self._exchange(handle, ("stop", rid), timeout=2.0)
                    handle.last_report = ack[3]
                except (_WorkerFailure, _RequestRejected):
                    pass
            if handle.last_report is not None:
                self._retired_reports.append(handle.last_report)
                handle.last_report = None
            process = handle.process
            if process is not None:
                process.join(timeout=1.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=1.0)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=1.0)
            if handle.conn is not None:
                try:
                    handle.conn.close()
                except OSError:
                    pass
                handle.conn = None
            handle.state = STOPPED
        self._slab.destroy()
        sweep_orphan_slabs(events=self.control.events, clock=time.monotonic)

    def __enter__(self) -> "FleetSupervisor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.stop()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # crash drill (used by chaos tests and the runbook)
    # ------------------------------------------------------------------
    def kill_worker(self, worker_id: int, sig: int = signal.SIGKILL) -> Optional[int]:
        """Send ``sig`` to a worker process — the crash-drill entry point.

        Returns the pid signalled (None if the worker has no live process).
        Detection, telemetry harvest, re-dispatch, and restart all happen
        through the normal supervision path on the next ``_service`` pass.
        """
        handle = self.workers[worker_id]
        if handle.process is None or not handle.process.is_alive():
            return None
        pid = handle.process.pid
        os.kill(pid, sig)
        handle.process.join(timeout=2.0)
        return pid


# ----------------------------------------------------------------------
# front door
# ----------------------------------------------------------------------
def build_fleet(
    world: World,
    model: RankingModel,
    config: Optional[FleetConfig] = None,
    backend: str = "auto",
    version: Optional[str] = None,
    fault_plan: Optional[FaultPlan] = None,
    **cluster_kwargs: Any,
):
    """Build a serving fleet: process-backed supervisor or in-process cluster.

    ``backend="inprocess"`` returns a plain :class:`ShardedCluster` built
    with the matching constructor arguments — the exact object (and
    therefore the exact behavior, bit for bit) the single-process path has
    always had.  ``backend="process"`` returns a :class:`FleetSupervisor`.
    ``backend="auto"`` picks ``process`` when POSIX shared memory works
    here and ``inprocess`` otherwise.  ``cluster_kwargs`` pass extra
    :class:`ShardedCluster` arguments (tracer, slo, …) on the in-process
    path only.
    """
    config = config if config is not None else FleetConfig()
    if backend == "auto":
        backend = "process" if shared_memory_available() else "inprocess"
    if backend == "process":
        if cluster_kwargs:
            raise TypeError(
                f"cluster kwargs {sorted(cluster_kwargs)} apply to the "
                "in-process backend only"
            )
        return FleetSupervisor(
            world, model, config, version=version, fault_plan=fault_plan
        )
    if backend != "inprocess":
        raise ValueError(f"unknown backend {backend!r}")
    injector = (
        FaultInjector(fault_plan) if fault_plan is not None else None
    )
    cluster = ShardedCluster(
        world,
        model,
        num_shards=config.num_workers,
        seed=config.seed,
        max_batch_size=config.max_batch_size,
        flush_deadline_ms=config.flush_deadline_ms,
        cache_capacity=config.cache_capacity,
        candidates_per_query=config.candidates_per_query,
        compile=config.compile,
        cascade=config.cascade,
        policy=config.policy,
        injector=injector,
        breaker_failure_threshold=config.breaker_failure_threshold,
        breaker_cooldown_s=config.breaker_cooldown_s,
        **cluster_kwargs,
    )
    if version is not None:
        for worker in cluster.workers:
            worker.engine.model_version = version
    return cluster


# Re-exported for convenience: tests and benchmarks parameterize over a
# config while keeping the frozen dataclass ergonomics.
def fleet_config(**overrides: Any) -> FleetConfig:
    """A :class:`FleetConfig` with ``overrides`` applied to the defaults."""
    return replace(FleetConfig(), **overrides)
