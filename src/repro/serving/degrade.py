"""Graceful degradation: the serving ladder and its admission policy.

Under fault pressure the fleet answers *something* for every request —
degraded beats dropped.  Three tiers, cheapest last:

* ``full`` — cascade retrieval + the compiled AW-MoE forward.  The normal
  path; every response outside an incident lands here.
* ``prefilter`` — the cascade's calibrated linear prefilter scores the
  already-retrieved shortlist and the full model is skipped.  Used when a
  request has burned too much of its deadline budget before ranking, or
  when the batched forward itself fails.
* ``popularity`` — the category's precomputed popularity prior orders the
  candidates; no model, no cascade, no per-user state.  Used for load
  shedding, dead-shard last resorts, and retrieval failures.

Every response is tagged with its tier (a :class:`~repro.serving.engine.
RankedList` field, a trace-span attribute, and a metrics counter), so
availability burn is measurable: ``degraded_share`` and ``shed_rate`` feed
the default fault alert rules in :mod:`repro.faults.chaos`.

:class:`DegradationPolicy` is opt-in: a batcher built without one (the
default) performs no budget checks, no queue-depth checks, and no extra
clock reads — the pre-policy hot path, bitwise identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "TIER_FULL",
    "TIER_PREFILTER",
    "TIER_POPULARITY",
    "TIERS",
    "DegradationPolicy",
]

TIER_FULL = "full"
TIER_PREFILTER = "prefilter"
TIER_POPULARITY = "popularity"

#: Ladder order, best tier first.
TIERS = (TIER_FULL, TIER_PREFILTER, TIER_POPULARITY)


@dataclass(frozen=True)
class DegradationPolicy:
    """Per-request deadline budget and admission control for the batcher.

    Parameters
    ----------
    deadline_ms:
        End-to-end per-request budget.  Arrivals are shed (answered
        immediately at the popularity tier) while the oldest queued request
        has already waited past this deadline — the queue is drowning, so
        new work must not pile on.
    full_budget_fraction:
        How much of ``deadline_ms`` submit-side preparation (gate +
        retrieval) may consume before the request drops to the prefilter
        tier instead of queueing for the full forward.
    max_queue:
        Bounded-queue admission control: arrivals beyond this many pending
        requests are shed.  ``None`` leaves the queue bounded only by the
        batcher's ``max_batch_size`` flush trigger.
    shed_when_stale:
        Disable to keep admission purely size-based (used by tests that
        want deterministic queue-depth shedding only).
    """

    deadline_ms: float = 50.0
    full_budget_fraction: float = 0.5
    max_queue: Optional[int] = None
    shed_when_stale: bool = True

    def __post_init__(self) -> None:
        if self.deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {self.deadline_ms}")
        if not 0.0 < self.full_budget_fraction <= 1.0:
            raise ValueError(
                f"full_budget_fraction must be in (0, 1], got {self.full_budget_fraction}"
            )
        if self.max_queue is not None and self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1 or None, got {self.max_queue}")

    @property
    def degrade_after_ms(self) -> float:
        """Submit-side budget before dropping to the prefilter tier."""
        return self.deadline_ms * self.full_budget_fraction
