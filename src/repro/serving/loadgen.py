"""Zipf-distributed traffic generation and deterministic replay.

Production e-commerce traffic is heavily skewed: a small head of very active
users issues most queries (the same skew the paper's long-tail analysis,
§III-D, is built around), and each user's queries concentrate on the
categories they care about.  The generator reproduces both:

* **users** are drawn from a Zipf law over a seeded random permutation of
  the user ids (so user 0 is not always the hottest);
* **query categories** follow the sampled user's interest distribution when
  a :class:`~repro.data.synthetic.World` is supplied (uniform otherwise);
* **arrival times** follow a Poisson process at ``target_qps``.

The repeated (user, category) pairs this skew produces are exactly what
makes the session gate cache (:mod:`repro.serving.cache`) pay off —
uniform traffic would never revisit a session key.

:func:`replay` drives any system with ``submit/poll/flush`` (a
:class:`~repro.serving.batcher.MicroBatcher` or a
:class:`~repro.serving.cluster.ShardedCluster`) through an event list,
advancing a :class:`~repro.serving.metrics.ManualClock` to each arrival so
simulated-time runs are fully deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.data.synthetic import World
from repro.serving.engine import RankedList
from repro.serving.metrics import ManualClock

__all__ = ["TrafficEvent", "ZipfLoadGenerator", "replay"]


@dataclass(frozen=True)
class TrafficEvent:
    """One query arrival."""

    time: float  # seconds since traffic start
    user: int
    query_category: int


class ZipfLoadGenerator:
    """Generate skewed (user, query-category) traffic with Poisson arrivals.

    Parameters
    ----------
    rng:
        Source of all randomness (events are deterministic given it).
    world:
        Synthetic world; supplies the user count and per-user category
        interests.  Pass ``num_users``/``num_categories`` instead to
        generate world-free traffic.
    zipf_exponent:
        Skew of the user popularity law (``P(rank r) ∝ r^-s``); 0 yields
        uniform traffic, ~1 is web-typical.
    target_qps:
        Mean arrival rate of the Poisson process.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        world: Optional[World] = None,
        num_users: Optional[int] = None,
        num_categories: Optional[int] = None,
        zipf_exponent: float = 1.1,
        target_qps: float = 200.0,
    ) -> None:
        if world is not None:
            num_users = world.num_users
            num_categories = world.config.num_categories
        if not num_users or not num_categories:
            raise ValueError("pass either a world or num_users + num_categories")
        if zipf_exponent < 0:
            raise ValueError(f"zipf_exponent must be >= 0, got {zipf_exponent}")
        if target_qps <= 0:
            raise ValueError(f"target_qps must be > 0, got {target_qps}")
        self.world = world
        self.num_users = int(num_users)
        self.num_categories = int(num_categories)
        self.target_qps = float(target_qps)
        self._rng = rng
        # Zipf pmf over a random permutation of users: rank 1 is hottest.
        # Sampling inverts the CDF with a binary search — O(log U) per event
        # instead of ``rng.choice(p=...)``'s O(U) scan, which matters once
        # the worlds under test carry 10^5+ users/items (large-catalog
        # benchmarks generate tens of thousands of events).
        weights = 1.0 / np.arange(1, self.num_users + 1, dtype=float) ** zipf_exponent
        self._user_probs = weights / weights.sum()
        self._user_cdf = np.cumsum(self._user_probs)
        self._user_by_rank = rng.permutation(self.num_users)
        # Per-user interest CDFs, built lazily: Zipf traffic touches a small
        # head of users, so only their rows are ever materialized.
        self._interest_cdfs: dict = {}

    def _inverse_cdf(self, cdf: np.ndarray) -> int:
        index = int(np.searchsorted(cdf, self._rng.random(), side="right"))
        return min(index, cdf.size - 1)  # guard the u == 1.0 float edge

    def _sample_category(self, user: int) -> int:
        if self.world is not None:
            cdf = self._interest_cdfs.get(user)
            if cdf is None:
                cdf = np.cumsum(self.world.user_interests[user])
                self._interest_cdfs[user] = cdf
            return self._inverse_cdf(cdf)
        return int(self._rng.integers(0, self.num_categories))

    def events(self, count: int) -> Iterator[TrafficEvent]:
        """Yield ``count`` arrivals in non-decreasing time order."""
        now = 0.0
        for _ in range(count):
            now += float(self._rng.exponential(1.0 / self.target_qps))
            user = int(self._user_by_rank[self._inverse_cdf(self._user_cdf)])
            yield TrafficEvent(time=now, user=user, query_category=self._sample_category(user))

    def generate(self, count: int) -> List[TrafficEvent]:
        """Materialized :meth:`events`."""
        return list(self.events(count))


def replay(
    system,
    events: List[TrafficEvent],
    clock: Optional[ManualClock] = None,
) -> List[RankedList]:
    """Drive ``system`` (batcher or cluster) through ``events``.

    With a :class:`ManualClock` the replay runs in simulated time: before
    each arrival the clock steps through every deadline flush that comes due
    in the gap (``system.next_flush_due()``), so recorded queueing latency
    reflects ``flush_deadline_ms`` rather than the distance to the next
    arrival; trailing queries are drained with a final flush.  Without a
    clock the events are submitted as fast as the wall clock allows
    (throughput mode).
    """
    results: List[RankedList] = []
    for event in events:
        if clock is not None:
            while True:
                due = system.next_flush_due()
                if due is None or due > event.time:
                    break
                clock.advance_to(due)
                results.extend(system.poll())
            clock.advance_to(event.time)
        results.extend(system.poll())
        results.extend(system.submit(event.user, event.query_category))
    if clock is not None:
        due = system.next_flush_due()
        if due is not None:
            clock.advance_to(due)
    results.extend(system.flush())
    return results
