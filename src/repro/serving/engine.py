"""Search-engine serving simulator (paper §III-F2, Fig. 6).

Models the online loop: a user issues a query → the engine retrieves
candidate items → the ranking model scores every candidate → the engine
returns the ranked list.  Latency per query is measured so the deployment
benchmark can report the per-session gate optimization end to end.

Retrieval has two modes: the original popularity-biased sample within the
query category (like a non-personalized candidate generator), and — when a
:class:`~repro.retrieval.CascadeConfig` is attached — the two-stage
retrieval cascade of :mod:`repro.retrieval` (ANN item index + linear
prefilter), which keeps serving cost sublinear in catalog size and is
rebuilt from the model's weight snapshot on every hot swap.

The engine exposes two scoring paths:

* :meth:`SearchEngine.search` — the classic one-query-per-call loop: one
  full model forward (gate included) per query;
* :meth:`SearchEngine.score_candidates` + :meth:`SearchEngine.session_gate`
  — the decomposed path used by the micro-batcher
  (:mod:`repro.serving.batcher`): the gate is evaluated once per session
  (and cached across sessions by :mod:`repro.serving.cache`), while the
  input network and experts run per candidate, matching the deployed design
  of §III-F1.

Both paths execute through the **compiled inference plan**
(:mod:`repro.infer`) by default — the training autodiff never runs in the
hot path.  Models with no registered compiler (the DNN/DIN/Category-MoE
baselines) fall back to the eager ``Tensor`` forward transparently, and
``compile=False`` forces the eager path for benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.ranking_model import RankingModel
from repro.data.features import (
    BehaviorEncoding,
    assemble_candidate_batch,
    encode_behavior,
)
from repro.data.schema import Batch
from repro.data.synthetic import World
from repro.faults.injector import NULL_INJECTOR
from repro.infer import CompiledModel, CompileError, compile_model
from repro.obs import NULL_TRACE, NULL_TRACER, ShadowRecallMonitor
from repro.obs.trace import kernel_span_hook
from repro.retrieval import CascadeConfig, RetrievalCascade, category_popularity_probs
from repro.serving.degrade import TIER_FULL, TIER_POPULARITY, TIER_PREFILTER

__all__ = ["RankedList", "SearchEngine"]


@dataclass
class RankedList:
    """Result of one query: items sorted by predicted score (descending)."""

    user: int
    query_category: int
    items: np.ndarray  # 0-based item ids, ranked
    scores: np.ndarray  # predicted probabilities, same order
    latency_ms: float
    #: Which model version produced the scores (``None`` before the engine
    #: is told a version).  Stamped at scoring time, so hot-swap tests can
    #: assert no flush ever mixes versions.
    model_version: Optional[str] = None
    #: Degradation tier that produced this ranking (``full`` outside
    #: incidents — see :mod:`repro.serving.degrade`).
    tier: str = TIER_FULL


class SearchEngine:
    """Retrieval + ranking pipeline over a synthetic world."""

    def __init__(
        self,
        world: World,
        model: RankingModel,
        rng: np.random.Generator,
        candidates_per_query: Optional[int] = None,
        model_version: Optional[str] = None,
        compile: bool = True,
        cascade: Optional[CascadeConfig] = None,
        prebuilt_cascade: Optional[RetrievalCascade] = None,
        tracer=None,
        shadow_recall: Optional[ShadowRecallMonitor] = None,
        injector=None,
    ) -> None:
        self.world = world
        self._rng = rng
        #: Fault injector (:class:`repro.faults.FaultInjector`).  ``None``
        #: installs the shared no-op injector — same pattern as the tracer,
        #: so the disabled path never branches.
        self.injector = injector if injector is not None else NULL_INJECTOR
        #: Optional :class:`~repro.obs.ShadowRecallMonitor`: a head-sampled
        #: fraction of live cascade retrievals is re-run through the
        #: exhaustive oracle (full-model top-k over every category member —
        #: the ``nprobe="all"``/``prune=None`` surface) after the query is
        #: answered, measuring live recall@k.  Shards share one monitor.
        self.shadow_recall = shadow_recall
        #: Request tracer (:class:`repro.obs.Tracer`).  ``None`` installs the
        #: shared no-op tracer, so instrumentation never branches on "is
        #: tracing configured?" in the hot path.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.candidates_per_query = candidates_per_query or world.config.items_per_session
        self._by_category = [
            np.flatnonzero(world.item_category == cat)
            for cat in range(world.config.num_categories)
        ]
        # Per-category popularity sampling probabilities, computed once:
        # retrieval used to recompute ``popularity ** 0.7`` and renormalize
        # on every query.  The cascade reuses these as its retrieval prior.
        self._category_pop_probs = category_popularity_probs(world)
        self.queries_served = 0
        self.total_latency_ms = 0.0
        self.compile_enabled = bool(compile)
        self.cascade_config = cascade
        # set_model assigns model / compiled_model / cascade / model_version.
        # ``prebuilt_cascade`` lets a cluster share one cascade build across
        # its shards (each shard receiving a worker view).
        self.set_model(model, model_version, cascade=prebuilt_cascade)

    # ------------------------------------------------------------------
    # model lifecycle
    # ------------------------------------------------------------------
    def set_model(
        self,
        model: RankingModel,
        version: Optional[str] = None,
        cascade: Optional[RetrievalCascade] = None,
    ) -> None:
        """Switch the serving model, recompiling its inference plan.

        ``cascade`` accepts a prebuilt retrieval cascade for **this model's
        snapshot** (a :meth:`~repro.retrieval.RetrievalCascade.worker_view`
        of a shared build — :meth:`repro.serving.cluster.ShardedCluster.
        swap_model` builds once and hands each shard a view); when omitted
        and a cascade config is attached, the engine builds its own.

        Compilation — and, when a :class:`~repro.retrieval.CascadeConfig` is
        attached, the rebuild of the retrieval cascade's ANN index from the
        new model's item-embedding snapshot — happens *before* anything is
        swapped; then model, plan, cascade, and version are assigned
        together.  A query scored after this call can never see the new
        model with the old plan, nor retrieve against embeddings the scoring
        model no longer owns (stale-embedding retrieval is the cascade
        analogue of a stale gate vector).  Callers that batch queries must
        drain pending work first so no flush mixes versions, and must
        invalidate any cache holding gate vectors from the old model —
        :meth:`repro.serving.cluster.ShardedCluster.swap_model` does both.
        Models with no registered compiler serve through the eager forward.
        """
        # "cascade.build" injection point: an index-build exception here
        # (mid-hot-swap) leaves the engine untouched — nothing is assigned
        # until every build step below has succeeded — so the caller's
        # rollback sees a consistent old-model shard.
        self.injector.fire("cascade.build", version=version)
        compiled: Optional[CompiledModel] = None
        if self.compile_enabled:
            try:
                compiled = compile_model(model)
            except CompileError:
                compiled = None
        if self.cascade_config is None:
            cascade = None
        elif cascade is None:
            # The build's probe/calibration passes score through the plan
            # just compiled (the surface the fleet will serve), avoiding a
            # second compilation.
            cascade = RetrievalCascade.from_model(
                model,
                self.world,
                self.cascade_config,
                self._category_pop_probs,
                scorer=compiled if compiled is not None else model,
            )
        else:
            # A prebuilt view still points at its builder's gate plan —
            # mutable scratch that must not be shared across workers; bind
            # this engine's own scoring surface instead.
            cascade.bind_scorer(compiled if compiled is not None else model)
        self.model = model
        self.compiled_model = compiled
        self.cascade = cascade
        self.model_version = version

    @property
    def is_compiled(self) -> bool:
        """Whether scoring runs through a compiled plan (vs eager fallback)."""
        return self.compiled_model is not None

    # ------------------------------------------------------------------
    # pipeline stages
    # ------------------------------------------------------------------
    def retrieve(
        self,
        query_category: int,
        user: Optional[int] = None,
        gate: Optional[np.ndarray] = None,
        trace=NULL_TRACE,
    ) -> np.ndarray:
        """Candidate generation: the retrieval cascade when one is attached,
        the popularity-biased in-category sample otherwise.

        With a cascade (and a ``user`` to personalize for), stage 1+2 run:
        the ANN index probes the category's IVF cells and the prefilter
        prunes to the survivors the full model will rank — sublinear in
        category size.  ``gate`` forwards a cached §III-F1 session-gate
        vector (the micro-batcher passes its session-cache entry) so the
        cascade skips its own gate evaluation.  In the cascade's
        exhaustive-parity mode this returns every category member in
        ascending id order, exactly like the sampling path's small-category
        case.

        Without a cascade, when the category holds fewer items than
        ``candidates_per_query`` the whole category is returned (no
        sampling, no RNG draw) — small categories always expose their full
        inventory.  The sampling probabilities are precomputed per category
        at construction, not rebuilt per query.
        """
        members = self._by_category[query_category]
        if members.size == 0:
            raise ValueError(f"category {query_category} has no items")
        self.injector.fire("engine.retrieve", category=int(query_category))
        if self.cascade is not None and user is not None:
            candidates = self.cascade.retrieve(user, query_category, gate=gate, trace=trace)
            if self.shadow_recall is not None and self.shadow_recall.should_sample():
                with trace.span("shadow-recall") as span:
                    recall = self._shadow_probe(user, query_category, candidates)
                    span.set(recall=recall, k=self.shadow_recall.k)
            return candidates
        if members.size <= self.candidates_per_query:
            return members.copy()
        return self._rng.choice(
            members,
            size=self.candidates_per_query,
            replace=False,
            p=self._category_pop_probs[query_category],
        )

    def _shadow_probe(
        self, user: int, query_category: int, candidates: np.ndarray
    ) -> float:
        """Measure live recall@k of ``candidates`` vs the exhaustive oracle.

        The oracle is the same surface :class:`~repro.retrieval.RetrievalProbe`
        checks at canary time — the serving model's own top-``k`` over
        *every* category member (what the cascade's exhaustive-parity mode
        ``nprobe="all"``/``prune=None`` would rank) — but computed on a live
        query, after the cascade's answer already shipped.  Off the hot path
        by sampling, not by threading: the ~0.5% default rate keeps the full
        category scan amortized to noise (gated in
        ``benchmarks/test_serving_throughput.py``).
        """
        monitor = self.shadow_recall
        members = self._by_category[query_category]
        batch = self.build_batch(user, query_category, members)
        scorer = self.compiled_model if self.compiled_model is not None else self.model
        full_scores = np.asarray(scorer.predict_proba(batch))
        k = min(monitor.k, members.size)
        oracle = members[np.argsort(-full_scores, kind="stable")[:k]]
        kept = set(int(item) for item in candidates)
        recall = sum(1 for item in oracle.tolist() if item in kept) / k
        monitor.observe(recall)
        return recall

    def degraded_ranking(
        self,
        user: int,
        query_category: int,
        tier: str,
        candidates: Optional[np.ndarray] = None,
    ) -> tuple:
        """Best-effort ``(items, scores, tier)`` below the full tier.

        ``prefilter`` ranks with the cascade's calibrated linear prefilter
        (:meth:`~repro.retrieval.RetrievalCascade.score_candidates`) —
        personalized, no full-model forward.  ``popularity`` ranks by the
        category's precomputed popularity prior — no model at all, no RNG,
        fully deterministic.  A requested tier that cannot be served (no
        cascade attached, prefilter itself failing) falls through to
        popularity; the tier actually used is returned.

        ``candidates`` restricts ranking to an already-retrieved shortlist
        (the deadline-budget path reuses its submit-time retrieval); when
        omitted the popularity tier ranks the whole category and the
        prefilter tier retrieves through the cascade first.
        """
        if tier == TIER_PREFILTER and self.cascade is not None and user is not None:
            try:
                if candidates is None:
                    shortlist = self.cascade.retrieve(user, query_category)
                else:
                    shortlist = np.asarray(candidates)
                scores = np.asarray(
                    self.cascade.score_candidates(user, query_category, shortlist),
                    dtype=np.float32,
                )
                order = np.argsort(-scores, kind="stable")
                return shortlist[order], scores[order], TIER_PREFILTER
            except Exception:
                pass  # the floor of the ladder below never fails
        members = self._by_category[query_category]
        probs = self._category_pop_probs[query_category]
        if candidates is not None and len(candidates):
            shortlist = np.asarray(candidates)
            # Members are sorted ascending, so popularity priors for an
            # arbitrary shortlist are a searchsorted away.
            index = np.searchsorted(members, shortlist)
            index = np.clip(index, 0, probs.size - 1)
            scores = probs[index].astype(np.float32)
        else:
            shortlist = members
            scores = probs.astype(np.float32)
        order = np.argsort(-scores, kind="stable")[: self.candidates_per_query]
        return shortlist[order], scores[order], TIER_POPULARITY

    def build_batch(
        self,
        user: int,
        query_category: int,
        candidates: np.ndarray,
        spec: int = 1,
        behavior: Optional[BehaviorEncoding] = None,
    ) -> Batch:
        """Feature assembly for (user, query, candidates) — the feature dump
        step of Fig. 6.  ``behavior`` accepts a cached encoding so hot users
        skip re-encoding their history."""
        return assemble_candidate_batch(
            self.world, user, query_category, candidates, spec=spec, behavior=behavior
        )

    def encode_user_behavior(self, user: int) -> BehaviorEncoding:
        """Padded behaviour-sequence arrays for one user (cacheable)."""
        return encode_behavior(self.world, user, self.world.config.max_seq_len)

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def score_candidates(
        self,
        batch: Batch,
        gate: Optional[np.ndarray] = None,
        step_hook=None,
    ) -> np.ndarray:
        """Predicted probabilities for every row of ``batch``.

        ``gate`` is an optional precomputed gate matrix ``(B, K)`` (or a
        single ``(K,)`` session vector, broadcast to all rows); models that
        support gate overrides skip the gate network entirely — the §III-F1
        serving optimization.  Scoring executes the compiled plan when one
        exists; eager otherwise.

        ``step_hook`` is a transient per-kernel ``(PlanStep, seconds)``
        callback installed on the compiled score plan for this call only —
        the tracer uses it to attach per-kernel spans to a sampled request.
        It is ignored on the eager path (no kernel boundaries to time).
        """
        if step_hook is not None and self.compiled_model is not None:
            plan = self.compiled_model.score_plan
            plan.step_hook = step_hook
            try:
                return self._score_candidates(batch, gate)
            finally:
                plan.step_hook = None
        return self._score_candidates(batch, gate)

    def _score_candidates(self, batch: Batch, gate: Optional[np.ndarray]) -> np.ndarray:
        if gate is not None and self.supports_session_gate:
            gate = np.asarray(gate, dtype=np.float32)
            if gate.ndim == 1:
                gate = np.tile(gate, (int(batch["label"].shape[0]), 1))
            if self.compiled_model is not None:
                return self.compiled_model.predict_proba(batch, gate_override=gate)
            return self.model.predict_proba(batch, gate_override=gate)
        if self.compiled_model is not None:
            return self.compiled_model.predict_proba(batch)
        return self.model.predict_proba(batch)

    @property
    def supports_session_gate(self) -> bool:
        """Whether the model's gate can be computed once per session."""
        return bool(getattr(self.model, "gate_is_candidate_independent", False))

    def serving_gate(self, batch: Batch) -> np.ndarray:
        """Cache-ready gate matrix for every row of ``batch``.

        Runs the compiled **gate plan** (the candidate-independent subgraph
        split out at compile time) when available, so the micro-batcher's
        batched gate resolution and the session cache are fed by the same
        compiled path that scores candidates.
        """
        if self.compiled_model is not None:
            return self.compiled_model.serving_gate(batch)
        return self.model.serving_gate(batch)

    def session_gate(self, batch: Batch) -> Optional[np.ndarray]:
        """The session's gate vector ``g`` (shape ``(K,)``), or ``None``.

        Only valid for models whose gate ignores the candidate (AW-MoE in
        search mode): the vector is computed from the batch's first row and
        applies to every candidate of the session.
        """
        if not self.supports_session_gate:
            return None
        row = {key: value[:1] for key, value in batch.items()}
        return self.serving_gate(row)[0]

    def search(self, user: int, query_category: int) -> RankedList:
        """Serve one query end to end and record latency.

        With a cascade attached, the session gate is resolved **once** and
        shared by retrieval and scoring (§III-F1: the gate is a per-session
        quantity; evaluating it per stage would pay the cost twice).

        When the engine's tracer samples the request, every stage (gate,
        retrieve with cascade sub-stages, assemble, rank with per-kernel
        children) lands as a span on the exported trace.
        """
        trace = self.tracer.trace("search", user=int(user), category=int(query_category))
        start = time.perf_counter()
        gate = None
        if self.cascade is not None and self.supports_session_gate:
            with trace.span("gate", source="resolve"):
                gate = self.cascade.resolve_gate(user, query_category)
        with trace.span("retrieve", cascade=self.cascade is not None) as retrieve_span:
            candidates = self.retrieve(query_category, user=user, gate=gate, trace=trace)
            retrieve_span.set(candidates=int(candidates.size))
        with trace.span("assemble"):
            batch = self.build_batch(user, query_category, candidates)
        with trace.span("rank", rows=int(candidates.size)) as rank_span:
            scores = self.score_candidates(
                batch, gate=gate, step_hook=kernel_span_hook(trace, rank_span)
            )
        order = np.argsort(-scores, kind="stable")
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        self.record_query(elapsed_ms)
        trace.finish(latency_ms=elapsed_ms)
        return RankedList(
            user=user,
            query_category=query_category,
            items=candidates[order],
            scores=scores[order],
            latency_ms=elapsed_ms,
            model_version=self.model_version,
        )

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def record_query(self, latency_ms: float) -> None:
        """Account one served query (also used by the micro-batcher)."""
        self.queries_served += 1
        self.total_latency_ms += latency_ms

    def reset_stats(self) -> None:
        """Zero the latency accounting (e.g. between benchmark phases)."""
        self.queries_served = 0
        self.total_latency_ms = 0.0

    @property
    def avg_latency_ms(self) -> float:
        """Average serving latency over all queries so far."""
        if self.queries_served == 0:
            return 0.0
        return self.total_latency_ms / self.queries_served
