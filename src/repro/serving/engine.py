"""Search-engine serving simulator (paper §III-F2, Fig. 6).

Models the online loop: a user issues a query → the engine retrieves
candidate items (popularity-biased within the query category, like the
production candidate generator) → the ranking model scores every candidate →
the engine returns the ranked list.  Latency per query is measured so the
deployment benchmark can report the per-session gate optimization end to end.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.ranking_model import RankingModel
from repro.data.schema import Batch
from repro.data.synthetic import (
    World,
    _cross_features,
    _encode_behavior,
    _impression_features,
    _item_dense,
    _UserState,
)

__all__ = ["RankedList", "SearchEngine"]


@dataclass
class RankedList:
    """Result of one query: items sorted by predicted score (descending)."""

    user: int
    query_category: int
    items: np.ndarray  # 0-based item ids, ranked
    scores: np.ndarray  # predicted probabilities, same order
    latency_ms: float


class SearchEngine:
    """Retrieval + ranking pipeline over a synthetic world."""

    def __init__(
        self,
        world: World,
        model: RankingModel,
        rng: np.random.Generator,
        candidates_per_query: Optional[int] = None,
    ) -> None:
        self.world = world
        self.model = model
        self._rng = rng
        self.candidates_per_query = candidates_per_query or world.config.items_per_session
        self._by_category = [
            np.flatnonzero(world.item_category == cat)
            for cat in range(world.config.num_categories)
        ]
        self.queries_served = 0
        self.total_latency_ms = 0.0

    # ------------------------------------------------------------------
    # pipeline stages
    # ------------------------------------------------------------------
    def retrieve(self, query_category: int) -> np.ndarray:
        """Candidate generation: popularity-biased sample within category."""
        members = self._by_category[query_category]
        if members.size == 0:
            raise ValueError(f"category {query_category} has no items")
        k = min(members.size, self.candidates_per_query)
        weights = self.world.item_popularity[members] ** 0.7 + 1e-3
        weights = weights / weights.sum()
        return self._rng.choice(members, size=k, replace=False, p=weights)

    def build_batch(
        self, user: int, query_category: int, candidates: np.ndarray, spec: int = 1
    ) -> Batch:
        """Feature assembly for (user, query, candidates) — the feature dump
        step of Fig. 6."""
        world = self.world
        state = _UserState(world, user)
        cross = _cross_features(state, world, candidates)
        features = _impression_features(world, user, candidates, query_category, spec, cross, state)
        items, cats, dense, mask = _encode_behavior(world, user, world.config.max_seq_len)
        count = candidates.size
        query_id = query_category * world.config.num_query_specificities + spec + 1
        return {
            "behavior_items": np.tile(items, (count, 1)),
            "behavior_categories": np.tile(cats, (count, 1)),
            "behavior_dense": np.tile(dense, (count, 1, 1)),
            "behavior_mask": np.tile(mask, (count, 1)),
            "target_item": (candidates + 1).astype(np.int32),
            "target_category": (world.item_category[candidates] + 1).astype(np.int32),
            "target_dense": _item_dense(world, candidates),
            "query": np.full(count, query_id, dtype=np.int32),
            "query_category": np.full(count, query_category + 1, dtype=np.int32),
            "other_features": features.astype(np.float32),
            "label": np.zeros(count, dtype=np.float32),
            "session_id": np.zeros(count, dtype=np.int64),
            "user_id": np.full(count, user, dtype=np.int64),
        }

    def search(self, user: int, query_category: int) -> RankedList:
        """Serve one query end to end and record latency."""
        start = time.perf_counter()
        candidates = self.retrieve(query_category)
        batch = self.build_batch(user, query_category, candidates)
        scores = self.model.predict_proba(batch)
        order = np.argsort(-scores, kind="stable")
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        self.queries_served += 1
        self.total_latency_ms += elapsed_ms
        return RankedList(
            user=user,
            query_category=query_category,
            items=candidates[order],
            scores=scores[order],
            latency_ms=elapsed_ms,
        )

    @property
    def mean_latency_ms(self) -> float:
        """Average serving latency over all queries so far."""
        if self.queries_served == 0:
            return 0.0
        return self.total_latency_ms / self.queries_served
