"""Search-engine serving simulator (paper §III-F2, Fig. 6).

Models the online loop: a user issues a query → the engine retrieves
candidate items (popularity-biased within the query category, like the
production candidate generator) → the ranking model scores every candidate →
the engine returns the ranked list.  Latency per query is measured so the
deployment benchmark can report the per-session gate optimization end to end.

The engine exposes two scoring paths:

* :meth:`SearchEngine.search` — the classic one-query-per-call loop: one
  full model forward (gate included) per query;
* :meth:`SearchEngine.score_candidates` + :meth:`SearchEngine.session_gate`
  — the decomposed path used by the micro-batcher
  (:mod:`repro.serving.batcher`): the gate is evaluated once per session
  (and cached across sessions by :mod:`repro.serving.cache`), while the
  input network and experts run per candidate, matching the deployed design
  of §III-F1.

Both paths execute through the **compiled inference plan**
(:mod:`repro.infer`) by default — the training autodiff never runs in the
hot path.  Models with no registered compiler (the DNN/DIN/Category-MoE
baselines) fall back to the eager ``Tensor`` forward transparently, and
``compile=False`` forces the eager path for benchmarks.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.ranking_model import RankingModel
from repro.data.features import (
    BehaviorEncoding,
    assemble_candidate_batch,
    encode_behavior,
)
from repro.data.schema import Batch
from repro.data.synthetic import World
from repro.infer import CompiledModel, CompileError, compile_model

__all__ = ["RankedList", "SearchEngine"]

# One DeprecationWarning per process for the mean_latency_ms alias (tests
# reset this to re-arm the warning).
_MEAN_LATENCY_WARNED = False


@dataclass
class RankedList:
    """Result of one query: items sorted by predicted score (descending)."""

    user: int
    query_category: int
    items: np.ndarray  # 0-based item ids, ranked
    scores: np.ndarray  # predicted probabilities, same order
    latency_ms: float
    #: Which model version produced the scores (``None`` before the engine
    #: is told a version).  Stamped at scoring time, so hot-swap tests can
    #: assert no flush ever mixes versions.
    model_version: Optional[str] = None


class SearchEngine:
    """Retrieval + ranking pipeline over a synthetic world."""

    def __init__(
        self,
        world: World,
        model: RankingModel,
        rng: np.random.Generator,
        candidates_per_query: Optional[int] = None,
        model_version: Optional[str] = None,
        compile: bool = True,
    ) -> None:
        self.world = world
        self._rng = rng
        self.candidates_per_query = candidates_per_query or world.config.items_per_session
        self._by_category = [
            np.flatnonzero(world.item_category == cat)
            for cat in range(world.config.num_categories)
        ]
        self.queries_served = 0
        self.total_latency_ms = 0.0
        self.compile_enabled = bool(compile)
        # set_model assigns self.model / self.compiled_model / self.model_version.
        self.set_model(model, model_version)

    # ------------------------------------------------------------------
    # model lifecycle
    # ------------------------------------------------------------------
    def set_model(self, model: RankingModel, version: Optional[str] = None) -> None:
        """Switch the serving model, recompiling its inference plan.

        Compilation happens *before* anything is swapped, then model, plan,
        and version are assigned together — a query scored after this call
        can never see the new model with the old plan (or vice versa).
        Callers that batch queries must drain pending work first so no flush
        mixes versions, and must invalidate any cache holding gate vectors
        from the old model — :meth:`repro.serving.cluster.ShardedCluster.
        swap_model` does both.  Models with no registered compiler serve
        through the eager forward.
        """
        compiled: Optional[CompiledModel] = None
        if self.compile_enabled:
            try:
                compiled = compile_model(model)
            except CompileError:
                compiled = None
        self.model = model
        self.compiled_model = compiled
        self.model_version = version

    @property
    def is_compiled(self) -> bool:
        """Whether scoring runs through a compiled plan (vs eager fallback)."""
        return self.compiled_model is not None

    # ------------------------------------------------------------------
    # pipeline stages
    # ------------------------------------------------------------------
    def retrieve(self, query_category: int) -> np.ndarray:
        """Candidate generation: popularity-biased sample within category.

        When the category holds fewer items than ``candidates_per_query``
        the whole category is returned (no sampling, no RNG draw) — small
        categories always expose their full inventory.
        """
        members = self._by_category[query_category]
        if members.size == 0:
            raise ValueError(f"category {query_category} has no items")
        if members.size <= self.candidates_per_query:
            return members.copy()
        weights = self.world.item_popularity[members] ** 0.7 + 1e-3
        weights = weights / weights.sum()
        return self._rng.choice(
            members, size=self.candidates_per_query, replace=False, p=weights
        )

    def build_batch(
        self,
        user: int,
        query_category: int,
        candidates: np.ndarray,
        spec: int = 1,
        behavior: Optional[BehaviorEncoding] = None,
    ) -> Batch:
        """Feature assembly for (user, query, candidates) — the feature dump
        step of Fig. 6.  ``behavior`` accepts a cached encoding so hot users
        skip re-encoding their history."""
        return assemble_candidate_batch(
            self.world, user, query_category, candidates, spec=spec, behavior=behavior
        )

    def encode_user_behavior(self, user: int) -> BehaviorEncoding:
        """Padded behaviour-sequence arrays for one user (cacheable)."""
        return encode_behavior(self.world, user, self.world.config.max_seq_len)

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def score_candidates(self, batch: Batch, gate: Optional[np.ndarray] = None) -> np.ndarray:
        """Predicted probabilities for every row of ``batch``.

        ``gate`` is an optional precomputed gate matrix ``(B, K)`` (or a
        single ``(K,)`` session vector, broadcast to all rows); models that
        support gate overrides skip the gate network entirely — the §III-F1
        serving optimization.  Scoring executes the compiled plan when one
        exists; eager otherwise.
        """
        if gate is not None and self.supports_session_gate:
            gate = np.asarray(gate, dtype=np.float32)
            if gate.ndim == 1:
                gate = np.tile(gate, (int(batch["label"].shape[0]), 1))
            if self.compiled_model is not None:
                return self.compiled_model.predict_proba(batch, gate_override=gate)
            return self.model.predict_proba(batch, gate_override=gate)
        if self.compiled_model is not None:
            return self.compiled_model.predict_proba(batch)
        return self.model.predict_proba(batch)

    @property
    def supports_session_gate(self) -> bool:
        """Whether the model's gate can be computed once per session."""
        return bool(getattr(self.model, "gate_is_candidate_independent", False))

    def serving_gate(self, batch: Batch) -> np.ndarray:
        """Cache-ready gate matrix for every row of ``batch``.

        Runs the compiled **gate plan** (the candidate-independent subgraph
        split out at compile time) when available, so the micro-batcher's
        batched gate resolution and the session cache are fed by the same
        compiled path that scores candidates.
        """
        if self.compiled_model is not None:
            return self.compiled_model.serving_gate(batch)
        return self.model.serving_gate(batch)

    def session_gate(self, batch: Batch) -> Optional[np.ndarray]:
        """The session's gate vector ``g`` (shape ``(K,)``), or ``None``.

        Only valid for models whose gate ignores the candidate (AW-MoE in
        search mode): the vector is computed from the batch's first row and
        applies to every candidate of the session.
        """
        if not self.supports_session_gate:
            return None
        row = {key: value[:1] for key, value in batch.items()}
        return self.serving_gate(row)[0]

    def search(self, user: int, query_category: int) -> RankedList:
        """Serve one query end to end and record latency."""
        start = time.perf_counter()
        candidates = self.retrieve(query_category)
        batch = self.build_batch(user, query_category, candidates)
        scores = self.score_candidates(batch)
        order = np.argsort(-scores, kind="stable")
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        self.record_query(elapsed_ms)
        return RankedList(
            user=user,
            query_category=query_category,
            items=candidates[order],
            scores=scores[order],
            latency_ms=elapsed_ms,
            model_version=self.model_version,
        )

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def record_query(self, latency_ms: float) -> None:
        """Account one served query (also used by the micro-batcher)."""
        self.queries_served += 1
        self.total_latency_ms += latency_ms

    def reset_stats(self) -> None:
        """Zero the latency accounting (e.g. between benchmark phases)."""
        self.queries_served = 0
        self.total_latency_ms = 0.0

    @property
    def avg_latency_ms(self) -> float:
        """Average serving latency over all queries so far."""
        if self.queries_served == 0:
            return 0.0
        return self.total_latency_ms / self.queries_served

    @property
    def mean_latency_ms(self) -> float:
        """Deprecated alias of :attr:`avg_latency_ms`.

        The two names accumulated independently-documented copies of the
        same quantity; :attr:`avg_latency_ms` is canonical.  This alias
        warns **once per process** — serving loops read latency stats per
        query, and a warning per call would swamp the logs of any fleet
        still on the old name — and will be removed.
        """
        global _MEAN_LATENCY_WARNED
        if not _MEAN_LATENCY_WARNED:
            _MEAN_LATENCY_WARNED = True
            warnings.warn(
                "SearchEngine.mean_latency_ms is deprecated; use avg_latency_ms",
                DeprecationWarning,
                stacklevel=2,
            )
        return self.avg_latency_ms
