"""``repro.faults`` — seeded fault injection and the machinery to survive it.

The fleet of PRs 1–7 assumes the happy path: shards answer, checkpoints
load, index writes complete.  This package supplies both halves of the
robustness story:

* :mod:`~repro.faults.injector` — a deterministic, seeded fault-injection
  harness.  A :class:`FaultPlan` names *injection points* threaded through
  the stack (``batcher.submit``, ``engine.retrieve``, ``swap.shard``,
  ``registry.checkpoint``, ``clicklog.append``, …) and what goes wrong
  there: latency spikes, transient errors, crashes, torn writes, corrupted
  files.  The same seed replays the same faults at the same visits, so
  chaos tests are ordinary deterministic tests.  The disabled path is the
  shared no-op :data:`NULL_INJECTOR` — zero overhead, bitwise-identical
  serving.
* :mod:`~repro.faults.breaker` — per-shard circuit breakers
  (closed → open → half-open) that stop routing users at a crashing shard
  and probe it back to health after a cooldown.
* :mod:`~repro.faults.chaos` — canned seeded fault schedules, the chaos
  soak driver (replay fleet traffic + refresh cycles under a plan, assert
  nothing is dropped on the floor), and default alert rules over the
  degradation telemetry.

Layering: ``faults`` imports only numpy and the stdlib (event logs are
duck-typed), so every layer — serving, online, utils — may depend on it.
"""

from repro.faults.breaker import CircuitBreaker
from repro.faults.chaos import (
    DEFAULT_FAULT_ALERT_RULES,
    default_chaos_plan,
    default_fault_alert_rules,
    default_fleet_chaos_plan,
    run_chaos_soak,
    run_fleet_soak,
)
from repro.faults.injector import (
    KNOWN_POINTS,
    NULL_INJECTOR,
    CrashFault,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    NullInjector,
    TransientFault,
)

__all__ = [
    "CircuitBreaker",
    "DEFAULT_FAULT_ALERT_RULES",
    "default_chaos_plan",
    "default_fault_alert_rules",
    "default_fleet_chaos_plan",
    "run_chaos_soak",
    "run_fleet_soak",
    "KNOWN_POINTS",
    "NULL_INJECTOR",
    "CrashFault",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "NullInjector",
    "TransientFault",
]
