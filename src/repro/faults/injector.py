"""Seeded, deterministic fault injection.

The injector is a *schedule*, not a monkey-patch: components call
``injector.fire("point", **context)`` at named injection points on their
own hot paths, and the active :class:`FaultPlan` decides — deterministically
— whether that visit sleeps, raises, tears a write, or corrupts a file.
Determinism is the whole design: each :class:`FaultSpec` keeps its own
visit counter and its own seeded RNG stream, so a given ``(plan, seed)``
injects the same faults at the same visits on every run, and a chaos soak
is an ordinary reproducible test.

Fault kinds
-----------
``latency``
    ``fire`` sleeps ``latency_ms`` through a pluggable sleeper — tests pass
    ``ManualClock.advance`` so injected latency moves simulated time with
    zero wall-clock cost.
``transient``
    ``fire`` raises :class:`TransientFault` — the retryable family
    (network blips, flaky canary replays).  Callers wrap these in
    retry-with-backoff.
``crash``
    ``fire`` raises :class:`CrashFault` — the component is gone for this
    call (a shard dying mid-batch).  Callers fail over, not retry.
``torn_write``
    ``truncate_fraction`` returns the fraction of bytes that "made it to
    disk" before the simulated crash; writers cooperate by truncating and
    then failing the write.
``corrupt``
    ``corrupt_file`` flips bytes in the middle of a file in place —
    bit rot between checkpoint save and load.

The disabled path is the shared :data:`NULL_INJECTOR` singleton (mirroring
``repro.obs.trace.NULL_TRACER``): every method is an attribute-load + no-op
call with no branching, no clock reads and no RNG draws, so a fleet built
without a plan is bitwise-identical to one built before this module existed.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "KNOWN_POINTS",
    "FAULT_KINDS",
    "InjectedFault",
    "TransientFault",
    "CrashFault",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "NullInjector",
    "NULL_INJECTOR",
]

#: Injection points threaded through the stack.  ``FaultSpec`` validates
#: against this set so a typo'd point fails at plan construction, not by
#: silently never firing.
KNOWN_POINTS = frozenset(
    {
        "batcher.submit",  # MicroBatcher.submit, before admission
        "batcher.flush",  # MicroBatcher.flush, before the batched forward
        "engine.retrieve",  # SearchEngine.retrieve (cascade or sampling)
        "cascade.build",  # SearchEngine.set_model, before the index rebuild
        "swap.shard",  # ShardedCluster.swap_model, between drain and set_model
        "registry.save_index",  # ModelRegistry._save_index (torn index writes)
        "registry.checkpoint",  # ModelRegistry.register (checkpoint corruption)
        "clicklog.append",  # ClickLog disk append (torn log records)
        "trainer.update",  # IncrementalTrainer.update entry
        "canary.judge",  # CanaryGate.judge entry
        # Process fleet (repro.serving.fleet):
        "worker.spawn",  # FleetSupervisor spawning a worker process
        "worker.exec",  # worker request execution (crash = simulated OOM kill)
        "worker.heartbeat",  # worker heartbeat send (crash = beat lost)
        "slab.publish",  # SnapshotSlab.publish (torn_write = partial segment)
    }
)

FAULT_KINDS = ("latency", "transient", "crash", "torn_write", "corrupt")

#: Kinds surfaced through ``fire`` (the others go through
#: ``truncate_fraction`` / ``corrupt_file``).
_FIRE_KINDS = ("latency", "transient", "crash")


class InjectedFault(RuntimeError):
    """Base class for every exception the injector raises."""


class TransientFault(InjectedFault):
    """A retryable failure — the operation may succeed if repeated."""


class CrashFault(InjectedFault):
    """A component crash — fail over, don't retry in place."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: *where*, *what*, and *when*.

    Parameters
    ----------
    point:
        Injection point name (must be in :data:`KNOWN_POINTS`).
    kind:
        One of :data:`FAULT_KINDS`.
    after:
        Skip this many matching visits before the fault becomes eligible
        (``after=2`` → first two visits pass clean).
    times:
        Fire at most this many times; ``None`` means every eligible visit.
    probability:
        Per-eligible-visit firing probability, drawn from the spec's own
        seeded RNG stream (1.0 = always).
    latency_ms:
        Sleep duration for ``latency`` faults.
    truncate_at:
        Fraction of bytes written before a ``torn_write`` "crash".
    match:
        Context filter — the fault only applies when every ``key: value``
        pair equals the context passed to ``fire``/``truncate_fraction``/
        ``corrupt_file`` (e.g. ``{"shard": 1}`` targets one shard).
    """

    point: str
    kind: str
    after: int = 0
    times: Optional[int] = 1
    probability: float = 1.0
    latency_ms: float = 0.0
    truncate_at: float = 0.5
    match: Optional[Mapping[str, Any]] = None

    def __post_init__(self) -> None:
        if self.point not in KNOWN_POINTS:
            raise ValueError(
                f"unknown injection point {self.point!r}; known: {sorted(KNOWN_POINTS)}"
            )
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(f"probability must be in (0, 1], got {self.probability}")
        if not 0.0 <= self.truncate_at < 1.0:
            raise ValueError(f"truncate_at must be in [0, 1), got {self.truncate_at}")

    def to_json(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {"point": self.point, "kind": self.kind}
        if self.after:
            record["after"] = self.after
        record["times"] = self.times
        if self.probability < 1.0:
            record["probability"] = self.probability
        if self.kind == "latency":
            record["latency_ms"] = self.latency_ms
        if self.kind == "torn_write":
            record["truncate_at"] = self.truncate_at
        if self.match:
            record["match"] = dict(self.match)
        return record


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of :class:`FaultSpec` entries."""

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def describe(self) -> Dict[str, Any]:
        return {"seed": self.seed, "specs": [spec.to_json() for spec in self.specs]}


class _SpecState:
    """Mutable per-spec bookkeeping: visit counter + private RNG stream."""

    __slots__ = ("spec", "rng", "visits", "fired")

    def __init__(self, spec: FaultSpec, seed: int, index: int) -> None:
        self.spec = spec
        # One independent stream per spec: adding spec N+1 to a plan never
        # shifts the draws (and therefore the schedule) of specs 0..N.
        self.rng = np.random.default_rng(np.random.SeedSequence([seed, index]))
        self.visits = 0
        self.fired = 0


def _scalar(value: Any) -> bool:
    return isinstance(value, (int, float, str, bool)) or value is None


class FaultInjector:
    """Executes a :class:`FaultPlan` at the stack's injection points.

    Parameters
    ----------
    plan:
        The fault schedule; ``None``/empty means armed but silent.
    sleeper:
        Callable taking seconds, used by ``latency`` faults.  Defaults to
        :func:`time.sleep`; tests pass ``ManualClock.advance`` so injected
        latency advances simulated time instead of blocking.
    clock:
        Timestamp source for the fired-fault log and event records.
        Defaults to a monotonically increasing fire counter.
    events:
        Optional :class:`repro.obs.EventLog`; every fired fault records a
        typed ``fault_injected`` event alongside the injector's own log.
    """

    enabled = True

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        sleeper: Optional[Callable[[float], None]] = None,
        clock: Optional[Callable[[], float]] = None,
        events: Any = None,
    ) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self._sleep = sleeper if sleeper is not None else time.sleep
        self._clock = clock
        self.events = events
        self._states = [
            _SpecState(spec, self.plan.seed, index)
            for index, spec in enumerate(self.plan.specs)
        ]
        #: Every fired fault, in firing order: ``{"point", "kind", "visit", ...ctx}``.
        self.log: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def _firing(
        self, point: str, ctx: Mapping[str, Any], kinds: Sequence[str]
    ) -> List[FaultSpec]:
        fired: List[FaultSpec] = []
        for state in self._states:
            spec = state.spec
            if spec.point != point or spec.kind not in kinds:
                continue
            if spec.match and any(ctx.get(key) != value for key, value in spec.match.items()):
                continue
            state.visits += 1
            if state.visits <= spec.after:
                continue
            if spec.times is not None and state.fired >= spec.times:
                continue
            if spec.probability < 1.0 and state.rng.random() >= spec.probability:
                continue
            state.fired += 1
            record: Dict[str, Any] = {
                "point": point,
                "kind": spec.kind,
                "visit": state.visits,
            }
            record.update({key: value for key, value in ctx.items() if _scalar(value)})
            self.log.append(record)
            if self.events is not None:
                # ``kind`` names the event kind positionally; the fault kind
                # travels as ``fault_kind``.
                attrs = {key: value for key, value in record.items() if key != "kind"}
                self.events.record(
                    "fault_injected", self._now(), fault_kind=spec.kind, **attrs
                )
            fired.append(spec)
        return fired

    def _now(self) -> float:
        if self._clock is not None:
            return float(self._clock())
        return float(len(self.log))

    # ------------------------------------------------------------------
    # Injection surface (what components call)
    # ------------------------------------------------------------------
    def fire(self, point: str, **ctx: Any) -> None:
        """Visit ``point``: sleep for latency faults, raise for failures.

        Latency faults sleep *before* any scheduled failure raises, so a
        plan can model "slow, then dead".
        """
        for spec in self._firing(point, ctx, _FIRE_KINDS):
            if spec.kind == "latency":
                self._sleep(spec.latency_ms / 1000.0)
            elif spec.kind == "transient":
                raise TransientFault(f"injected transient fault at {point}")
            else:
                raise CrashFault(f"injected crash at {point}")

    def truncate_fraction(self, point: str, **ctx: Any) -> Optional[float]:
        """Torn-write check: the byte fraction that survives, or ``None``."""
        specs = self._firing(point, ctx, ("torn_write",))
        return specs[0].truncate_at if specs else None

    def corrupt_file(self, point: str, path: str, **ctx: Any) -> bool:
        """Maybe flip bytes in the middle of ``path``; True if corrupted."""
        if not self._firing(point, ctx, ("corrupt",)):
            return False
        size = os.path.getsize(path)
        if size == 0:
            return True
        middle = size // 2
        span = min(64, size - middle) or 1
        with open(path, "r+b") as handle:
            handle.seek(max(0, min(middle, size - span)))
            chunk = handle.read(span)
            handle.seek(max(0, min(middle, size - span)))
            handle.write(bytes(byte ^ 0xFF for byte in chunk))
        return True

    def bind(self, **ctx: Any) -> "BoundInjector":
        """A view that merges ``ctx`` into every visit (e.g. ``shard=2``)."""
        return BoundInjector(self, dict(ctx))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def fired(self, point: Optional[str] = None) -> int:
        """How many faults have fired (optionally at one point)."""
        if point is None:
            return len(self.log)
        return sum(1 for record in self.log if record["point"] == point)

    def to_jsonl(self, path: str) -> str:
        """Export the fired-fault log, one JSON object per line."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.log:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return str(path)


class BoundInjector:
    """A :class:`FaultInjector` view carrying implicit context.

    Shards bind ``shard=<id>`` once so every visit they make is targetable
    by ``FaultSpec.match`` without threading the id through call sites.
    Explicit per-call context wins over bound context on key collisions.
    """

    enabled = True

    def __init__(self, base: FaultInjector, ctx: Dict[str, Any]) -> None:
        self._base = base
        self._ctx = ctx

    @property
    def log(self) -> List[Dict[str, Any]]:
        return self._base.log

    @property
    def events(self) -> Any:
        return self._base.events

    def fire(self, point: str, **ctx: Any) -> None:
        self._base.fire(point, **{**self._ctx, **ctx})

    def truncate_fraction(self, point: str, **ctx: Any) -> Optional[float]:
        return self._base.truncate_fraction(point, **{**self._ctx, **ctx})

    def corrupt_file(self, point: str, path: str, **ctx: Any) -> bool:
        return self._base.corrupt_file(point, path, **{**self._ctx, **ctx})

    def bind(self, **ctx: Any) -> "BoundInjector":
        return BoundInjector(self._base, {**self._ctx, **ctx})

    def fired(self, point: Optional[str] = None) -> int:
        return self._base.fired(point)


class NullInjector:
    """The disabled injector: every method is a bare no-op.

    Mirrors ``repro.obs.trace.NullTracer`` — components hold a reference
    unconditionally and call through without branching, so the disabled
    fleet pays one attribute load + empty call per injection point and
    stays bitwise-identical (no RNG draws, no clock reads).
    """

    enabled = False
    log: Tuple[Dict[str, Any], ...] = ()
    events = None

    def fire(self, point: str, **ctx: Any) -> None:
        pass

    def truncate_fraction(self, point: str, **ctx: Any) -> Optional[float]:
        return None

    def corrupt_file(self, point: str, path: str, **ctx: Any) -> bool:
        return False

    def bind(self, **ctx: Any) -> "NullInjector":
        return self

    def fired(self, point: Optional[str] = None) -> int:
        return 0

    def to_jsonl(self, path: str) -> str:
        with open(path, "w", encoding="utf-8"):
            pass
        return str(path)


#: Shared no-op singleton — the default ``injector=`` everywhere.
NULL_INJECTOR = NullInjector()
