"""Per-shard circuit breakers: stop routing at a crashing component.

Classic three-state breaker (closed → open → half-open → closed):

* **closed** — healthy; requests flow.  ``allow`` is a single attribute
  compare with no clock read, so the happy path costs nothing.
* **open** — ``failure_threshold`` consecutive failures tripped it;
  ``allow`` refuses until ``cooldown_s`` has elapsed on the breaker's
  clock (wall time in production, :class:`~repro.serving.metrics.
  ManualClock` in tests — injected latency advances the same clock, so
  recovery is deterministic).
* **half_open** — cooldown elapsed; trial requests flow.  One failure
  re-trips immediately; ``success_threshold`` consecutive successes
  close it again.

The breaker only *counts* — routing decisions (skip this shard, reroute
to a sibling) live in :class:`~repro.serving.cluster.ShardedCluster`,
which also records the ``circuit_open``/``circuit_closed`` events on
state transitions.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 0.05,
        success_threshold: int = 1,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if success_threshold < 1:
            raise ValueError(f"success_threshold must be >= 1, got {success_threshold}")
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.failure_threshold = int(failure_threshold)
        self.success_threshold = int(success_threshold)
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self.state = self.CLOSED
        self._consecutive_failures = 0
        self._trial_successes = 0
        self._opened_at = 0.0
        # Lifetime counters for reporting.
        self.opens = 0
        self.failures_total = 0
        self.successes_total = 0

    def allow(self) -> bool:
        """May a request be routed here right now?

        An open breaker transitions to half-open (and admits the caller as
        the trial request) once the cooldown has elapsed.
        """
        if self.state != self.OPEN:
            return True
        if self._clock() - self._opened_at < self.cooldown_s:
            return False
        self.state = self.HALF_OPEN
        self._trial_successes = 0
        return True

    def record_success(self) -> None:
        self.successes_total += 1
        if self.state == self.HALF_OPEN:
            self._trial_successes += 1
            if self._trial_successes >= self.success_threshold:
                self.state = self.CLOSED
                self._consecutive_failures = 0
        elif self._consecutive_failures:
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        self.failures_total += 1
        if self.state == self.HALF_OPEN:
            self._trip()
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self.state = self.OPEN
        self._opened_at = self._clock()
        self.opens += 1
        self._consecutive_failures = 0
        self._trial_successes = 0

    def status(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "opens": self.opens,
            "failures": self.failures_total,
            "successes": self.successes_total,
            "consecutive_failures": self._consecutive_failures,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircuitBreaker(state={self.state!r}, opens={self.opens})"
