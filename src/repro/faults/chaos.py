"""Canned chaos: the default fault plan, resilience alert rules, and the
soak runner the chaos benchmark and CI smoke job drive.

:func:`default_chaos_plan` is one opinionated schedule that exercises every
failure family the stack claims to survive — injected latency on retrieval,
a shard crashing mid-incident (long enough to trip its breaker), torn
registry-index and click-log writes, one corrupted checkpoint, transient
train/canary failures, and a crash mid-hot-swap.  :func:`run_chaos_soak`
replays generated traffic through an :class:`~repro.online.OnlineLoop`
under that schedule and audits the availability invariant: **every
submitted request is answered from some tier** (full, prefilter, or
popularity — degraded, never dropped).

The plans and rules live here, next to the injector, rather than in the
benchmark: a soak you can import is a soak tests can shrink.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.faults.injector import FaultInjector, FaultPlan, FaultSpec

__all__ = [
    "DEFAULT_FAULT_ALERT_RULES",
    "default_fault_alert_rules",
    "default_chaos_plan",
    "default_fleet_chaos_plan",
    "run_chaos_soak",
    "run_fleet_soak",
]

#: Declarative alert rules over the resilience telemetry the online loop
#: feeds into its snapshots (``repro.obs.AlertRule.parse`` syntax).  Two
#: consecutive breaches are required for the rate rules so one bad flush
#: doesn't page; an open breaker pages immediately — it *is* the incident.
#: The fleet rules evaluate over :meth:`repro.serving.fleet.FleetSupervisor.
#: telemetry_extra` scalars; a snapshot without them (the in-process path)
#: counts as healthy — absent data is not an incident.
DEFAULT_FAULT_ALERT_RULES = (
    "shed-rate: shed_rate > 0.05 for 2",
    "fallback-share: degraded_share > 0.25 for 2",
    "open-breakers: open_breakers >= 1",
    "worker-flap: worker_restarts >= 3",
    "worker-quarantine: quarantined_workers >= 1",
    "fleet-capacity: workers_available < 1",
)


def default_fault_alert_rules() -> List[str]:
    """The default resilience rules (a fresh list, safe to extend)."""
    return list(DEFAULT_FAULT_ALERT_RULES)


def default_chaos_plan(seed: int = 0, shards: int = 2) -> FaultPlan:
    """One schedule touching every fault family the stack must survive.

    Sized for a small soak (a few cycles of ~100 events): the shard-0 crash
    burst is long enough to trip a default breaker (3 consecutive failures)
    and reroute its users; the checkpoint corruption hits the **first
    refresh candidate** (``after=1`` skips the bootstrap registration), so
    the soak exercises quarantine + rollback on a real promotion path; the
    ``swap.shard`` crash targets the *last* shard so the transactional swap
    has maximum work to roll back.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return FaultPlan(
        seed=seed,
        specs=(
            # Slow retrieval, fleet-wide, forever: the deadline-budget tier
            # (prefilter shortlist) absorbs it.
            FaultSpec(
                "engine.retrieve", "latency",
                probability=0.05, times=None, latency_ms=20.0,
            ),
            # Shard 0 dies for a 6-request burst once warm: trips its
            # breaker, reroutes its users to siblings, then heals.
            FaultSpec(
                "batcher.submit", "crash",
                after=20, times=6, match={"shard": 0},
            ),
            # One torn index write (absorbed by the registry's internal
            # retry; tmp+rename keeps the published index intact).
            FaultSpec("registry.save_index", "torn_write", after=1, times=1),
            # One corrupted checkpoint — the first refresh candidate.  Its
            # CRC verification fails at deploy time; the loop quarantines it
            # and rolls back to the parent.
            FaultSpec("registry.checkpoint", "corrupt", after=1, times=1),
            # Two torn click-log appends (dropped by the recovery scan on
            # the next restart; counted live as torn_writes).
            FaultSpec("clicklog.append", "torn_write", after=10, times=2),
            # One transient failure each in train and canary — retried with
            # backoff, the cycle still completes.
            FaultSpec("trainer.update", "transient", times=1),
            FaultSpec("canary.judge", "transient", times=1),
            # One crash mid-hot-swap at the last shard: every earlier shard
            # has already swapped and must roll back to a consistent
            # generation.  ``after=1`` spares the bootstrap deployment.
            FaultSpec(
                "swap.shard", "crash",
                after=1, times=1, match={"shard": shards - 1},
            ),
            # Process-fleet family (no-ops on the in-process path, which
            # never visits these points; per-spec RNG streams are
            # independent, so appending them never shifts the schedule
            # above): one worker-process death mid-traffic, a lost-
            # heartbeat burst long enough to trip the hung-worker deadline,
            # and one torn slab publish on the first post-bootstrap swap.
            FaultSpec("worker.exec", "crash", after=25, times=1, match={"worker": 0}),
            FaultSpec(
                "worker.heartbeat", "crash",
                after=3, times=8, match={"worker": shards - 1},
            ),
            FaultSpec("slab.publish", "torn_write", after=1, times=1),
        ),
    )


def default_fleet_chaos_plan(seed: int = 0, workers: int = 2) -> FaultPlan:
    """The process-fleet drill: every failure mode the supervisor claims to
    survive, sized for a soak of a few hundred requests.

    Worker 0 is OOM-killed mid-batch once warm (``worker.exec`` crash →
    ``os._exit``), the last worker loses a burst of heartbeats long enough
    to be declared hung and killed, the first post-bootstrap slab publish
    is torn (destroyed and retried under a fresh name), and worker 0's
    first restart hits a transient spawn failure (one more backoff cycle).
    The zero-drop invariant must hold throughout: every submitted request
    is answered by a sibling, a restarted worker, or the supervisor's
    popularity floor.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return FaultPlan(
        seed=seed,
        specs=(
            FaultSpec("worker.exec", "crash", after=12, times=1, match={"worker": 0}),
            FaultSpec(
                "worker.heartbeat", "crash",
                after=3, times=12, match={"worker": workers - 1},
            ),
            FaultSpec("slab.publish", "torn_write", after=1, times=1),
            # ``after`` counts *matching* visits, so this spares worker 0's
            # bootstrap spawn and fails its first restart attempt instead.
            FaultSpec(
                "worker.spawn", "transient",
                after=1, times=1, match={"worker": 0},
            ),
        ),
    )


def run_chaos_soak(
    loop,
    generator,
    cycles: int = 4,
    events_per_cycle: int = 100,
    injector: Optional[FaultInjector] = None,
) -> Dict[str, Any]:
    """Drive ``loop`` through ``cycles`` refresh cycles of generated traffic.

    Bootstraps the loop if it has no production yet, then runs each cycle
    and audits the zero-drop invariant: the fleet must answer exactly as
    many rankings as requests submitted (micro-batching means answers
    arrive from ``poll``/``flush``, but the replay drains fully each
    cycle).  Returns a JSON-serializable report — the chaos benchmark's
    artifact — with per-cycle summaries, the merged degradation ladder,
    breaker states, control-plane event totals, and (when ``injector`` is
    passed) the fired-fault count.
    """
    if loop.registry.production is None:
        loop.bootstrap()
    submitted = 0
    answered = 0
    reports = []
    for _ in range(int(cycles)):
        events = generator.generate(int(events_per_cycle))
        report = loop.run_cycle(events)
        submitted += len(events)
        answered += report.queries_served
        reports.append(report.summary())
    summary = loop.cluster.merged_metrics().summary()
    return {
        "cycles": int(cycles),
        "submitted": submitted,
        "answered": answered,
        "dropped": submitted - answered,
        "degradation": summary["degradation"],
        "breakers": loop.cluster.breaker_status(),
        "open_breakers": loop.cluster.open_breakers,
        "rollbacks": sum(1 for report in reports if report["rollback"] is not None),
        "event_counts": loop.cluster.control.events.counts(),
        "faults_fired": None if injector is None else injector.fired(),
        "reports": reports,
    }


def run_fleet_soak(
    fleet,
    generator,
    events: int = 300,
    swap_models: Optional[List[Any]] = None,
    settle_s: float = 0.0,
) -> Dict[str, Any]:
    """Drive a :class:`~repro.serving.fleet.FleetSupervisor` through
    generated traffic (plus optional hot swaps) and audit zero drops.

    ``swap_models`` hot-swaps each ``(model, version)`` pair at evenly
    spaced points in the traffic — under a fleet fault plan the first swap
    is where the torn ``slab.publish`` fires and is retried.  ``settle_s``
    keeps servicing the fleet after the drain so in-flight restarts
    complete before the report snapshots worker states.  Returns the
    JSON-serializable soak report (the fleet benchmark's artifact).
    """
    traffic = generator.generate(int(events))
    swaps = list(swap_models or [])
    swap_at = {
        (index + 1) * len(traffic) // (len(swaps) + 1): swap
        for index, swap in enumerate(swaps)
    }
    answered = 0
    swaps_done = 0
    for index, event in enumerate(traffic):
        if index in swap_at:
            model, version = swap_at[index]
            answered += len(fleet.swap_model(model, version=version))
            swaps_done += 1
        answered += len(fleet.submit(event.user, event.query_category))
    answered += len(fleet.flush())
    if settle_s > 0:
        import time as _time

        deadline = _time.monotonic() + settle_s
        while _time.monotonic() < deadline:
            answered += len(fleet.poll())
            _time.sleep(0.01)
        answered += len(fleet.flush())
    counts = fleet.control.events.counts()
    return {
        "submitted": len(traffic),
        "answered": answered,
        "dropped": len(traffic) - answered,
        "swaps": swaps_done,
        "generation": fleet.generation,
        "restarts": fleet.restarts_total,
        "quarantined": fleet.quarantined_workers,
        "workers_available": fleet.workers_available,
        "recovered_segments": list(fleet.recovered_segments),
        "worker_status": fleet.worker_status(),
        "event_counts": counts,
        "faults_fired_supervisor": fleet.injector.fired(),
        "telemetry": fleet.telemetry_extra(),
    }
