"""Canned chaos: the default fault plan, resilience alert rules, and the
soak runner the chaos benchmark and CI smoke job drive.

:func:`default_chaos_plan` is one opinionated schedule that exercises every
failure family the stack claims to survive — injected latency on retrieval,
a shard crashing mid-incident (long enough to trip its breaker), torn
registry-index and click-log writes, one corrupted checkpoint, transient
train/canary failures, and a crash mid-hot-swap.  :func:`run_chaos_soak`
replays generated traffic through an :class:`~repro.online.OnlineLoop`
under that schedule and audits the availability invariant: **every
submitted request is answered from some tier** (full, prefilter, or
popularity — degraded, never dropped).

The plans and rules live here, next to the injector, rather than in the
benchmark: a soak you can import is a soak tests can shrink.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.faults.injector import FaultInjector, FaultPlan, FaultSpec

__all__ = [
    "DEFAULT_FAULT_ALERT_RULES",
    "default_fault_alert_rules",
    "default_chaos_plan",
    "run_chaos_soak",
]

#: Declarative alert rules over the resilience telemetry the online loop
#: feeds into its snapshots (``repro.obs.AlertRule.parse`` syntax).  Two
#: consecutive breaches are required for the rate rules so one bad flush
#: doesn't page; an open breaker pages immediately — it *is* the incident.
DEFAULT_FAULT_ALERT_RULES = (
    "shed-rate: shed_rate > 0.05 for 2",
    "fallback-share: degraded_share > 0.25 for 2",
    "open-breakers: open_breakers >= 1",
)


def default_fault_alert_rules() -> List[str]:
    """The default resilience rules (a fresh list, safe to extend)."""
    return list(DEFAULT_FAULT_ALERT_RULES)


def default_chaos_plan(seed: int = 0, shards: int = 2) -> FaultPlan:
    """One schedule touching every fault family the stack must survive.

    Sized for a small soak (a few cycles of ~100 events): the shard-0 crash
    burst is long enough to trip a default breaker (3 consecutive failures)
    and reroute its users; the checkpoint corruption hits the **first
    refresh candidate** (``after=1`` skips the bootstrap registration), so
    the soak exercises quarantine + rollback on a real promotion path; the
    ``swap.shard`` crash targets the *last* shard so the transactional swap
    has maximum work to roll back.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return FaultPlan(
        seed=seed,
        specs=(
            # Slow retrieval, fleet-wide, forever: the deadline-budget tier
            # (prefilter shortlist) absorbs it.
            FaultSpec(
                "engine.retrieve", "latency",
                probability=0.05, times=None, latency_ms=20.0,
            ),
            # Shard 0 dies for a 6-request burst once warm: trips its
            # breaker, reroutes its users to siblings, then heals.
            FaultSpec(
                "batcher.submit", "crash",
                after=20, times=6, match={"shard": 0},
            ),
            # One torn index write (absorbed by the registry's internal
            # retry; tmp+rename keeps the published index intact).
            FaultSpec("registry.save_index", "torn_write", after=1, times=1),
            # One corrupted checkpoint — the first refresh candidate.  Its
            # CRC verification fails at deploy time; the loop quarantines it
            # and rolls back to the parent.
            FaultSpec("registry.checkpoint", "corrupt", after=1, times=1),
            # Two torn click-log appends (dropped by the recovery scan on
            # the next restart; counted live as torn_writes).
            FaultSpec("clicklog.append", "torn_write", after=10, times=2),
            # One transient failure each in train and canary — retried with
            # backoff, the cycle still completes.
            FaultSpec("trainer.update", "transient", times=1),
            FaultSpec("canary.judge", "transient", times=1),
            # One crash mid-hot-swap at the last shard: every earlier shard
            # has already swapped and must roll back to a consistent
            # generation.  ``after=1`` spares the bootstrap deployment.
            FaultSpec(
                "swap.shard", "crash",
                after=1, times=1, match={"shard": shards - 1},
            ),
        ),
    )


def run_chaos_soak(
    loop,
    generator,
    cycles: int = 4,
    events_per_cycle: int = 100,
    injector: Optional[FaultInjector] = None,
) -> Dict[str, Any]:
    """Drive ``loop`` through ``cycles`` refresh cycles of generated traffic.

    Bootstraps the loop if it has no production yet, then runs each cycle
    and audits the zero-drop invariant: the fleet must answer exactly as
    many rankings as requests submitted (micro-batching means answers
    arrive from ``poll``/``flush``, but the replay drains fully each
    cycle).  Returns a JSON-serializable report — the chaos benchmark's
    artifact — with per-cycle summaries, the merged degradation ladder,
    breaker states, control-plane event totals, and (when ``injector`` is
    passed) the fired-fault count.
    """
    if loop.registry.production is None:
        loop.bootstrap()
    submitted = 0
    answered = 0
    reports = []
    for _ in range(int(cycles)):
        events = generator.generate(int(events_per_cycle))
        report = loop.run_cycle(events)
        submitted += len(events)
        answered += report.queries_served
        reports.append(report.summary())
    summary = loop.cluster.merged_metrics().summary()
    return {
        "cycles": int(cycles),
        "submitted": submitted,
        "answered": answered,
        "dropped": submitted - answered,
        "degradation": summary["degradation"],
        "breakers": loop.cluster.breaker_status(),
        "open_breakers": loop.cluster.open_breakers,
        "rollbacks": sum(1 for report in reports if report["rollback"] is not None),
        "event_counts": loop.cluster.control.events.counts(),
        "faults_fired": None if injector is None else injector.fired(),
        "reports": reports,
    }
