"""Module and Parameter abstractions, mirroring the familiar layer API.

A :class:`Module` owns :class:`Parameter` tensors and child modules; it exposes
recursive parameter iteration (for optimizers), a training/eval mode switch
(for dropout), and a flat ``state_dict`` (for checkpointing).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor registered as a trainable model weight."""

    def __init__(self, data, dtype: np.dtype = np.float32) -> None:
        super().__init__(data, requires_grad=True, dtype=dtype)


class Module:
    """Base class for all neural network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes in ``__init__`` and implement :meth:`forward`.  Assignment
    order is preserved, which makes ``state_dict`` keys stable.
    """

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self._training: bool = True

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # forward dispatch
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError(f"{type(self).__name__} must implement forward()")

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    # parameter traversal
    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """Return all trainable parameters of this module and its children.

        Parameters reachable through several paths (e.g. an embedding table
        shared by two subnetworks) are returned once, so optimizers apply
        exactly one update per step.
        """
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs in registration order.

        Shared parameters are yielded once, under the first name they are
        reached by (depth-first registration order).
        """
        seen: set = set()
        yield from self._named_parameters(prefix, seen)

    def _named_parameters(self, prefix: str, seen: set) -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            if id(param) not in seen:
                seen.add(id(param))
                yield prefix + name, param
        for name, module in self._modules.items():
            yield from module._named_parameters(f"{prefix}{name}.", seen)

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants, depth first."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total number of scalar weights in the module tree."""
        return sum(param.size for param in self.parameters())

    def zero_grad(self) -> None:
        """Reset accumulated gradients on every parameter."""
        for param in self.parameters():
            param.grad = None

    # ------------------------------------------------------------------
    # train / eval mode
    # ------------------------------------------------------------------
    @property
    def training(self) -> bool:
        return self._training

    def train(self) -> "Module":
        """Put the module tree in training mode (dropout active)."""
        for module in self.modules():
            module._training = True
        return self

    def eval(self) -> "Module":
        """Put the module tree in evaluation mode (dropout disabled)."""
        for module in self.modules():
            module._training = False
        return self

    # ------------------------------------------------------------------
    # state dict
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping of dotted parameter names to array copies."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters from :meth:`state_dict` output; strict matching."""
        own = dict(self.named_parameters())
        missing = sorted(set(own) - set(state))
        unexpected = sorted(set(state) - set(own))
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={missing}, unexpected={unexpected}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"checkpoint {value.shape} vs model {param.data.shape}"
                )
            param.data = value.copy()
