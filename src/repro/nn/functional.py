"""Functional aliases over tensor methods, for users who prefer the
``f(x)`` style of calling ops.

Every function here delegates to the corresponding method of
:class:`repro.nn.tensor.Tensor` (or re-exports a free-function op), so there
is exactly one implementation of each operation.
"""

from __future__ import annotations

from repro.nn.ops import (  # noqa: F401  (re-exported)
    concat,
    embedding,
    log_softmax,
    logsumexp,
    masked_fill,
    maximum,
    minimum,
    softmax,
    stack,
    take,
    where,
)
from repro.nn.tensor import Tensor

__all__ = [
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "exp",
    "log",
    "sqrt",
    "abs",
    "clip",
    "matmul",
    "concat",
    "stack",
    "where",
    "maximum",
    "minimum",
    "embedding",
    "take",
    "softmax",
    "log_softmax",
    "logsumexp",
    "masked_fill",
]


def relu(x: Tensor) -> Tensor:
    """Elementwise ``max(x, 0)``."""
    return x.relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Leaky ReLU with the given negative-side slope."""
    return x.leaky_relu(negative_slope)


def sigmoid(x: Tensor) -> Tensor:
    """Numerically stable logistic function."""
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def exp(x: Tensor) -> Tensor:
    """Elementwise exponential."""
    return x.exp()


def log(x: Tensor) -> Tensor:
    """Elementwise natural logarithm."""
    return x.log()


def sqrt(x: Tensor) -> Tensor:
    """Elementwise square root."""
    return x.sqrt()


def abs(x: Tensor) -> Tensor:  # noqa: A001 - mirrors the builtin deliberately
    """Elementwise absolute value."""
    return x.abs()


def clip(x: Tensor, low: float, high: float) -> Tensor:
    """Clamp values to ``[low, high]``."""
    return x.clip(low, high)


def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Matrix product (2-D or batched)."""
    return a.matmul(b)
