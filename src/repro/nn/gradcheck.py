"""Numerical gradient checking for autograd ops.

Used extensively by the test suite and available to users adding new ops:
compares reverse-mode gradients against central finite differences in
float64.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(
    func: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[np.ndarray],
    index: int,
    eps: float = 1e-5,
) -> np.ndarray:
    """Central-difference gradient of ``sum(func(inputs))`` w.r.t. one input.

    ``func`` receives freshly constructed float64 tensors each call, so it
    must be a pure function of its inputs.
    """
    base = [np.asarray(x, dtype=np.float64) for x in inputs]
    grad = np.zeros_like(base[index])
    flat = base[index].reshape(-1)
    grad_flat = grad.reshape(-1)

    def evaluate() -> float:
        tensors = [Tensor(b, dtype=np.float64) for b in base]
        out = func(tensors)
        return float(out.data.sum())

    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = evaluate()
        flat[i] = original - eps
        minus = evaluate()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradients(
    func: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[np.ndarray],
    eps: float = 1e-5,
    atol: float = 1e-6,
    rtol: float = 1e-4,
) -> Tuple[bool, str]:
    """Verify autograd gradients of ``func`` against finite differences.

    Returns ``(ok, message)``; ``message`` names the first failing input and
    the maximum deviation, making test failures actionable.
    """
    tensors = [Tensor(np.asarray(x, dtype=np.float64), requires_grad=True, dtype=np.float64) for x in inputs]
    out = func(tensors)
    out.backward(np.ones_like(out.data))

    for i, tensor in enumerate(tensors):
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(func, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            deviation = float(np.max(np.abs(analytic - numeric)))
            return False, (
                f"gradient mismatch on input {i}: max |analytic - numeric| = {deviation:.3e}"
            )
    return True, "ok"
