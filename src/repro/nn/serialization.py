"""Checkpointing: model state dicts, optimizer state, and full training state.

Two layers of API:

* :func:`save_state` / :func:`load_state` — flat ``name -> array`` dicts as
  ``.npz`` archives (the storage primitive everything else builds on);
* :func:`save_module` / :func:`load_module` — model parameters only (enough
  for inference / serving);
* :func:`optimizer_state` / :func:`load_optimizer_state` — the mutable state
  of an optimizer (step count, learning rate, Adam moment buffers, SGD
  velocities), keyed by parameter *index* within the optimizer's list;
* :func:`save_training_state` / :func:`load_training_state` — one archive
  holding model parameters, every optimizer's state, and arbitrary scalar
  ``extra`` metadata.  This is what warm-start / incremental training
  (:mod:`repro.online.incremental`) checkpoints between refresh cycles: a
  restore followed by more training is bitwise-identical to never having
  stopped, because the Adam moment estimates and bias-correction step counts
  survive the round trip.

Optimizer moment buffers are only meaningful when the restored optimizer was
built over the same parameters in the same order — which holds whenever the
model is reconstructed from the same config, as ``Module`` registration
order is deterministic.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence

import numpy as np

from repro.nn.module import Module
from repro.nn.optim import Optimizer

__all__ = [
    "save_state",
    "load_state",
    "save_module",
    "load_module",
    "optimizer_state",
    "load_optimizer_state",
    "save_training_state",
    "load_training_state",
]

#: Optimizer buffer slots serialized by :func:`optimizer_state`: Adam first
#: and second moments, SGD momentum velocities.
_BUFFER_SLOTS = ("_m", "_v", "_velocity")


def save_state(state: Dict[str, np.ndarray], path: str) -> None:
    """Write a flat state dict to ``path`` (``.npz`` appended if missing)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_state(path: str) -> Dict[str, np.ndarray]:
    """Read a state dict written by :func:`save_state`."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        return {name: archive[name] for name in archive.files}


def save_module(module: Module, path: str) -> None:
    """Checkpoint all parameters of ``module``."""
    save_state(module.state_dict(), path)


def load_module(module: Module, path: str) -> Module:
    """Restore parameters saved with :func:`save_module` into ``module``."""
    module.load_state_dict(load_state(path))
    return module


# ----------------------------------------------------------------------
# optimizer state
# ----------------------------------------------------------------------
def optimizer_state(optimizer: Optimizer) -> Dict[str, np.ndarray]:
    """Flat state dict of an optimizer's mutable state.

    Captures the step count (Adam bias correction), the current learning
    rate (schedulers mutate it), and every moment/velocity buffer keyed by
    the parameter's index in ``optimizer.params``.
    """
    state: Dict[str, np.ndarray] = {
        "step_count": np.asarray(optimizer._step_count, dtype=np.int64),
        "lr": np.asarray(optimizer.lr, dtype=np.float64),
    }
    for slot in _BUFFER_SLOTS:
        buffers = getattr(optimizer, slot, None)
        if buffers is None:
            continue
        for index, buffer in buffers.items():
            state[f"{slot[1:]}.{index}"] = np.asarray(buffer)
    return state


def load_optimizer_state(optimizer: Optimizer, state: Dict[str, np.ndarray]) -> Optimizer:
    """Restore :func:`optimizer_state` output into ``optimizer`` in place.

    The optimizer must manage the same parameter list (same count, same
    shapes) it was saved with; buffer shape mismatches raise.
    """
    optimizer._step_count = int(state["step_count"])
    optimizer.lr = float(state["lr"])
    for slot in _BUFFER_SLOTS:
        buffers = getattr(optimizer, slot, None)
        if buffers is None:
            continue
        prefix = slot[1:] + "."
        buffers.clear()
        for name, value in state.items():
            if not name.startswith(prefix):
                continue
            index = int(name[len(prefix) :])
            if index >= len(optimizer.params):
                raise ValueError(
                    f"optimizer state references parameter {index} but the "
                    f"optimizer holds only {len(optimizer.params)}"
                )
            expected = optimizer.params[index].data.shape
            if value.shape != expected:
                raise ValueError(
                    f"buffer shape mismatch for {name}: "
                    f"checkpoint {value.shape} vs parameter {expected}"
                )
            buffers[index] = value.copy()
    return optimizer


# ----------------------------------------------------------------------
# full training state (model + optimizers + metadata)
# ----------------------------------------------------------------------
def save_training_state(
    path: str,
    module: Module,
    optimizers: Sequence[Optimizer] = (),
    extra: Optional[Dict[str, float]] = None,
) -> None:
    """Checkpoint model parameters, optimizer state, and scalar metadata.

    ``extra`` holds scalars the caller needs to resume exactly (e.g. the
    incremental trainer's update counter); they round-trip as floats.
    """
    state: Dict[str, np.ndarray] = {
        f"model.{name}": value for name, value in module.state_dict().items()
    }
    state["num_optimizers"] = np.asarray(len(optimizers), dtype=np.int64)
    for i, optimizer in enumerate(optimizers):
        for name, value in optimizer_state(optimizer).items():
            state[f"optim{i}.{name}"] = value
    for name, value in (extra or {}).items():
        state[f"extra.{name}"] = np.asarray(float(value), dtype=np.float64)
    save_state(state, path)


def load_training_state(
    path: str,
    module: Module,
    optimizers: Sequence[Optimizer] = (),
) -> Dict[str, float]:
    """Restore :func:`save_training_state`; returns the ``extra`` metadata.

    ``optimizers`` must match the checkpoint's count (pass ``()`` to restore
    only the model, e.g. for serving).
    """
    state = load_state(path)
    saved_optimizers = int(state.pop("num_optimizers", np.asarray(0)))
    if optimizers and len(optimizers) != saved_optimizers:
        raise ValueError(
            f"checkpoint holds {saved_optimizers} optimizer states, "
            f"caller passed {len(optimizers)}"
        )
    module.load_state_dict(
        {
            name[len("model.") :]: value
            for name, value in state.items()
            if name.startswith("model.")
        }
    )
    for i, optimizer in enumerate(optimizers):
        prefix = f"optim{i}."
        load_optimizer_state(
            optimizer,
            {
                name[len(prefix) :]: value
                for name, value in state.items()
                if name.startswith(prefix)
            },
        )
    return {
        name[len("extra.") :]: float(value)
        for name, value in state.items()
        if name.startswith("extra.")
    }
