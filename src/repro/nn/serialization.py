"""Model checkpointing: save/load state dicts as ``.npz`` archives."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from repro.nn.module import Module

__all__ = ["save_state", "load_state", "save_module", "load_module"]


def save_state(state: Dict[str, np.ndarray], path: str) -> None:
    """Write a flat state dict to ``path`` (``.npz`` appended if missing)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_state(path: str) -> Dict[str, np.ndarray]:
    """Read a state dict written by :func:`save_state`."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        return {name: archive[name] for name in archive.files}


def save_module(module: Module, path: str) -> None:
    """Checkpoint all parameters of ``module``."""
    save_state(module.state_dict(), path)


def load_module(module: Module, path: str) -> Module:
    """Restore parameters saved with :func:`save_module` into ``module``."""
    module.load_state_dict(load_state(path))
    return module
