"""Free-function tensor operations built on :class:`repro.nn.tensor.Tensor`.

These complement the methods on ``Tensor`` with operations that either take
multiple tensors (``concat``, ``stack``, ``where``), take integer index arrays
(``embedding``, ``take``), or fuse several primitive steps for numerical
stability (``log_softmax``, ``logsumexp``, ``bce_with_logits``).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn.arena import active_arena
from repro.nn.tensor import Tensor, _unbroadcast, is_grad_enabled

__all__ = [
    "concat",
    "stack",
    "where",
    "maximum",
    "minimum",
    "embedding",
    "take",
    "linear",
    "softmax",
    "log_softmax",
    "logsumexp",
    "masked_fill",
]


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis``; gradients split back by segment."""
    if not tensors:
        raise ValueError("concat() requires at least one tensor")
    data = np.concatenate([t.data for t in tensors], axis=axis)
    if not is_grad_enabled():
        return Tensor._from_data(data)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        moved = np.moveaxis(grad, axis, 0)
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                piece = np.moveaxis(moved[start:stop], 0, axis)
                tensor._accumulate(np.ascontiguousarray(piece))

    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack same-shaped tensors along a new axis."""
    if not tensors:
        raise ValueError("stack() requires at least one tensor")
    data = np.stack([t.data for t in tensors], axis=axis)
    if not is_grad_enabled():
        return Tensor._from_data(data)

    def backward(grad: np.ndarray) -> None:
        moved = np.moveaxis(grad, axis, 0)
        for i, tensor in enumerate(tensors):
            if tensor.requires_grad:
                tensor._accumulate(np.ascontiguousarray(moved[i]))

    return Tensor._make(data, tuple(tensors), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Select from ``a`` where ``condition`` is true, else from ``b``.

    ``condition`` is a plain boolean array (non-differentiable).
    """
    condition = np.asarray(condition, dtype=bool)
    data = np.where(condition, a.data, b.data)
    if not is_grad_enabled():
        return Tensor._from_data(data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * condition, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * ~condition, b.shape))

    return Tensor._make(data, (a, b), backward)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise maximum; ties route gradient to the first operand."""
    return where(a.data >= b.data, a, b)


def minimum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise minimum; ties route gradient to the first operand."""
    return where(a.data <= b.data, a, b)


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Look up rows of ``weight`` (V, D) by an integer array of any shape.

    Output shape is ``indices.shape + (D,)``.  The backward pass scatter-adds
    into the embedding table, matching dense-gradient embedding layers.
    """
    indices = np.asarray(indices)
    if not np.issubdtype(indices.dtype, np.integer):
        raise TypeError(f"embedding indices must be integers, got {indices.dtype}")
    data = weight.data[indices]
    if not is_grad_enabled():
        return Tensor._from_data(data)

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            arena = active_arena()
            if arena is not None:
                # Scatter-add straight into the (possibly recycled) weight
                # gradient — the reference path below materialises a full
                # zeroed table per lookup and then adds it into the grad,
                # two table-sized passes the hot path cannot afford.
                if weight.grad is None:
                    weight.grad = arena.lease_zeros(weight.data.shape, weight.data.dtype)
                np.add.at(
                    weight.grad, indices.reshape(-1), grad.reshape(-1, weight.data.shape[-1])
                )
                return
            full = np.zeros_like(weight.data)
            np.add.at(full, indices.reshape(-1), grad.reshape(-1, weight.data.shape[-1]))
            weight._accumulate(full)

    return Tensor._make(data, (weight,), backward)


def take(tensor: Tensor, indices: np.ndarray, axis: int = 0) -> Tensor:
    """Differentiable ``np.take`` along ``axis`` with integer ``indices``."""
    indices = np.asarray(indices)
    data = np.take(tensor.data, indices, axis=axis)
    if not is_grad_enabled():
        return Tensor._from_data(data)

    def backward(grad: np.ndarray) -> None:
        if tensor.requires_grad:
            full = np.zeros_like(tensor.data)
            moved_full = np.moveaxis(full, axis, 0)
            moved_grad = np.moveaxis(
                grad, tuple(range(axis, axis + indices.ndim)), tuple(range(indices.ndim))
            )
            np.add.at(moved_full, indices, moved_grad)
            tensor._accumulate(full)

    return Tensor._make(data, (tensor,), backward)


def _accumulate_matmul(tensor: Tensor, a: np.ndarray, b: np.ndarray) -> None:
    """Accumulate ``a @ b`` into ``tensor.grad`` without a temporary.

    When the tensor has no gradient yet (the common case — each weight and
    each activation receives exactly one contribution per training step) the
    product is written straight into a fresh buffer with ``np.matmul(...,
    out=...)``; only genuine second contributions pay for a temporary plus
    an add.
    """
    if tensor.grad is None:
        arena = active_arena()
        out = (
            arena.lease(tensor.data.shape, tensor.data.dtype)
            if arena is not None
            else np.empty_like(tensor.data)
        )
        np.matmul(a, b, out=out)
        tensor.grad = out
    else:
        tensor.grad += a @ b


def linear(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    activation: Optional[str] = None,
) -> Tensor:
    """Fused affine op: ``activation(x @ weight + bias)`` as ONE graph node.

    The eager reference path builds this from three ops (matmul, broadcast
    add, activation), each with its own output allocation, backward closure,
    and gradient buffer.  The training fast path (:func:`repro.nn.fast_math`)
    fuses them: the bias add and the activation run in place on the matmul
    output, and one backward closure writes the three gradients with single
    GEMMs (``out=`` into arena buffers when one is active).

    Two weight layouts are supported:

    * ``(in, out)`` — a plain layer; ``x`` may carry any leading dims, which
      are flattened into one GEMM exactly like :class:`repro.nn.layers.Linear`;
    * ``(K, in, out)`` — a **packed** stack of K layers sharing one input
      ``(B, in)`` (broadcast over K) or carrying per-layer inputs
      ``(K, B, in)``; forward and backward each run as one batched GEMM.
      Bias, when given, has shape ``(K, out)``.

    ``activation`` is ``None``/``"linear"`` or ``"relu"`` — the only
    activations on the training hot path; anything else should be applied as
    a separate op.
    """
    if activation not in (None, "linear", "relu"):
        raise ValueError(f"linear() cannot fuse activation {activation!r}")
    relu = activation == "relu"
    wd = weight.data
    xd = x.data
    if xd.shape[-1] != wd.shape[-2]:
        raise ValueError(
            f"linear expected input features {wd.shape[-2]}, got input shape {xd.shape}"
        )

    packed = wd.ndim == 3
    if not packed:
        if wd.ndim != 2:
            raise ValueError(f"weight must be (in, out) or (K, in, out), got {wd.shape}")
        leading = xd.shape[:-1]
        flat = xd.reshape(-1, wd.shape[0])
        data = flat @ wd
        if bias is not None:
            data += bias.data
        if relu:
            np.maximum(data, 0.0, out=data)
        out_shape = (*leading, wd.shape[1])
        data = data.reshape(out_shape)
    else:
        if xd.ndim not in (2, 3):
            raise ValueError(f"packed linear input must be (B, in) or (K, B, in), got {xd.shape}")
        if bias is not None and bias.data.shape != (wd.shape[0], wd.shape[2]):
            raise ValueError(
                f"packed bias must be (K, out) = {(wd.shape[0], wd.shape[2])}, "
                f"got {bias.data.shape}"
            )
        data = xd @ wd  # (B, in) @ (K, in, out) -> (K, B, out), batched over K
        if bias is not None:
            data += bias.data[:, None, :]
        if relu:
            np.maximum(data, 0.0, out=data)

    if not is_grad_enabled():
        return Tensor._from_data(data)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        g = grad * (data > 0) if relu else grad
        if not packed:
            gf = g.reshape(-1, wd.shape[1])
            if weight.requires_grad:
                _accumulate_matmul(weight, flat.T, gf)
            if bias is not None and bias.requires_grad:
                bias._accumulate(gf.sum(axis=0))
            if x.requires_grad:
                if x.grad is None:
                    arena = active_arena()
                    # np.empty (not empty_like): the buffer must be
                    # C-contiguous so the 2-D reshape below is a view.
                    out = (
                        arena.lease(xd.shape, xd.dtype)
                        if arena is not None
                        else np.empty(xd.shape, dtype=xd.dtype)
                    )
                    np.matmul(gf, wd.T, out=out.reshape(-1, wd.shape[0]))
                    x.grad = out
                else:
                    x.grad += (gf @ wd.T).reshape(xd.shape)
        else:
            if weight.requires_grad:
                # (K, in, B) @ (K, B, out) — or broadcast (in, B) for a
                # shared input — one batched GEMM per step.
                _accumulate_matmul(weight, xd.swapaxes(-1, -2), g)
            if bias is not None and bias.requires_grad:
                bias._accumulate(g.sum(axis=1))
            if x.requires_grad:
                xg = g @ wd.swapaxes(-1, -2)  # (K, B, in)
                x._accumulate(_unbroadcast(xg, xd.shape))

    return Tensor._make(data, parents, backward)


def logsumexp(tensor: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable ``log(sum(exp(x)))`` along ``axis``."""
    x = tensor.data
    m = x.max(axis=axis, keepdims=True)
    shifted = np.exp(x - m)
    total = shifted.sum(axis=axis, keepdims=True)
    data = (np.log(total) + m)
    if not keepdims:
        data = np.squeeze(data, axis=axis)
    if not is_grad_enabled():
        return Tensor._from_data(data)
    softmax_vals = shifted / total

    def backward(grad: np.ndarray) -> None:
        if tensor.requires_grad:
            g = grad if keepdims else np.expand_dims(grad, axis=axis)
            tensor._accumulate(g * softmax_vals)

    return Tensor._make(data, (tensor,), backward)


def softmax(tensor: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` with a fused, stable backward pass."""
    x = tensor.data
    shifted = np.exp(x - x.max(axis=axis, keepdims=True))
    data = shifted / shifted.sum(axis=axis, keepdims=True)
    if not is_grad_enabled():
        return Tensor._from_data(data)

    def backward(grad: np.ndarray) -> None:
        if tensor.requires_grad:
            dot = (grad * data).sum(axis=axis, keepdims=True)
            tensor._accumulate(data * (grad - dot))

    return Tensor._make(data, (tensor,), backward)


def log_softmax(tensor: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis``; stable fused forward/backward."""
    x = tensor.data
    m = x.max(axis=axis, keepdims=True)
    shifted = x - m
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    data = shifted - lse
    if not is_grad_enabled():
        return Tensor._from_data(data)
    softmax_vals = np.exp(data)

    def backward(grad: np.ndarray) -> None:
        if tensor.requires_grad:
            total = grad.sum(axis=axis, keepdims=True)
            tensor._accumulate(grad - softmax_vals * total)

    return Tensor._make(data, (tensor,), backward)


def masked_fill(tensor: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Replace entries where ``mask`` is true with ``value`` (no grad there)."""
    mask = np.asarray(mask, dtype=bool)
    data = np.where(mask, np.asarray(value, dtype=tensor.data.dtype), tensor.data)
    if not is_grad_enabled():
        return Tensor._from_data(data)

    def backward(grad: np.ndarray) -> None:
        if tensor.requires_grad:
            tensor._accumulate(_unbroadcast(grad * ~mask, tensor.shape))

    return Tensor._make(data, (tensor,), backward)
