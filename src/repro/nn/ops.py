"""Free-function tensor operations built on :class:`repro.nn.tensor.Tensor`.

These complement the methods on ``Tensor`` with operations that either take
multiple tensors (``concat``, ``stack``, ``where``), take integer index arrays
(``embedding``, ``take``), or fuse several primitive steps for numerical
stability (``log_softmax``, ``logsumexp``, ``bce_with_logits``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.nn.tensor import Tensor, _unbroadcast, is_grad_enabled

__all__ = [
    "concat",
    "stack",
    "where",
    "maximum",
    "minimum",
    "embedding",
    "take",
    "softmax",
    "log_softmax",
    "logsumexp",
    "masked_fill",
]


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis``; gradients split back by segment."""
    if not tensors:
        raise ValueError("concat() requires at least one tensor")
    data = np.concatenate([t.data for t in tensors], axis=axis)
    if not is_grad_enabled():
        return Tensor._from_data(data)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        moved = np.moveaxis(grad, axis, 0)
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                piece = np.moveaxis(moved[start:stop], 0, axis)
                tensor._accumulate(np.ascontiguousarray(piece))

    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack same-shaped tensors along a new axis."""
    if not tensors:
        raise ValueError("stack() requires at least one tensor")
    data = np.stack([t.data for t in tensors], axis=axis)
    if not is_grad_enabled():
        return Tensor._from_data(data)

    def backward(grad: np.ndarray) -> None:
        moved = np.moveaxis(grad, axis, 0)
        for i, tensor in enumerate(tensors):
            if tensor.requires_grad:
                tensor._accumulate(np.ascontiguousarray(moved[i]))

    return Tensor._make(data, tuple(tensors), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Select from ``a`` where ``condition`` is true, else from ``b``.

    ``condition`` is a plain boolean array (non-differentiable).
    """
    condition = np.asarray(condition, dtype=bool)
    data = np.where(condition, a.data, b.data)
    if not is_grad_enabled():
        return Tensor._from_data(data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * condition, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * ~condition, b.shape))

    return Tensor._make(data, (a, b), backward)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise maximum; ties route gradient to the first operand."""
    return where(a.data >= b.data, a, b)


def minimum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise minimum; ties route gradient to the first operand."""
    return where(a.data <= b.data, a, b)


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Look up rows of ``weight`` (V, D) by an integer array of any shape.

    Output shape is ``indices.shape + (D,)``.  The backward pass scatter-adds
    into the embedding table, matching dense-gradient embedding layers.
    """
    indices = np.asarray(indices)
    if not np.issubdtype(indices.dtype, np.integer):
        raise TypeError(f"embedding indices must be integers, got {indices.dtype}")
    data = weight.data[indices]
    if not is_grad_enabled():
        return Tensor._from_data(data)

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            full = np.zeros_like(weight.data)
            np.add.at(full, indices.reshape(-1), grad.reshape(-1, weight.data.shape[-1]))
            weight._accumulate(full)

    return Tensor._make(data, (weight,), backward)


def take(tensor: Tensor, indices: np.ndarray, axis: int = 0) -> Tensor:
    """Differentiable ``np.take`` along ``axis`` with integer ``indices``."""
    indices = np.asarray(indices)
    data = np.take(tensor.data, indices, axis=axis)
    if not is_grad_enabled():
        return Tensor._from_data(data)

    def backward(grad: np.ndarray) -> None:
        if tensor.requires_grad:
            full = np.zeros_like(tensor.data)
            moved_full = np.moveaxis(full, axis, 0)
            moved_grad = np.moveaxis(
                grad, tuple(range(axis, axis + indices.ndim)), tuple(range(indices.ndim))
            )
            np.add.at(moved_full, indices, moved_grad)
            tensor._accumulate(full)

    return Tensor._make(data, (tensor,), backward)


def logsumexp(tensor: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable ``log(sum(exp(x)))`` along ``axis``."""
    x = tensor.data
    m = x.max(axis=axis, keepdims=True)
    shifted = np.exp(x - m)
    total = shifted.sum(axis=axis, keepdims=True)
    data = (np.log(total) + m)
    if not keepdims:
        data = np.squeeze(data, axis=axis)
    if not is_grad_enabled():
        return Tensor._from_data(data)
    softmax_vals = shifted / total

    def backward(grad: np.ndarray) -> None:
        if tensor.requires_grad:
            g = grad if keepdims else np.expand_dims(grad, axis=axis)
            tensor._accumulate(g * softmax_vals)

    return Tensor._make(data, (tensor,), backward)


def softmax(tensor: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` with a fused, stable backward pass."""
    x = tensor.data
    shifted = np.exp(x - x.max(axis=axis, keepdims=True))
    data = shifted / shifted.sum(axis=axis, keepdims=True)
    if not is_grad_enabled():
        return Tensor._from_data(data)

    def backward(grad: np.ndarray) -> None:
        if tensor.requires_grad:
            dot = (grad * data).sum(axis=axis, keepdims=True)
            tensor._accumulate(data * (grad - dot))

    return Tensor._make(data, (tensor,), backward)


def log_softmax(tensor: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis``; stable fused forward/backward."""
    x = tensor.data
    m = x.max(axis=axis, keepdims=True)
    shifted = x - m
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    data = shifted - lse
    if not is_grad_enabled():
        return Tensor._from_data(data)
    softmax_vals = np.exp(data)

    def backward(grad: np.ndarray) -> None:
        if tensor.requires_grad:
            total = grad.sum(axis=axis, keepdims=True)
            tensor._accumulate(grad - softmax_vals * total)

    return Tensor._make(data, (tensor,), backward)


def masked_fill(tensor: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Replace entries where ``mask`` is true with ``value`` (no grad there)."""
    mask = np.asarray(mask, dtype=bool)
    data = np.where(mask, np.asarray(value, dtype=tensor.data.dtype), tensor.data)
    if not is_grad_enabled():
        return Tensor._from_data(data)

    def backward(grad: np.ndarray) -> None:
        if tensor.requires_grad:
            tensor._accumulate(_unbroadcast(grad * ~mask, tensor.shape))

    return Tensor._make(data, (tensor,), backward)
