"""Neural network layers used throughout the AW-MoE reproduction.

The paper's building blocks (Fig. 4) are all small MLPs with ReLU activations
plus embedding tables, so the layer zoo here is intentionally compact:
``Linear``, ``Embedding``, ``MLP``, ``Dropout``, ``LayerNorm``, ``Sequential``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.nn import init
from repro.nn.arena import is_fast_math
from repro.nn.module import Module, Parameter
from repro.nn.ops import embedding as embedding_op
from repro.nn.ops import linear as linear_op
from repro.nn.tensor import Tensor

__all__ = ["Linear", "Embedding", "MLP", "Dropout", "LayerNorm", "Sequential", "Identity"]

Activation = Optional[str]

_ACTIVATIONS: dict = {
    "relu": lambda x: x.relu(),
    "sigmoid": lambda x: x.sigmoid(),
    "tanh": lambda x: x.tanh(),
    "leaky_relu": lambda x: x.leaky_relu(),
    None: lambda x: x,
    "linear": lambda x: x,
}


def apply_activation(x: Tensor, name: Activation) -> Tensor:
    """Apply a named activation; ``None``/``"linear"`` is the identity."""
    try:
        return _ACTIVATIONS[name](x)
    except KeyError:
        raise ValueError(f"unknown activation {name!r}; expected one of {sorted(k for k in _ACTIVATIONS if k)}")


class Identity(Module):
    """A no-op module, useful as a placeholder in ablations."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Linear(Module):
    """Affine layer ``y = x W + b`` applied over the last dimension.

    Accepts inputs with any number of leading dimensions, e.g. per-item
    hidden vectors of shape ``(batch, seq_len, in_features)``.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        weight_init: Callable = init.he_normal,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(weight_init((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"Linear expected last dim {self.in_features}, got input shape {x.shape}"
            )
        if is_fast_math():
            return linear_op(x, self.weight, self.bias)
        leading = x.shape[:-1]
        flat = x.reshape(-1, self.in_features) if x.ndim != 2 else x
        out = flat.matmul(self.weight)
        if self.bias is not None:
            out = out + self.bias
        if x.ndim != 2:
            out = out.reshape(*leading, self.out_features)
        return out


class Embedding(Module):
    """Embedding table mapping integer ids to dense vectors.

    Index 0 is conventionally the padding id in this codebase; callers mask
    padded positions explicitly, so no special handling is done here.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator,
        std: float = 0.01,
    ) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), rng, std=std))

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding ids out of range [0, {self.num_embeddings}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        return embedding_op(self.weight, indices)


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        return x * mask


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, num_features: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.gamma = Parameter(init.ones((num_features,)))
        self.beta = Parameter(init.zeros((num_features,)))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._layers: List[Module] = []
        for i, module in enumerate(modules):
            setattr(self, f"layer{i}", module)
            self._layers.append(module)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]


class MLP(Module):
    """Multi-layer perceptron with a shared hidden activation.

    ``hidden_sizes`` lists every layer width after the input, matching the
    paper's notation: the expert network "MLP (512x256x1)" is
    ``MLP(in_dim, [512, 256, 1])``.  The final layer is linear unless
    ``output_activation`` says otherwise; the paper applies ReLU at the output
    of its activation/gate units (Fig. 4), which callers request explicitly.
    """

    def __init__(
        self,
        in_features: int,
        hidden_sizes: Sequence[int],
        rng: np.random.Generator,
        activation: Activation = "relu",
        output_activation: Activation = None,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        if not hidden_sizes:
            raise ValueError("MLP requires at least one layer size")
        self.activation = activation
        self.output_activation = output_activation
        self._linears: List[Linear] = []
        self._dropouts: List[Optional[Dropout]] = []
        previous = in_features
        for i, width in enumerate(hidden_sizes):
            layer = Linear(previous, width, rng)
            setattr(self, f"fc{i}", layer)
            self._linears.append(layer)
            if dropout > 0.0 and i < len(hidden_sizes) - 1:
                drop = Dropout(dropout, rng)
                setattr(self, f"drop{i}", drop)
                self._dropouts.append(drop)
            else:
                self._dropouts.append(None)
            previous = width
        self.out_features = previous

    def forward(self, x: Tensor) -> Tensor:
        last = len(self._linears) - 1
        fused = is_fast_math()
        for i, layer in enumerate(self._linears):
            name = self.output_activation if i == last else self.activation
            if fused and name in (None, "linear", "relu"):
                # One graph node per layer: matmul + bias + activation fused.
                x = linear_op(x, layer.weight, layer.bias, activation=name)
            else:
                x = layer(x)
                x = apply_activation(x, name)
            drop = self._dropouts[i]
            if drop is not None:
                x = drop(x)
        return x
