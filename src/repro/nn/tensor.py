"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the computational substrate for the whole reproduction: the
paper trained AW-MoE with TensorFlow/PyTorch on GPUs, neither of which is
available here, so we implement the same mathematics — tensors, broadcasting
elementwise ops, matrix multiplication, reductions, shape ops, and reverse-mode
backpropagation — directly on NumPy.

Design notes
------------
* A :class:`Tensor` wraps a ``numpy.ndarray`` and records, for each produced
  tensor, its parent tensors and a closure that propagates the output gradient
  to the parents.  ``Tensor.backward`` runs a topological sort and applies the
  closures in reverse order.
* Only floating point data lives in tensors.  Integer data (embedding ids,
  gather indices, masks used for selection) is passed around as plain NumPy
  arrays; this keeps the autograd core small and makes non-differentiability
  explicit.
* Broadcasting follows NumPy semantics; gradients of broadcast operands are
  reduced back to the operand shape by :func:`_unbroadcast`.
* **Inference fast path**: when gradients are globally disabled
  (:func:`no_grad`), every op returns a bare graph-free tensor *before* its
  backward closure is even constructed — eager inference pays for the NumPy
  math only, never for graph bookkeeping.  The compiled serving path
  (:mod:`repro.infer`) goes further and drops the :class:`Tensor` wrapper
  entirely; :meth:`Tensor.detach_numpy` is the documented bridge between the
  two worlds.
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn.arena import active_arena

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

Arrayish = Union["Tensor", np.ndarray, float, int, list, tuple]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient recording.

    Used for evaluation / inference passes so no graph is built::

        with no_grad():
            scores = model(batch)

    Inside the context every op takes the allocation-light fast path: no
    backward closures are constructed and no parent edges are wired.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after NumPy broadcasting.

    Sums over dimensions that were added in front and over dimensions that
    were stretched from size one.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: Arrayish, dtype: np.dtype) -> np.ndarray:
    """Coerce ``value`` to a NumPy array of ``dtype``."""
    if isinstance(value, Tensor):
        raise TypeError("expected raw data, got a Tensor")
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A NumPy-backed tensor participating in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(
        self,
        data: Arrayish,
        requires_grad: bool = False,
        dtype: np.dtype = np.float32,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data: np.ndarray = np.asarray(data, dtype=dtype)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.data.dtype}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def detach_numpy(self) -> np.ndarray:
        """The raw forward values, cut from the graph — **the** fast path.

        Contract (relied upon by :mod:`repro.infer` and the serving stack):

        * returns the underlying ``np.ndarray`` *without copying*;
        * the result carries no autograd state, so callers may hold it across
          training steps without retaining graph memory;
        * callers must treat the array as **read-only** — it is the same
          storage the forward pass produced, so writes would corrupt any
          other consumer of this tensor (and, for :class:`~repro.nn.module.
          Parameter`, the model weights themselves).

        Use this instead of reaching into ``.data`` from code outside
        :mod:`repro.nn`; ``.data`` is an implementation detail of the
        autograd core, ``detach_numpy()`` is the public contract.
        """
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else _raise_item(self)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor._from_data(self.data)

    def copy(self) -> "Tensor":
        """Return a detached deep copy of this tensor."""
        return Tensor(self.data.copy(), dtype=self.data.dtype)

    # ------------------------------------------------------------------
    # graph construction / backprop
    # ------------------------------------------------------------------
    @staticmethod
    def _from_data(data: np.ndarray) -> "Tensor":
        """Bare graph-free tensor around ``data`` (inference fast path)."""
        out = Tensor.__new__(Tensor)
        out.data = data
        out.grad = None
        out.requires_grad = False
        out._backward = None
        out._parents = ()
        return out

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create an op output tensor, wiring the graph only when needed."""
        out = Tensor.__new__(Tensor)
        out.data = data
        out.grad = None
        needs = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out.requires_grad = needs
        if needs:
            out._parents = tuple(parents)
            out._backward = backward
        else:
            out._parents = ()
            out._backward = None
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            arena = active_arena()
            if arena is not None:
                # Fast path: copy into a recycled buffer — one memory pass
                # instead of the reference path's zero-fill + add, and no
                # allocation in steady state.  ``grad`` is always copied,
                # never adopted: closures may pass views (reshape/squeeze)
                # or even the output tensor's own gradient straight through.
                buffer = arena.lease(self.data.shape, self.data.dtype)
                np.copyto(buffer, grad)
                self.grad = buffer
                return
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective w.r.t. this tensor.  Defaults to
            ones (i.e. this tensor is the objective; it is usually a scalar
            loss).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
                )

        order: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        arena = active_arena()
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Free intermediate graph state so repeated training steps do
                # not hold on to whole graphs.
                if node is not self:
                    node._backward = None
                    node._parents = ()
                if arena is not None:
                    # An op output's gradient is dead once its closure has
                    # propagated it; recycle the buffer for the next
                    # accumulation.  This covers the root (loss) too —
                    # parameters are leaves, never reach this branch, and
                    # keep their gradients for the optimizer.
                    arena.release(node.grad)
                    node.grad = None

    # ------------------------------------------------------------------
    # elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Arrayish) -> "Tensor":
        if not _GRAD_ENABLED:
            return Tensor._from_data(self.data + _raw_as(other, self.data.dtype))
        other = _wrap(other, self.data.dtype)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(data, (self, other), backward)

    def __radd__(self, other: Arrayish) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other: Arrayish) -> "Tensor":
        if not _GRAD_ENABLED:
            return Tensor._from_data(self.data - _raw_as(other, self.data.dtype))
        other = _wrap(other, self.data.dtype)
        data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-grad, other.shape))

        return Tensor._make(data, (self, other), backward)

    def __rsub__(self, other: Arrayish) -> "Tensor":
        if not _GRAD_ENABLED:
            return Tensor._from_data(_raw_as(other, self.data.dtype) - self.data)
        return _wrap(other, self.data.dtype).__sub__(self)

    def __mul__(self, other: Arrayish) -> "Tensor":
        if not _GRAD_ENABLED:
            return Tensor._from_data(self.data * _raw_as(other, self.data.dtype))
        other = _wrap(other, self.data.dtype)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(data, (self, other), backward)

    def __rmul__(self, other: Arrayish) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: Arrayish) -> "Tensor":
        if not _GRAD_ENABLED:
            return Tensor._from_data(self.data / _raw_as(other, self.data.dtype))
        other = _wrap(other, self.data.dtype)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data * other.data), other.shape)
                )

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other: Arrayish) -> "Tensor":
        if not _GRAD_ENABLED:
            return Tensor._from_data(_raw_as(other, self.data.dtype) / self.data)
        return _wrap(other, self.data.dtype).__truediv__(self)

    def __neg__(self) -> "Tensor":
        if not _GRAD_ENABLED:
            return Tensor._from_data(-self.data)
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        if not _GRAD_ENABLED:
            return Tensor._from_data(self.data ** exponent)
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # comparisons (non-differentiable, return plain arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other: Arrayish) -> np.ndarray:
        return self.data > _raw(other)

    def __lt__(self, other: Arrayish) -> np.ndarray:
        return self.data < _raw(other)

    def __ge__(self, other: Arrayish) -> np.ndarray:
        return self.data >= _raw(other)

    def __le__(self, other: Arrayish) -> np.ndarray:
        return self.data <= _raw(other)

    # ------------------------------------------------------------------
    # nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)
        if not _GRAD_ENABLED:
            return Tensor._from_data(data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        if not _GRAD_ENABLED:
            return Tensor._from_data(np.log(self.data))
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)
        if not _GRAD_ENABLED:
            return Tensor._from_data(data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / data)

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        if not _GRAD_ENABLED:
            return Tensor._from_data(np.abs(self.data))
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        if not _GRAD_ENABLED:
            return Tensor._from_data(np.maximum(self.data, 0))
        data = np.maximum(self.data, 0)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (self.data > 0))

        return Tensor._make(data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        if not _GRAD_ENABLED:
            return Tensor._from_data(
                np.where(self.data > 0, self.data, negative_slope * self.data)
            )
        data = np.where(self.data > 0, self.data, negative_slope * self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                scale = np.where(self.data > 0, 1.0, negative_slope).astype(self.data.dtype)
                self._accumulate(grad * scale)

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable piecewise formulation.
        x = self.data
        data = np.empty_like(x)
        pos = x >= 0
        data[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        data[~pos] = ex / (1.0 + ex)
        if not _GRAD_ENABLED:
            return Tensor._from_data(data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)
        if not _GRAD_ENABLED:
            return Tensor._from_data(data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data * data))

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to ``[low, high]``; gradient flows inside the range."""
        if not _GRAD_ENABLED:
            return Tensor._from_data(np.clip(self.data, low, high))
        data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                inside = (self.data >= low) & (self.data <= high)
                self._accumulate(grad * inside)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if not _GRAD_ENABLED:
            return Tensor._from_data(self.data.sum(axis=axis, keepdims=keepdims))
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).astype(self.data.dtype))

        return Tensor._make(data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else _axis_size(self.shape, axis)
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        if not _GRAD_ENABLED:
            return Tensor._from_data(data)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            d = data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                d = np.expand_dims(d, axis=axis)
            mask = (self.data == d).astype(self.data.dtype)
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(g * mask / counts)

        return Tensor._make(data, (self,), backward)

    def min(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        if self.ndim < 2 or (other.ndim if isinstance(other, Tensor) else np.ndim(other)) < 2:
            raise ValueError("matmul requires both operands to have ndim >= 2")
        if not _GRAD_ENABLED:
            return Tensor._from_data(self.data @ _raw_as(other, self.data.dtype))
        other = _wrap(other, self.data.dtype)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                g = grad @ other.data.swapaxes(-1, -2)
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                g = self.data.swapaxes(-1, -2) @ grad
                other._accumulate(_unbroadcast(g, other.shape))

        return Tensor._make(data, (self, other), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        if not _GRAD_ENABLED:
            return Tensor._from_data(self.data.reshape(shape))
        original = self.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not _GRAD_ENABLED:
            return Tensor._from_data(self.data.transpose(axes))
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def expand_dims(self, axis: int) -> "Tensor":
        if not _GRAD_ENABLED:
            return Tensor._from_data(np.expand_dims(self.data, axis=axis))
        data = np.expand_dims(self.data, axis=axis)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.squeeze(grad, axis=axis))

        return Tensor._make(data, (self,), backward)

    def squeeze(self, axis: int) -> "Tensor":
        if not _GRAD_ENABLED:
            return Tensor._from_data(np.squeeze(self.data, axis=axis))
        data = np.squeeze(self.data, axis=axis)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.expand_dims(grad, axis=axis))

        return Tensor._make(data, (self,), backward)

    def broadcast_to(self, shape: Tuple[int, ...]) -> "Tensor":
        """Broadcast to ``shape``; the gradient sums over broadcast axes."""
        if not _GRAD_ENABLED:
            return Tensor._from_data(np.ascontiguousarray(np.broadcast_to(self.data, shape)))
        original = self.shape
        data = np.ascontiguousarray(np.broadcast_to(self.data, shape))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, original))

        return Tensor._make(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        if not _GRAD_ENABLED:
            return Tensor._from_data(self.data[index])
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(data, (self,), backward)


def _wrap(value: Arrayish, dtype: np.dtype) -> Tensor:
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=dtype), dtype=dtype)


def _raw(value: Arrayish) -> np.ndarray:
    return value.data if isinstance(value, Tensor) else np.asarray(value)


def _raw_as(value: Arrayish, dtype: np.dtype) -> np.ndarray:
    """Operand data exactly as :func:`_wrap` would expose it, minus the
    Tensor shell — the inference fast path's way to read the other operand."""
    return value.data if isinstance(value, Tensor) else np.asarray(value, dtype=dtype)


def _axis_size(shape: Tuple[int, ...], axis: Union[int, Tuple[int, ...]]) -> int:
    if isinstance(axis, int):
        return shape[axis]
    count = 1
    for a in axis:
        count *= shape[a]
    return count


def _raise_item(tensor: Tensor) -> float:
    raise ValueError(f"item() requires a single-element tensor, got shape {tensor.shape}")
