"""Optimizers and learning-rate schedulers.

The paper trains with AdamW (initial learning rate 1e-4); SGD, momentum SGD
and Adam are provided for completeness and for the ablation benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "StepLR", "CosineLR", "clip_grad_norm"]


class Optimizer:
    """Base optimizer holding a parameter list and the learning rate."""

    def __init__(self, params: Sequence[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self._step_count = 0

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for param in self.params:
            param.grad = None

    def step(self) -> None:
        """Apply one update using the gradients currently stored."""
        self._step_count += 1
        for i, param in enumerate(self.params):
            if param.grad is not None:
                self._update(i, param)

    def _update(self, index: int, param: Parameter) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def _update(self, index: int, param: Parameter) -> None:
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        if self.momentum:
            velocity = self._velocity.get(index)
            if velocity is None:
                velocity = np.zeros_like(param.data)
            velocity = self.momentum * velocity + grad
            self._velocity[index] = velocity
            grad = velocity
        param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam with L2 regularization folded into the gradient (classic Adam)."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def _moments(self, index: int, param: Parameter):
        m = self._m.get(index)
        if m is None:
            m = np.zeros_like(param.data)
            v = np.zeros_like(param.data)
        else:
            v = self._v[index]
        return m, v

    def _update(self, index: int, param: Parameter) -> None:
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        m, v = self._moments(index, param)
        m = self.beta1 * m + (1 - self.beta1) * grad
        v = self.beta2 * v + (1 - self.beta2) * grad * grad
        self._m[index], self._v[index] = m, v
        m_hat = m / (1 - self.beta1 ** self._step_count)
        v_hat = v / (1 - self.beta2 ** self._step_count)
        param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """AdamW: decoupled weight decay (Loshchilov & Hutter, 2019).

    This is the optimizer the paper uses (§IV-D), with lr=1e-4.
    """

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-4,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(params, lr=lr, betas=betas, eps=eps, weight_decay=0.0)
        self.decoupled_weight_decay = weight_decay

    def _update(self, index: int, param: Parameter) -> None:
        if self.decoupled_weight_decay:
            param.data -= self.lr * self.decoupled_weight_decay * param.data
        super()._update(index, param)


class StepLR:
    """Multiply the optimizer learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._count = 0

    def step(self) -> None:
        self._count += 1
        if self._count % self.step_size == 0:
            self.optimizer.lr *= self.gamma


class CosineLR:
    """Cosine-anneal the learning rate from its initial value to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, min_lr: float = 0.0) -> None:
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.total_steps = total_steps
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self._count = 0

    def step(self) -> None:
        self._count = min(self._count + 1, self.total_steps)
        progress = self._count / self.total_steps
        scale = 0.5 * (1 + np.cos(np.pi * progress))
        self.optimizer.lr = self.min_lr + (self.base_lr - self.min_lr) * scale


def clip_grad_norm(params: Sequence[Parameter], max_norm: float) -> float:
    """Clip gradients in place to a global L2 norm; returns the pre-clip norm."""
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float((param.grad.astype(np.float64) ** 2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for param in params:
            if param.grad is not None:
                param.grad *= scale
    return norm
