"""Loss functions: ranking loss (Eq. 1) and contrastive InfoNCE loss (Eq. 10).

``bce_with_logits`` and ``softmax_cross_entropy`` are fused ops with
numerically stable forward passes and hand-written backward passes; the
InfoNCE loss is composed from primitive ops so its gradient flows into the
gate network exactly as in the paper.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.nn.ops import concat, logsumexp
from repro.nn.tensor import Tensor

__all__ = [
    "bce_with_logits",
    "binary_cross_entropy",
    "mse_loss",
    "softmax_cross_entropy",
    "info_nce",
]


def _targets_array(targets: Union[Tensor, np.ndarray], dtype: np.dtype) -> np.ndarray:
    data = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
    return data.astype(dtype)


def bce_with_logits(logits: Tensor, targets: Union[Tensor, np.ndarray]) -> Tensor:
    """Mean binary cross-entropy on raw logits (Eq. 1 with ŷ = σ(z)).

    Uses the stable form ``max(z,0) - z*y + log(1 + exp(-|z|))`` so large
    logits never overflow.
    """
    y = _targets_array(targets, logits.data.dtype)
    z = logits.data
    if y.shape != z.shape:
        raise ValueError(f"targets shape {y.shape} != logits shape {z.shape}")
    per_example = np.maximum(z, 0) - z * y + np.log1p(np.exp(-np.abs(z)))
    data = np.asarray(per_example.mean(), dtype=z.dtype)
    count = z.size

    def backward(grad: np.ndarray) -> None:
        if logits.requires_grad:
            sig = 1.0 / (1.0 + np.exp(-np.clip(z, -60, 60)))
            logits._accumulate(grad * (sig - y) / count)

    return Tensor._make(data, (logits,), backward)


def binary_cross_entropy(
    probs: Tensor, targets: Union[Tensor, np.ndarray], eps: float = 1e-7
) -> Tensor:
    """Mean binary cross-entropy on probabilities already in (0, 1)."""
    y = Tensor(_targets_array(targets, probs.data.dtype))
    p = probs.clip(eps, 1.0 - eps)
    loss = -(y * p.log() + (1.0 - y) * (1.0 - p).log())
    return loss.mean()


def mse_loss(predictions: Tensor, targets: Union[Tensor, np.ndarray]) -> Tensor:
    """Mean squared error."""
    y = Tensor(_targets_array(targets, predictions.data.dtype))
    diff = predictions - y
    return (diff * diff).mean()


def softmax_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (B, C) and integer ``labels`` (B,)."""
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D (batch, classes), got {logits.shape}")
    z = logits.data
    m = z.max(axis=1, keepdims=True)
    shifted = z - m
    lse = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - lse
    batch = z.shape[0]
    data = np.asarray(-log_probs[np.arange(batch), labels].mean(), dtype=z.dtype)

    def backward(grad: np.ndarray) -> None:
        if logits.requires_grad:
            softmax_vals = np.exp(log_probs)
            softmax_vals[np.arange(batch), labels] -= 1.0
            logits._accumulate(grad * softmax_vals / batch)

    return Tensor._make(data, (logits,), backward)


def info_nce(
    anchor: Tensor,
    positive: Tensor,
    negatives: Tensor,
    temperature: float = 1.0,
) -> Tensor:
    """InfoNCE contrastive loss over gate-network outputs (Eq. 10).

    Parameters
    ----------
    anchor:
        Gate outputs ``g(u_i)`` for the original behaviour sequences, shape
        ``(B, K)``.
    positive:
        Gate outputs ``g(u'_i)`` for the randomly masked sequences, shape
        ``(B, K)``.
    negatives:
        Gate outputs ``g(u_j)`` for ``l`` in-batch negative users per anchor,
        shape ``(B, l, K)``.
    temperature:
        Similarity scale; the paper uses a plain dot product (temperature 1).

    Returns
    -------
    Scalar mean loss
        ``-log( exp(s+) / (exp(s+) + Σ_j exp(s-_j)) )`` averaged over the
        batch, with ``s`` the (scaled) dot-product similarity.
    """
    if anchor.shape != positive.shape:
        raise ValueError(f"anchor {anchor.shape} and positive {positive.shape} must match")
    if negatives.ndim != 3 or negatives.shape[0] != anchor.shape[0]:
        raise ValueError(
            f"negatives must be (batch, l, dim); got {negatives.shape} for batch {anchor.shape[0]}"
        )
    scale = 1.0 / temperature
    pos_sim = (anchor * positive).sum(axis=-1, keepdims=True) * scale
    neg_sim = (anchor.expand_dims(1) * negatives).sum(axis=-1) * scale
    logits = concat([pos_sim, neg_sim], axis=1)
    loss = logsumexp(logits, axis=1) - pos_sim.squeeze(1)
    return loss.mean()
