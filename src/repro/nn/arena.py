"""Gradient buffer arena and the fast-math training mode.

The compiled serving path (:mod:`repro.infer`) executes in a shape-keyed
``BufferArena`` with zero steady-state allocations.  This module applies the
same idea to **autograd**: in steady-state training every step re-allocates
the same gradient arrays — one per op output plus one per parameter — only
to free them all again before the next step.  :class:`GradArena` recycles
those buffers across steps, and :func:`fast_math` switches the layer zoo
onto fused kernels (matmul + bias + activation as one op, packed-expert
GEMMs) that cut the op count of the hot training step.

Two coupled switches, one context manager::

    arena = GradArena()              # persistent, owned by the trainer
    with fast_math(arena):
        loss = model(batch)          # fused forward kernels
        loss.backward()              # gradients land in recycled buffers
    optimizer.step()
    arena.release_grads(optimizer.params)   # buffers return to the pool

``fast_math()`` without an arena still enables the fused kernels; gradient
buffers are then allocated normally.  Outside the context every op takes the
original reference path, bit for bit — the eager path is the specification
the fast path is tested against.

Correctness invariants (relied on by :mod:`repro.nn.tensor`):

* every array handed out by :meth:`GradArena.lease` is exclusively owned by
  the tensor whose ``.grad`` it becomes; backward closures never retain
  references to other tensors' gradient buffers;
* intermediate gradients are released back to the pool as soon as their
  backward closure has propagated them (``Tensor.backward`` does this),
  parameter gradients only after the optimizer consumed them.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

__all__ = ["GradArena", "fast_math", "is_fast_math", "active_arena"]


class GradArena:
    """A pool of reusable gradient buffers keyed by ``(shape, dtype)``.

    Buffers are handed out LIFO so the most recently touched (cache-warm)
    memory is reused first.  The arena never zeroes on lease — callers that
    need zeroed memory use :meth:`lease_zeros` — and never shrinks; the
    steady-state footprint is one buffer per live gradient of the largest
    training step seen.
    """

    __slots__ = ("_free", "allocations", "reuses")

    def __init__(self) -> None:
        self._free: Dict[Tuple[Tuple[int, ...], np.dtype], List[np.ndarray]] = {}
        self.allocations = 0
        self.reuses = 0

    def lease(self, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        """Return an uninitialised buffer of ``shape``/``dtype``."""
        key = (tuple(shape), np.dtype(dtype))
        stack = self._free.get(key)
        if stack:
            self.reuses += 1
            return stack.pop()
        self.allocations += 1
        return np.empty(key[0], dtype=key[1])

    def lease_zeros(self, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        """Return a zero-filled buffer (for scatter-add accumulation)."""
        buffer = self.lease(shape, dtype)
        buffer.fill(0.0)
        return buffer

    def release(self, buffer: Optional[np.ndarray]) -> None:
        """Return ``buffer`` to the pool.  ``None`` is ignored."""
        if buffer is None:
            return
        key = (buffer.shape, buffer.dtype)
        self._free.setdefault(key, []).append(buffer)

    def release_grads(self, params: Iterable) -> None:
        """Reclaim the ``.grad`` buffers of ``params`` (post optimizer step).

        Clears each parameter's gradient, so this doubles as ``zero_grad``
        for the following step.
        """
        for param in params:
            if param.grad is not None:
                self.release(param.grad)
                param.grad = None

    def stats(self) -> Dict[str, int]:
        """Allocation counters plus the current pooled-buffer count."""
        pooled = sum(len(stack) for stack in self._free.values())
        return {"allocations": self.allocations, "reuses": self.reuses, "pooled": pooled}


_FAST_MATH = False
_ARENA: Optional[GradArena] = None


@contextlib.contextmanager
def fast_math(arena: Optional[GradArena] = None):
    """Enable fused training kernels (and, with ``arena``, buffer reuse).

    Nesting restores the previous mode and arena on exit, so an eager
    reference computation can be embedded inside a fast-path step (and vice
    versa) for parity checks.
    """
    global _FAST_MATH, _ARENA
    previous = (_FAST_MATH, _ARENA)
    _FAST_MATH = True
    _ARENA = arena
    try:
        yield
    finally:
        _FAST_MATH, _ARENA = previous


def is_fast_math() -> bool:
    """Whether fused training kernels are currently enabled."""
    return _FAST_MATH


def active_arena() -> Optional[GradArena]:
    """The gradient arena of the innermost :func:`fast_math`, if any."""
    return _ARENA
