"""Weight initialization schemes.

All initializers take an explicit ``numpy.random.Generator`` so every model in
the reproduction is deterministic given a seed (see ``repro.utils.rng``).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "zeros",
    "ones",
    "normal",
    "uniform",
    "xavier_uniform",
    "xavier_normal",
    "he_uniform",
    "he_normal",
]


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialization (biases)."""
    return np.zeros(shape, dtype=np.float32)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    """All-one initialization (scale parameters)."""
    return np.ones(shape, dtype=np.float32)


def normal(shape: Tuple[int, ...], rng: np.random.Generator, std: float = 0.01) -> np.ndarray:
    """Gaussian initialization with the given standard deviation."""
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def uniform(shape: Tuple[int, ...], rng: np.random.Generator, bound: float = 0.05) -> np.ndarray:
    """Uniform initialization on ``[-bound, bound]``."""
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) < 2:
        raise ValueError(f"fan-in/fan-out requires >= 2 dimensions, got {shape}")
    fan_in = int(np.prod(shape[:-1]))
    fan_out = shape[-1]
    return fan_in, fan_out


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialization for tanh/sigmoid layers."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    fan_in, fan_out = _fan_in_out(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def he_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialization for ReLU layers."""
    fan_in, _ = _fan_in_out(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def he_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal initialization for ReLU layers."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)
