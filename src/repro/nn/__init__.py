"""``repro.nn`` — a NumPy autograd + neural-network substrate.

The paper trained AW-MoE on GPUs with a deep-learning framework; this package
re-implements the needed subset from scratch: reverse-mode autodiff tensors,
layers (Linear / Embedding / MLP / Dropout / LayerNorm), optimizers
(SGD / Adam / AdamW), and the two losses the paper combines — binary
cross-entropy ranking loss (Eq. 1) and InfoNCE contrastive loss (Eq. 10).

Training has two execution modes: the eager reference path (every op its
own graph node — the bitwise-reproducible specification) and the fused fast
path under :func:`fast_math` — the :func:`linear` kernel collapses
matmul+bias+activation into one node, and a :class:`GradArena` recycles
gradient buffers across steps (see :mod:`repro.nn.arena`).
"""

from repro.nn.arena import GradArena, active_arena, fast_math, is_fast_math
from repro.nn.tensor import Tensor, no_grad, is_grad_enabled
from repro.nn.module import Module, Parameter
from repro.nn.layers import (
    Dropout,
    Embedding,
    Identity,
    LayerNorm,
    Linear,
    MLP,
    Sequential,
)
from repro.nn.ops import (
    concat,
    embedding,
    linear,
    log_softmax,
    logsumexp,
    masked_fill,
    maximum,
    minimum,
    softmax,
    stack,
    take,
    where,
)
from repro.nn.losses import (
    bce_with_logits,
    binary_cross_entropy,
    info_nce,
    mse_loss,
    softmax_cross_entropy,
)
from repro.nn.optim import SGD, Adam, AdamW, CosineLR, Optimizer, StepLR, clip_grad_norm
from repro.nn.serialization import (
    load_module,
    load_optimizer_state,
    load_state,
    load_training_state,
    optimizer_state,
    save_module,
    save_state,
    save_training_state,
)

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "GradArena",
    "fast_math",
    "is_fast_math",
    "active_arena",
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "MLP",
    "Dropout",
    "LayerNorm",
    "Sequential",
    "Identity",
    "concat",
    "stack",
    "where",
    "maximum",
    "minimum",
    "embedding",
    "take",
    "linear",
    "softmax",
    "log_softmax",
    "logsumexp",
    "masked_fill",
    "bce_with_logits",
    "binary_cross_entropy",
    "mse_loss",
    "softmax_cross_entropy",
    "info_nce",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "StepLR",
    "CosineLR",
    "clip_grad_norm",
    "save_state",
    "load_state",
    "save_module",
    "load_module",
    "optimizer_state",
    "load_optimizer_state",
    "save_training_state",
    "load_training_state",
]
