"""Common interface for all compared ranking models.

Every model consumes the batch contract of ``repro.data.schema`` and produces
a logit per impression; ``sigmoid(logit)`` is the predicted CTR/CVR ``ŷ``
fed into the log-loss of Eq. 1.  Models that expose a gate vector (AW-MoE)
additionally support the contrastive objective.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.data.schema import Batch
from repro.nn import Module, Tensor, no_grad

__all__ = ["RankingModel"]


class RankingModel(Module):
    """Base class: ``forward(batch) -> logits`` plus prediction helpers."""

    #: Whether the model exposes ``gate_vector`` for the contrastive loss.
    supports_contrastive: bool = False

    def forward(self, batch: Batch) -> Tensor:
        raise NotImplementedError

    def predict_logits(self, batch: Batch, **forward_kwargs) -> np.ndarray:
        """Raw logits without building an autograd graph.

        ``forward_kwargs`` are passed through to :meth:`forward`; models with
        extra inference knobs (e.g. AW-MoE's ``gate_override`` used by the
        serving session cache) accept them there.
        """
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                return self.forward(batch, **forward_kwargs).numpy()
        finally:
            if was_training:
                self.train()

    def predict_proba(self, batch: Batch, **forward_kwargs) -> np.ndarray:
        """Predicted interaction probabilities ``ŷ = σ(logit)``."""
        logits = self.predict_logits(batch, **forward_kwargs)
        return 1.0 / (1.0 + np.exp(-np.clip(logits, -60, 60)))

    # ------------------------------------------------------------------
    # contrastive hooks (overridden by AW-MoE)
    # ------------------------------------------------------------------
    def gate_vector(self, batch: Batch, mask_override: Optional[np.ndarray] = None) -> Tensor:
        """Gate-network output ``g`` (models without a gate raise)."""
        raise NotImplementedError(f"{type(self).__name__} has no gate network")

    def forward_with_gate(self, batch: Batch) -> Tuple[Tensor, Optional[Tensor]]:
        """Return ``(logits, gate)``; gate is ``None`` for gateless models.

        The default implementation discards the gate; AW-MoE overrides this
        to reuse a single gate forward pass for both ranking and the
        contrastive loss.
        """
        return self.forward(batch), None
