"""The contrastive learning strategy (paper §III-D, Fig. 5).

For each training batch:

* the anchor ``g(u_i)`` is the gate output of the original behaviour
  sequence (reused from the ranking forward pass — no extra cost);
* the positive ``g(u'_i)`` is the gate output of the *randomly masked*
  sequence, simulating a long-tail user;
* ``l`` negatives ``g(u_j)`` are other users sampled in-batch.

The InfoNCE loss (Eq. 10) pulls anchor and positive together, pushing the
in-batch negatives apart; the total objective is
``L = L_rank + λ · L_cl`` (Eq. 11).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ranking_model import RankingModel
from repro.data.masking import augment_mask, sample_in_batch_negatives
from repro.data.schema import Batch
from repro.nn import Tensor, info_nce, take

__all__ = ["ContrastiveStrategy"]


@dataclass
class ContrastiveStrategy:
    """Configuration + computation of the auxiliary contrastive loss.

    Parameters mirror §III-D / §IV-H: ``mask_prob`` is p, ``num_negatives``
    is l, ``weight`` is λ, and ``augmentation`` selects the positive-view
    transform ("mask" is the paper's choice).
    """

    mask_prob: float = 0.1
    num_negatives: int = 3
    weight: float = 0.05
    augmentation: str = "mask"

    def loss(
        self,
        model: RankingModel,
        batch: Batch,
        anchor_gate: Tensor,
        rng: np.random.Generator,
    ) -> Tensor:
        """Weighted InfoNCE term ``λ · L_cl`` for one batch.

        ``anchor_gate`` must be the gate output already computed during the
        ranking forward pass, so the gradient flows through a shared graph —
        exactly the paper's "auxiliary loss imposed to the output of the
        gate network".
        """
        if not model.supports_contrastive:
            raise TypeError(f"{type(model).__name__} does not expose a gate network")
        positive_mask = self.positive_view(batch, rng)
        positive_gate = model.gate_vector(batch, mask_override=positive_mask)
        return self.loss_from_gates(anchor_gate, positive_gate, rng)

    def positive_view(self, batch: Batch, rng: np.random.Generator) -> np.ndarray:
        """Draw the positive-view behaviour mask (the paper's masked u')."""
        return augment_mask(batch, rng, self.augmentation, self.mask_prob)

    def loss_from_gates(
        self,
        anchor_gate: Tensor,
        positive_gate: Tensor,
        rng: np.random.Generator,
    ) -> Tensor:
        """Weighted InfoNCE from already-computed anchor/positive gates.

        The fast training path obtains both gates from one shared-trunk
        forward (:meth:`repro.core.aw_moe.AWMoE.forward_with_gate_views`)
        and lands here; :meth:`loss` is the eager reference that recomputes
        the positive gate with a second full pass.  Both consume ``rng``
        identically (mask draw, then negative draw), so the two paths see
        the same augmentations and negatives for the same stream.
        """
        batch_size = anchor_gate.shape[0]
        if batch_size < 2:
            raise ValueError("contrastive loss needs at least 2 examples in the batch")
        negative_rows = sample_in_batch_negatives(batch_size, self.num_negatives, rng)
        negatives = take(anchor_gate, negative_rows, axis=0)  # (B, l, K)
        return info_nce(anchor_gate, positive_gate, negatives) * self.weight
