"""The gate unit Θ (paper Fig. 4c).

Structurally the same as the activation unit, except the output is a
K-dimensional vector: for each behaviour item it produces one activation
score per expert (Eq. 7), capturing that item's fine-grained evidence about
which experts suit the current user.  As with the activation unit, the ReLU
in Fig. 4c is the hidden activation; outputs are linear by default.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn import MLP, Module, Tensor, concat

__all__ = ["GateUnit"]


class GateUnit(Module):
    """Per-item expert-activation scorer: ``a_j = Θ(h_bj, h_q) ∈ R^K``."""

    def __init__(
        self,
        hidden_dim: int,
        num_experts: int,
        unit_hidden: Tuple[int, ...],
        rng: np.random.Generator,
        output_activation: str = "linear",
    ) -> None:
        super().__init__()
        self.hidden_dim = hidden_dim
        self.num_experts = num_experts
        self.mlp = MLP(
            3 * hidden_dim,
            list(unit_hidden) + [num_experts],
            rng,
            activation="relu",
            output_activation=output_activation,
        )
        if output_activation == "relu":
            last = getattr(self.mlp, f"fc{len(unit_hidden)}")
            if last.bias is not None:
                last.bias.data[:] = 0.1

    def raw_scores(self, h_seq: Tensor, h_key: Tensor) -> Tensor:
        """Mask-independent per-item expert scores ``(B, M, K)``.

        As in :meth:`ActivationUnit.raw_scores`, the mask only gates the
        output, so multi-view (contrastive) evaluations share this result.
        """
        batch, seq_len, hidden = h_seq.shape
        if h_key.shape != (batch, hidden):
            raise ValueError(f"key shape {h_key.shape} incompatible with sequence {h_seq.shape}")
        key = h_key.expand_dims(1).broadcast_to((batch, seq_len, hidden))
        pairwise = concat([h_seq, h_seq * key, key], axis=-1)
        return self.mlp(pairwise)

    def forward(self, h_seq: Tensor, h_key: Tensor, mask: np.ndarray) -> Tensor:
        """Per-item, per-expert activation scores.

        Parameters
        ----------
        h_seq:
            Gate-network behaviour hiddens ``(B, M, H)``.
        h_key:
            Gate-network key hidden (query, or target item in reco mode),
            shape ``(B, H)``.
        mask:
            Float validity mask ``(B, M)``.

        Returns
        -------
        Activation scores ``(B, M, K)``, zero at padded positions.
        """
        mask3 = np.asarray(mask, dtype=np.float32)[:, :, None]
        return self.raw_scores(h_seq, h_key) * mask3
