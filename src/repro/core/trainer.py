"""End-to-end training loop for every compared ranking model.

Implements the paper's objective ``L = L_rank + λ·L_cl`` (Eq. 11) with AdamW,
mini-batch shuffling, optional gradient clipping, and deterministic seeding.
The same trainer handles gateless baselines (λ term skipped) and AW-MoE with
or without contrastive learning, so Tables II–V differ only in the model and
the ``contrastive`` flag — as in the paper.
"""

from __future__ import annotations

import contextlib
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import TrainConfig
from repro.core.contrastive import ContrastiveStrategy
from repro.core.ranking_model import RankingModel
from repro.data.dataset import RankingDataset, iterate_batches
from repro.data.schema import Batch
from repro.nn import AdamW, GradArena, bce_with_logits, clip_grad_norm, fast_math
from repro.utils.logging import RunLog
from repro.utils.rng import SeedBank

__all__ = ["train_model", "train_step", "build_optimizers", "build_strategy"]


def train_model(
    model: RankingModel,
    train_set: RankingDataset,
    config: TrainConfig,
    seed: int = 0,
    log: Optional[RunLog] = None,
) -> RunLog:
    """Train ``model`` in place; returns the per-step metric log.

    Contrastive learning is applied only when ``config.contrastive`` is set
    *and* the model exposes a gate network (AW-MoE); requesting it on a
    gateless baseline raises, making accidental mis-benchmarks loud.
    """
    if config.contrastive and not model.supports_contrastive:
        raise TypeError(
            f"contrastive training requested but {type(model).__name__} has no gate network"
        )
    bank = SeedBank(seed)
    shuffle_rng = bank.child("shuffle")
    cl_rng = bank.child("contrastive")
    optimizers = build_optimizers(model, config)
    strategy = build_strategy(config)
    arena = GradArena() if config.fast_path else None
    if log is None:
        log = RunLog(name=type(model).__name__, echo_every=config.log_every)

    model.train()
    step = 0
    for epoch in range(config.epochs):
        for batch in iterate_batches(
            train_set, config.batch_size, rng=shuffle_rng, drop_last=True
        ):
            step += 1
            metrics = train_step(model, batch, config, optimizers, strategy, cl_rng, arena)
            log.log(step, epoch=epoch, **metrics)
    model.eval()
    return log


def train_step(
    model: RankingModel,
    batch: Batch,
    config: TrainConfig,
    optimizers: List[AdamW],
    strategy: ContrastiveStrategy,
    cl_rng: Optional[np.random.Generator] = None,
    arena: Optional[GradArena] = None,
) -> Dict[str, float]:
    """One gradient update on one mini-batch; returns its loss metrics.

    This is the unit both :func:`train_model` and the streaming incremental
    trainer (:mod:`repro.online.incremental`) are built from — sharing it
    guarantees the online refresh path optimizes exactly the offline
    objective.

    With ``config.fast_path`` the step runs under :func:`repro.nn.fast_math`
    — packed-expert GEMMs, fused linear kernels, and (for AW-MoE with a
    mask-type augmentation) the shared-trunk contrastive pair — while
    ``arena``, when supplied by a surrounding training loop, recycles
    gradient buffers across steps.  Both paths draw from ``cl_rng`` in the
    same order, so fast and eager runs see identical augmentations and
    in-batch negatives.
    """
    mode = fast_math(arena) if config.fast_path else contextlib.nullcontext()
    with mode:
        if config.contrastive:
            if config.fast_path and _can_share_gate_trunk(model, strategy):
                positive_mask = strategy.positive_view(batch, cl_rng)
                logits, gates = model.forward_with_gate_views(batch, [positive_mask])
                rank_loss = bce_with_logits(logits, batch["label"])
                cl_loss = strategy.loss_from_gates(gates[0], gates[1], cl_rng)
            else:
                logits, gate = model.forward_with_gate(batch)
                rank_loss = bce_with_logits(logits, batch["label"])
                cl_loss = strategy.loss(model, batch, gate, cl_rng)
            loss = rank_loss + cl_loss
            extra = {"cl_loss": cl_loss.item()}
        else:
            logits = model.forward(batch)
            rank_loss = bce_with_logits(logits, batch["label"])
            loss = rank_loss
            extra = {}
        for optimizer in optimizers:
            optimizer.zero_grad()
        loss.backward()
        if config.grad_clip:
            # clip_grad_norm returns the pre-clip global norm — the training
            # health signal the refresh-cycle telemetry streams (a norm spike
            # on a fresh click window is the earliest divergence symptom).
            extra["grad_norm"] = float(clip_grad_norm(model.parameters(), config.grad_clip))
        for optimizer in optimizers:
            optimizer.step()
    if arena is not None:
        for optimizer in optimizers:
            arena.release_grads(optimizer.params)
    return {"loss": loss.item(), "rank_loss": rank_loss.item(), **extra}


def _can_share_gate_trunk(model: RankingModel, strategy: ContrastiveStrategy) -> bool:
    """Whether the contrastive pair can reuse one gate-trunk forward.

    Mask-type augmentations ("mask", "crop") leave the behaviour ids
    untouched, so anchor and positive share every mask-independent
    activation; "reorder" rewrites the id arrays and must run two full
    passes.
    """
    return strategy.augmentation != "reorder" and hasattr(model, "forward_with_gate_views")


def build_strategy(config: TrainConfig) -> ContrastiveStrategy:
    """The contrastive-loss computation configured by ``config`` (§III-D)."""
    return ContrastiveStrategy(
        mask_prob=config.mask_prob,
        num_negatives=config.num_negatives,
        weight=config.cl_weight,
        augmentation=config.augmentation,
    )


def build_optimizers(model: RankingModel, config: TrainConfig) -> list:
    """AdamW over all parameters; the gate network may get its own rate.

    A higher gate learning rate (``gate_lr_multiplier``) accelerates the
    expert-specialization / gate-routing co-adaptation that billion-scale
    training achieves through sheer data volume.
    """
    multiplier = config.gate_lr_multiplier
    gate = getattr(model, "gate", None)
    if multiplier == 1.0 or gate is None:
        return [
            AdamW(model.parameters(), lr=config.learning_rate, weight_decay=config.weight_decay)
        ]
    # The embedding tables are shared between the gate and the input network
    # (§III-C2); they stay in the base group so they get the base rate.
    shared = getattr(model, "embedder", None)
    shared_ids = {id(p) for p in shared.parameters()} if shared is not None else set()
    gate_params = [p for p in gate.parameters() if id(p) not in shared_ids]
    gate_ids = {id(p) for p in gate_params}
    rest = [p for p in model.parameters() if id(p) not in gate_ids]
    return [
        AdamW(rest, lr=config.learning_rate, weight_decay=config.weight_decay),
        AdamW(
            gate_params,
            lr=config.learning_rate * multiplier,
            weight_decay=config.weight_decay,
        ),
    ]
