"""The attention-weighted gate network (paper §III-C2, Fig. 3c, Eq. 6–8).

The gate network is AW-MoE's contribution: it reads the *user behaviour
sequence* (plus the query — or the target item in recommendation mode) and
emits the per-user expert activation vector ``g ∈ R^K``:

    h_G      = MLP_G(e)                                  (Eq. 6)
    a_j      = Θ(h_bj, h_q)          — gate unit         (Eq. 7)
    w_j      = Φ_G(h_bj, h_q)        — activation unit
    g_k      = Σ_j w_j · a_jk                            (Eq. 8)

A learned bias ``g0`` is added to the sum so empty behaviour sequences (new
users) still yield a meaningful expert prior; this is an implementation
necessity documented in DESIGN.md.

Table VI's ablations are expressed with two switches:

==================  ===========================  =============================
variant             ``use_gate_unit``            ``use_activation_unit``
==================  ===========================  =============================
Base (sum pooling)  False                        False
Base+GU             True                         False
Base+AU             False                        True
AW-MoE (full)       True                         True
==================  ===========================  =============================

Without the gate unit, the per-item expert scores are replaced by a vanilla
FFN applied to the pooled behaviour vector; without the activation unit,
pooling weights are uniform (plain sums over valid positions).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.activation_unit import ActivationUnit
from repro.core.config import ModelConfig
from repro.core.gate_unit import GateUnit
from repro.core.input_network import FeatureEmbedder
from repro.data.schema import Batch, DatasetMeta
from repro.nn import MLP, Module, Parameter, Tensor, concat, softmax

__all__ = ["GateNetwork"]


class GateNetwork(Module):
    """Produce the expert activation vector ``g`` for each impression."""

    def __init__(
        self,
        config: ModelConfig,
        meta: DatasetMeta,
        embedder: FeatureEmbedder,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.config = config
        self.embedder = embedder
        hidden = config.input_hidden
        self.hidden_dim = hidden[-1]
        k = config.num_experts

        # MLP^G: same shapes as MLP^I but independent parameters (§III-C2).
        self.behavior_mlp = MLP(embedder.item_repr_dim, hidden, rng, activation="relu")
        if config.task == "search":
            key_dim = embedder.query_repr_dim
        else:
            # Recommendation mode: no query; the target item is the key
            # (§IV-A2, "the query was replaced by the target item").
            key_dim = embedder.item_repr_dim
        self.key_mlp = MLP(key_dim, hidden, rng, activation="relu")

        self.gate_unit = (
            GateUnit(self.hidden_dim, k, config.unit_hidden, rng)
            if config.gate_use_gate_unit
            else None
        )
        self.activation_unit = (
            ActivationUnit(self.hidden_dim, config.unit_hidden, rng)
            if config.gate_use_activation_unit
            else None
        )
        # Fallback FFN used by the ablation variants without the gate unit:
        # pooled behaviour ‖ key -> K scores.
        if self.gate_unit is None:
            self.pooled_mlp = MLP(
                2 * self.hidden_dim,
                list(config.unit_hidden) + [k],
                rng,
                activation="relu",
            )
        else:
            self.pooled_mlp = None
        # Initialized at 1/K so training starts from a uniform mixture:
        # experts receive gradient immediately instead of waiting for the
        # gate to move away from zero.
        self.bias = (
            Parameter(np.full((k,), 1.0 / k, dtype=np.float32)) if config.gate_bias else None
        )

    def _key_hidden(self, batch: Batch) -> Tensor:
        if self.config.task == "search":
            return self.key_mlp(self.embedder.query_repr(batch))
        return self.key_mlp(self.embedder.target(batch))

    def forward(self, batch: Batch, mask_override: Optional[np.ndarray] = None) -> Tensor:
        """Expert activation vectors ``g`` with shape ``(B, K)``.

        ``mask_override`` substitutes the behaviour validity mask — the
        contrastive learning strategy (§III-D) passes the randomly masked
        mask here to obtain the positive view ``g(u')`` without rebuilding
        the batch.
        """
        mask = batch["behavior_mask"] if mask_override is None else mask_override
        mask = np.asarray(mask, dtype=np.float32)
        h_behavior = self.behavior_mlp(self.embedder.behavior(batch))  # (B, M, H)
        h_key = self._key_hidden(batch)  # (B, H)

        # Eq. 8 is a plain sum over sequence positions; we divide by the
        # valid length so the gate scale is independent of history length
        # (a billion-scale model absorbs the scale, a CPU-scale one cannot —
        # see DESIGN.md fidelity notes).  Empty sequences keep gate = bias.
        counts = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)
        if self.gate_unit is not None:
            item_scores = self.gate_unit(h_behavior, h_key, mask)  # (B, M, K)
            if self.activation_unit is not None:
                weights = self.activation_unit(h_behavior, h_key, mask)  # (B, M)
                gate = (item_scores * weights.expand_dims(2)).sum(axis=1) * (1.0 / counts)
            else:
                gate = item_scores.sum(axis=1) * (1.0 / counts)
        else:
            if self.activation_unit is not None:
                weights = self.activation_unit(h_behavior, h_key, mask)
                pooled = (h_behavior * weights.expand_dims(2)).sum(axis=1) * (1.0 / counts)
            else:
                pooled = (h_behavior * mask[:, :, None]).sum(axis=1) * (1.0 / counts)
            gate = self.pooled_mlp(concat([pooled, h_key], axis=-1))

        if self.bias is not None:
            gate = gate + self.bias
        if self.config.normalize_gate:
            gate = softmax(gate, axis=-1)
        return gate

    def forward_views(
        self, batch: Batch, masks: Sequence[Optional[np.ndarray]]
    ) -> List[Tensor]:
        """Gate vectors for several mask views of ONE behaviour sequence.

        The contrastive objective (§III-D) needs the gate under the original
        mask (anchor) and under a randomly masked view (positive).  Running
        :meth:`forward` twice recomputes the whole trunk — embeddings,
        ``MLP^G``, the key MLP, and both unit MLPs — even though none of it
        depends on the mask: the mask only gates the final pooling (Eq. 8).
        This method evaluates the trunk once and derives every view with one
        batched masked-pooling op over the stacked ``(V, B, M)`` masks, so
        the duplicated trunk forward *and* its duplicated backward disappear
        from the training hot path.

        ``None`` entries resolve to the batch's own ``behavior_mask``.
        Views only share the trunk when the id arrays are identical — the
        "reorder" augmentation rewrites ids and must keep using two full
        forward passes.
        """
        resolved = [
            np.asarray(
                batch["behavior_mask"] if mask is None else mask, dtype=np.float32
            )
            for mask in masks
        ]
        h_behavior = self.behavior_mlp(self.embedder.behavior(batch))  # (B, M, H)
        h_key = self._key_hidden(batch)  # (B, H)
        stacked = np.stack(resolved)  # (V, B, M)
        counts = np.maximum(stacked.sum(axis=2, keepdims=True), 1.0)  # (V, B, 1)

        if self.gate_unit is not None:
            raw_scores = self.gate_unit.raw_scores(h_behavior, h_key)  # (B, M, K)
            if self.activation_unit is not None:
                raw_weights = self.activation_unit.raw_scores(h_behavior, h_key)  # (B, M)
                # Per view v: ((raw_s·m_v) ⊙ (raw_w·m_v)) summed over M —
                # the same elementwise products as the eager per-view pass,
                # evaluated as one broadcast op over the stacked masks.
                masked_scores = raw_scores.expand_dims(0) * Tensor(stacked[:, :, :, None])
                masked_weights = (raw_weights.expand_dims(0) * Tensor(stacked)).expand_dims(3)
                gates = (masked_scores * masked_weights).sum(axis=2) * (1.0 / counts)
            else:
                masked_scores = raw_scores.expand_dims(0) * Tensor(stacked[:, :, :, None])
                gates = masked_scores.sum(axis=2) * (1.0 / counts)
            views = [gates[v] for v in range(len(resolved))]
        else:
            # Ablation variants pool the behaviour hiddens per view and run
            # the fallback FFN on each; the trunk (h_behavior, h_key, raw
            # attention scores) is still shared across views.
            raw_weights = (
                self.activation_unit.raw_scores(h_behavior, h_key)
                if self.activation_unit is not None
                else None
            )
            views = []
            for v, mask in enumerate(resolved):
                count = counts[v]
                if raw_weights is not None:
                    weights = raw_weights * mask
                    pooled = (h_behavior * weights.expand_dims(2)).sum(axis=1) * (1.0 / count)
                else:
                    pooled = (h_behavior * mask[:, :, None]).sum(axis=1) * (1.0 / count)
                views.append(self.pooled_mlp(concat([pooled, h_key], axis=-1)))

        if self.bias is not None:
            views = [gate + self.bias for gate in views]
        if self.config.normalize_gate:
            views = [softmax(gate, axis=-1) for gate in views]
        return views
