"""Expert networks Ψ_k (paper Fig. 4b, Eq. 5).

Every expert is an FFN mapping the impression representation to a scalar
ranking score.  All experts share the same architecture and differ only
through random initialization, exactly as the paper states.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.nn import MLP, Module, Tensor, concat

__all__ = ["Expert", "ExpertPool"]


class Expert(Module):
    """One expert FFN: ``s = Ψ(v_imp) ∈ R`` (hidden ReLU, linear output)."""

    def __init__(
        self,
        input_dim: int,
        hidden: Tuple[int, ...],
        rng: np.random.Generator,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        self.mlp = MLP(input_dim, list(hidden) + [1], rng, activation="relu", dropout=dropout)

    def forward(self, v_imp: Tensor) -> Tensor:
        """Score a batch of impression vectors: ``(B, D) -> (B,)``."""
        return self.mlp(v_imp).squeeze(1)


class ExpertPool(Module):
    """K independent experts evaluated side by side.

    ``forward`` returns the stacked score matrix ``(B, K)`` used by both the
    AW-MoE weighted sum (Eq. 9) and Category-MoE's softmax mixture.
    """

    def __init__(
        self,
        input_dim: int,
        hidden: Tuple[int, ...],
        num_experts: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        if num_experts < 1:
            raise ValueError(f"need at least one expert, got {num_experts}")
        self.num_experts = num_experts
        self._experts: List[Expert] = []
        for k in range(num_experts):
            expert = Expert(input_dim, hidden, rng, dropout=dropout)
            setattr(self, f"expert{k}", expert)
            self._experts.append(expert)

    def forward(self, v_imp: Tensor) -> Tensor:
        """Expert scores ``s`` with shape ``(B, K)``."""
        scores = [expert(v_imp).expand_dims(1) for expert in self._experts]
        return concat(scores, axis=1)

    def __len__(self) -> int:
        return self.num_experts
