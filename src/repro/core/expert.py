"""Expert networks Ψ_k (paper Fig. 4b, Eq. 5).

Every expert is an FFN mapping the impression representation to a scalar
ranking score.  All experts share the same architecture and differ only
through random initialization, exactly as the paper states.

Because the K experts are architecturally identical, the pool has two
equivalent execution strategies:

* the **eager reference path** runs each expert's MLP in sequence and
  concatenates the K scalar columns — K separate ``Linear`` graphs per
  layer;
* the **packed path** (active under :func:`repro.nn.fast_math`, mirroring
  the fused serving kernel :class:`repro.infer.kernels.PackedExperts`)
  stacks the per-expert weights into ``(K, in, out)`` tensors each step and
  runs every layer as ONE batched GEMM in both forward and backward.  The
  per-expert :class:`~repro.nn.module.Parameter` objects stay the single
  source of truth — checkpoints, the optimizer, and the serving compiler
  see an identical model either way; gradients flow back through the stack
  op into the individual weights.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.nn import MLP, Module, Tensor, concat, is_fast_math, stack
from repro.nn.ops import linear as linear_op

__all__ = ["Expert", "ExpertPool"]


class Expert(Module):
    """One expert FFN: ``s = Ψ(v_imp) ∈ R`` (hidden ReLU, linear output)."""

    def __init__(
        self,
        input_dim: int,
        hidden: Tuple[int, ...],
        rng: np.random.Generator,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        self.mlp = MLP(input_dim, list(hidden) + [1], rng, activation="relu", dropout=dropout)

    def forward(self, v_imp: Tensor) -> Tensor:
        """Score a batch of impression vectors: ``(B, D) -> (B,)``."""
        return self.mlp(v_imp).squeeze(1)


class ExpertPool(Module):
    """K independent experts evaluated side by side.

    ``forward`` returns the stacked score matrix ``(B, K)`` used by both the
    AW-MoE weighted sum (Eq. 9) and Category-MoE's softmax mixture.
    """

    def __init__(
        self,
        input_dim: int,
        hidden: Tuple[int, ...],
        num_experts: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        if num_experts < 1:
            raise ValueError(f"need at least one expert, got {num_experts}")
        self.num_experts = num_experts
        self.dropout = dropout
        self._experts: List[Expert] = []
        for k in range(num_experts):
            expert = Expert(input_dim, hidden, rng, dropout=dropout)
            setattr(self, f"expert{k}", expert)
            self._experts.append(expert)

    def forward(self, v_imp: Tensor) -> Tensor:
        """Expert scores ``s`` with shape ``(B, K)``."""
        if is_fast_math() and not (self.training and self.dropout > 0.0):
            return self.forward_packed(v_imp)
        return self.forward_eager(v_imp)

    def forward_eager(self, v_imp: Tensor) -> Tensor:
        """Reference path: K sequential expert MLPs, concatenated."""
        scores = [expert(v_imp).expand_dims(1) for expert in self._experts]
        return concat(scores, axis=1)

    def forward_packed(self, v_imp: Tensor) -> Tensor:
        """Fast path: all K experts as one batched GEMM per layer.

        Per layer, the K weight matrices are stacked into a ``(K, in, out)``
        tensor and the K biases into ``(K, out)``; the fused
        :func:`repro.nn.linear` op then evaluates (and differentiates) every
        expert in a single batched matmul.  Stacking K weight-sized arrays
        is negligible next to the batch-sized GEMMs it fuses, and its
        backward splits the packed gradient back onto the per-expert
        parameters, so the model remains checkpoint- and optimizer-
        compatible with the eager path.

        Per-expert dropout streams cannot be replayed through a packed
        evaluation, so :meth:`forward` only dispatches here when dropout is
        inactive (eval mode or ``dropout == 0``).
        """
        mlps = [expert.mlp for expert in self._experts]
        depth = len(mlps[0]._linears)
        h: Tensor = v_imp
        for layer in range(depth):
            weights = stack([mlp._linears[layer].weight for mlp in mlps])  # (K, in, out)
            biases = stack([mlp._linears[layer].bias for mlp in mlps])  # (K, out)
            activation = mlps[0].output_activation if layer == depth - 1 else mlps[0].activation
            h = linear_op(h, weights, biases, activation=activation)
        # (K, B, 1) -> (B, K)
        return h.squeeze(2).transpose(1, 0)

    def __len__(self) -> int:
        return self.num_experts
