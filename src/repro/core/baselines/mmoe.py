"""Task-oriented MMoE (Ma et al., KDD 2018; paper Fig. 1b) — reference model.

The paper contrasts its *user-oriented* gate with the prevailing
*task-oriented* use of MoE, where one softmax gate per task mixes shared
experts.  MMoE does not appear in the paper's result tables (it targets
multi-task learning), but it is implemented here so Fig. 1's taxonomy is
fully represented and testable: the gates condition on the impression vector
only, not on the behaviour sequence.

``forward`` returns the primary task's logits so MMoE can run through the
standard single-task trainer; ``forward_tasks`` exposes every head.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.config import ModelConfig
from repro.core.expert import ExpertPool
from repro.core.input_network import FeatureEmbedder, InputNetwork
from repro.core.ranking_model import RankingModel
from repro.data.schema import Batch, DatasetMeta
from repro.nn import MLP, Tensor, softmax

__all__ = ["MMoE"]


class MMoE(RankingModel):
    """Multi-gate mixture of experts with task-specific softmax gates."""

    def __init__(
        self,
        config: ModelConfig,
        meta: DatasetMeta,
        rng: np.random.Generator,
        num_tasks: int = 2,
    ) -> None:
        super().__init__()
        if num_tasks < 1:
            raise ValueError(f"num_tasks must be >= 1, got {num_tasks}")
        self.config = config
        self.num_tasks = num_tasks
        self.embedder = FeatureEmbedder(config, meta, rng)
        self.input_network = InputNetwork(config, meta, self.embedder, rng, pooling="attention")
        self.experts = ExpertPool(
            self.input_network.output_dim,
            config.expert_hidden,
            config.num_experts,
            rng,
            dropout=config.dropout,
        )
        self._gates: List[MLP] = []
        for t in range(num_tasks):
            gate = MLP(
                self.input_network.output_dim,
                list(config.unit_hidden) + [config.num_experts],
                rng,
                activation="relu",
            )
            setattr(self, f"gate{t}", gate)
            self._gates.append(gate)

    def forward_tasks(self, batch: Batch) -> List[Tensor]:
        """Logits for every task head, each shaped ``(B,)``."""
        v_imp = self.input_network(batch)
        scores = self.experts(v_imp)  # (B, K)
        outputs = []
        for gate_mlp in self._gates:
            gate = softmax(gate_mlp(v_imp), axis=-1)
            outputs.append((gate * scores).sum(axis=1))
        return outputs

    def forward(self, batch: Batch) -> Tensor:
        return self.forward_tasks(batch)[0]
