"""DIN baseline (Zhou et al., KDD 2018; paper §IV-C).

Identical to the DNN baseline except the behaviour sequence is pooled with
the target-aware attention of Eq. 3 (the activation unit Φ).  The paper calls
DIN "the state-of-the-art model applied in many industrial companies"; every
MoE model in the comparison uses this same input network.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ModelConfig
from repro.core.expert import Expert
from repro.core.input_network import FeatureEmbedder, InputNetwork
from repro.core.ranking_model import RankingModel
from repro.data.schema import Batch, DatasetMeta
from repro.nn import Tensor

__all__ = ["DIN"]


class DIN(RankingModel):
    """Attention-pooled user vector + single FFN scorer."""

    def __init__(self, config: ModelConfig, meta: DatasetMeta, rng: np.random.Generator) -> None:
        super().__init__()
        self.config = config
        self.embedder = FeatureEmbedder(config, meta, rng)
        self.input_network = InputNetwork(config, meta, self.embedder, rng, pooling="attention")
        self.ffn = Expert(
            self.input_network.output_dim, config.expert_hidden, rng, dropout=config.dropout
        )

    def forward(self, batch: Batch) -> Tensor:
        return self.ffn(self.input_network(batch))
