"""DNN baseline (YouTube-DNN style, paper §IV-C).

The user representation is the *sum pooling* of behaviour-item hidden
vectors; the impression vector feeds a single FFN with the same architecture
as one AW-MoE expert.  This is Fig. 1a with the simplest possible sequence
aggregation.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ModelConfig
from repro.core.expert import Expert
from repro.core.input_network import FeatureEmbedder, InputNetwork
from repro.core.ranking_model import RankingModel
from repro.data.schema import Batch, DatasetMeta
from repro.nn import Tensor

__all__ = ["DNN"]


class DNN(RankingModel):
    """Sum-pooled user vector + single FFN scorer."""

    def __init__(self, config: ModelConfig, meta: DatasetMeta, rng: np.random.Generator) -> None:
        super().__init__()
        self.config = config
        self.embedder = FeatureEmbedder(config, meta, rng)
        self.input_network = InputNetwork(config, meta, self.embedder, rng, pooling="sum")
        self.ffn = Expert(
            self.input_network.output_dim, config.expert_hidden, rng, dropout=config.dropout
        )

    def forward(self, batch: Batch) -> Tensor:
        return self.ffn(self.input_network(batch))
