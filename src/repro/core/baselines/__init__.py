"""Baseline ranking models compared against AW-MoE (paper §IV-C)."""

from repro.core.baselines.category_moe import CategoryMoE
from repro.core.baselines.din import DIN
from repro.core.baselines.dnn import DNN
from repro.core.baselines.mmoe import MMoE

__all__ = ["DNN", "DIN", "CategoryMoE", "MMoE"]
