"""Category-MoE baseline (Xiao et al., ICDE 2021 [34]; paper §IV-C).

The paper's previous production model: a mixture of experts whose gate is a
vanilla FFN fed with the *query category id* (target item category in reco
mode).  Experts and input network are identical to AW-MoE's; only the gate
differs — it is category-oriented rather than user-oriented, which is the
comparison the paper draws in Tables II–V.

Following [34], the gate output is softmax-normalized over experts.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ModelConfig
from repro.core.expert import ExpertPool
from repro.core.input_network import FeatureEmbedder, InputNetwork
from repro.core.ranking_model import RankingModel
from repro.data.schema import Batch, DatasetMeta
from repro.nn import MLP, Tensor, softmax

__all__ = ["CategoryMoE"]


class CategoryMoE(RankingModel):
    """MoE with a query-category softmax gate."""

    def __init__(self, config: ModelConfig, meta: DatasetMeta, rng: np.random.Generator) -> None:
        super().__init__()
        self.config = config
        self.embedder = FeatureEmbedder(config, meta, rng)
        self.input_network = InputNetwork(config, meta, self.embedder, rng, pooling="attention")
        self.experts = ExpertPool(
            self.input_network.output_dim,
            config.expert_hidden,
            config.num_experts,
            rng,
            dropout=config.dropout,
        )
        self.gate_mlp = MLP(
            config.category_embed_dim,
            list(config.unit_hidden) + [config.num_experts],
            rng,
            activation="relu",
        )

    def _gate_key(self, batch: Batch) -> np.ndarray:
        """Category id driving the gate: query category, or the target's."""
        if self.config.task == "search":
            return batch["query_category"]
        return batch["target_category"]

    def forward(self, batch: Batch) -> Tensor:
        v_imp = self.input_network(batch)
        scores = self.experts(v_imp)  # (B, K)
        category_embed = self.embedder.category(self._gate_key(batch))
        gate = softmax(self.gate_mlp(category_embed), axis=-1)  # (B, K)
        return (gate * scores).sum(axis=1)

    def gate_outputs(self, batch: Batch) -> np.ndarray:
        """Softmax gate vectors as arrays (for expert-utilization analysis)."""
        from repro.nn import no_grad

        was_training = self.training
        self.eval()
        try:
            with no_grad():
                category_embed = self.embedder.category(self._gate_key(batch))
                return softmax(self.gate_mlp(category_embed), axis=-1).numpy()
        finally:
            if was_training:
                self.train()
