"""Expert-disagreement (adversarial) regularization (paper §V future work).

The paper points to the adversarial regularization of Category-MoE [34] as a
"promising technique to encourage the disagreement among different experts,
thus improving the diversity of perspectives in the final ensemble".  This
module implements the regularizer: a penalty on the pairwise correlation of
expert scores within a batch, whose *negative* weight rewards disagreement.

Use via :func:`train_adversarial_aw_moe`, which mirrors the standard trainer
but adds ``λ_adv · L_disagree`` to the objective.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.aw_moe import AWMoE
from repro.core.config import TrainConfig
from repro.data.dataset import RankingDataset, iterate_batches
from repro.nn import AdamW, Tensor, bce_with_logits, clip_grad_norm
from repro.utils.logging import RunLog
from repro.utils.rng import SeedBank

__all__ = ["expert_correlation_loss", "train_adversarial_aw_moe"]


def expert_correlation_loss(scores: Tensor) -> Tensor:
    """Mean squared pairwise correlation of expert scores over the batch.

    ``scores`` is the ``(B, K)`` expert-score matrix.  Minimizing this drives
    experts toward decorrelated (disagreeing) predictions; 0 means fully
    decorrelated experts, 1 means all experts produce identical rankings.
    """
    batch, k = scores.shape
    if batch < 2:
        raise ValueError("correlation needs at least 2 examples in the batch")
    centered = scores - scores.mean(axis=0, keepdims=True)
    std = ((centered * centered).mean(axis=0, keepdims=True) + 1e-6).sqrt()
    normalized = centered / std
    corr = normalized.transpose(1, 0).matmul(normalized) * (1.0 / batch)  # (K, K)
    off_diag_mask = 1.0 - np.eye(k, dtype=np.float32)
    off = corr * Tensor(off_diag_mask)
    return (off * off).sum() * (1.0 / (k * (k - 1)))


def train_adversarial_aw_moe(
    model: AWMoE,
    train_set: RankingDataset,
    config: TrainConfig,
    adversarial_weight: float = 0.1,
    seed: int = 0,
    log: Optional[RunLog] = None,
) -> RunLog:
    """Train AW-MoE with the expert-disagreement regularizer added.

    The objective is ``L_rank + λ_adv · L_corr`` (contrastive learning can be
    layered on top through ``config.contrastive`` exactly as in the standard
    trainer, but is kept separate here for a clean ablation).
    """
    if adversarial_weight < 0:
        raise ValueError("adversarial_weight must be non-negative")
    bank = SeedBank(seed)
    shuffle_rng = bank.child("shuffle")
    optimizer = AdamW(
        model.parameters(), lr=config.learning_rate, weight_decay=config.weight_decay
    )
    if log is None:
        log = RunLog(name="adversarial-aw-moe", echo_every=config.log_every)

    model.train()
    step = 0
    for _ in range(config.epochs):
        for batch in iterate_batches(
            train_set, config.batch_size, rng=shuffle_rng, drop_last=True
        ):
            step += 1
            v_imp = model.input_network(batch)
            scores = model.experts(v_imp)
            gate = model.gate(batch)
            logits = (gate * scores).sum(axis=1)
            rank_loss = bce_with_logits(logits, batch["label"])
            corr_loss = expert_correlation_loss(scores)
            loss = rank_loss + corr_loss * adversarial_weight
            optimizer.zero_grad()
            loss.backward()
            if config.grad_clip:
                clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
            log.log(step, loss=loss.item(), rank_loss=rank_loss.item(), corr=corr_loss.item())
    model.eval()
    return log
