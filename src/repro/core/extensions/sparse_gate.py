"""Sparsely-gated top-K AW-MoE (paper §V future work).

The paper plans to "update the vanilla MoE to the sparsely-gated MoE [9] by
increasing the number of experts and introducing a Top-K gate network".  This
extension implements exactly that on top of AW-MoE: the attention-weighted
gate runs as usual, then only the ``top_k`` largest activations are kept (the
rest contribute nothing, so at inference those experts can be skipped).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.aw_moe import AWMoE
from repro.core.config import ModelConfig
from repro.data.schema import Batch, DatasetMeta
from repro.nn import Tensor, masked_fill

__all__ = ["sparse_top_k", "SparseGatedAWMoE"]


def sparse_top_k(gate: Tensor, top_k: int) -> Tensor:
    """Keep the ``top_k`` largest entries per row; zero out the rest.

    The selection itself is non-differentiable (a straight-through style
    hard mask); gradients flow through the surviving entries, as in the
    sparsely-gated MoE of Shazeer et al. [9].
    """
    k_total = gate.shape[-1]
    if not 1 <= top_k <= k_total:
        raise ValueError(f"top_k must be in [1, {k_total}], got {top_k}")
    if top_k == k_total:
        return gate
    # Threshold at the top_k-th value per row (selection reads raw values
    # through the documented fast path; gradients are unaffected).
    raw = gate.detach_numpy()
    sorted_vals = np.sort(raw, axis=-1)
    threshold = sorted_vals[:, -top_k][:, None]
    drop = raw < threshold
    return masked_fill(gate, drop, 0.0)


class SparseGatedAWMoE(AWMoE):
    """AW-MoE whose gate output is sparsified to ``top_k`` active experts."""

    def __init__(
        self,
        config: ModelConfig,
        meta: DatasetMeta,
        rng: np.random.Generator,
        top_k: int = 2,
    ) -> None:
        super().__init__(config, meta, rng)
        if not 1 <= top_k <= config.num_experts:
            raise ValueError(
                f"top_k must be in [1, {config.num_experts}], got {top_k}"
            )
        self.top_k = top_k

    def forward_with_gate(
        self, batch: Batch, gate_override: Optional[np.ndarray] = None
    ) -> Tuple[Tensor, Tensor]:
        v_imp = self.input_network(batch)
        scores = self.experts(v_imp)
        if gate_override is None:
            gate = sparse_top_k(self.gate(batch), self.top_k)
        else:
            # Cached session gates are stored post-sparsification (see
            # serving_gate), so the override is applied as-is.
            gate = self._coerce_gate(gate_override)
        logits = (gate * scores).sum(axis=1)
        return logits, gate

    def forward_with_gate_views(
        self, batch: Batch, extra_masks: Sequence[np.ndarray]
    ) -> Tuple[Tensor, List[Tensor]]:
        """Shared-trunk views with the anchor sparsified.

        Mirrors the eager training semantics exactly: the anchor gate (which
        both weights the experts and anchors the contrastive loss, see
        :meth:`forward_with_gate`) is top-K sparsified, while the augmented
        views stay dense like :meth:`AWMoE.gate_vector` leaves them.  Without
        this override the inherited fast path would train a dense gate and
        serve a sparse one.
        """
        v_imp = self.input_network(batch)
        scores = self.experts(v_imp)
        gates = self.gate.forward_views(batch, [None, *extra_masks])
        gates[0] = sparse_top_k(gates[0], self.top_k)
        logits = (gates[0] * scores).sum(axis=1)
        return logits, gates

    def serving_gate(self, batch: Batch) -> np.ndarray:
        """Cacheable gate = raw gate sparsified, matching the forward pass."""
        raw = self.gate_outputs(batch)
        # Preserve the gate dtype: the default Tensor ctor would silently
        # downcast a float64 gate to float32, diverging from forward_with_gate.
        return sparse_top_k(Tensor(raw, dtype=raw.dtype), self.top_k).numpy()

    def active_expert_fraction(self, batch: Batch) -> float:
        """Measured sparsity: mean fraction of experts with non-zero gate."""
        gate = self.gate_outputs(batch)
        sparse = np.sort(gate, axis=-1)
        threshold = sparse[:, -self.top_k][:, None]
        active = (gate >= threshold).mean()
        return float(active)
