"""Future-work extensions the paper outlines in §V."""

from repro.core.extensions.adversarial import (
    expert_correlation_loss,
    train_adversarial_aw_moe,
)
from repro.core.extensions.sparse_gate import SparseGatedAWMoE, sparse_top_k

__all__ = [
    "expert_correlation_loss",
    "train_adversarial_aw_moe",
    "SparseGatedAWMoE",
    "sparse_top_k",
]
