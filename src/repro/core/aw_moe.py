"""AW-MoE: Attention Weighted Mixture of Experts (paper §III-C, Fig. 3).

The model composes three parts:

1. the **input network** turns the raw impression into ``v_imp`` (Eq. 2–4);
2. **K expert networks** each score ``v_imp`` (Eq. 5);
3. the **attention-weighted gate network** reads the behaviour sequence and
   the query (or target item in reco mode) and emits the per-user expert
   activation vector ``g`` (Eq. 6–8).

The final prediction is the gate-weighted sum of expert scores passed through
a sigmoid so that ``ŷ ∈ (0, 1)`` as required by the log-loss of Eq. 1:

    ŷ = σ( Σ_k g_k · s_k )                                (Eq. 9)

The user behaviour sequence is deliberately consumed **twice** — once by the
input network (feature interactions) and once by the gate network (expert
activation) — which the paper identifies as its key architectural idea.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import ModelConfig
from repro.core.expert import ExpertPool
from repro.core.gate_network import GateNetwork
from repro.core.input_network import FeatureEmbedder, InputNetwork
from repro.core.ranking_model import RankingModel
from repro.data.schema import Batch, DatasetMeta
from repro.nn import Tensor, no_grad

__all__ = ["AWMoE"]


class AWMoE(RankingModel):
    """The paper's proposed model (Algorithm 1)."""

    supports_contrastive = True

    def __init__(self, config: ModelConfig, meta: DatasetMeta, rng: np.random.Generator) -> None:
        super().__init__()
        if config.task != meta.task:
            raise ValueError(
                f"model task {config.task!r} does not match dataset task {meta.task!r}"
            )
        self.config = config
        self.embedder = FeatureEmbedder(config, meta, rng)
        self.input_network = InputNetwork(config, meta, self.embedder, rng, pooling="attention")
        self.experts = ExpertPool(
            self.input_network.output_dim,
            config.expert_hidden,
            config.num_experts,
            rng,
            dropout=config.dropout,
        )
        self.gate = GateNetwork(config, meta, self.embedder, rng)

    # ------------------------------------------------------------------
    # forward passes
    # ------------------------------------------------------------------
    def forward(self, batch: Batch, gate_override: Optional[np.ndarray] = None) -> Tensor:
        """Ranking logits ``Σ_k g_k s_k`` with shape ``(B,)``.

        ``gate_override`` substitutes a precomputed gate matrix ``(B, K)``
        for the gate-network forward pass.  The deployed system (§III-F1)
        evaluates the gate once per user/query session and reuses it for
        every candidate; the serving cache passes the stored vector here so
        only the input network and the experts run per item.
        """
        logits, _ = self.forward_with_gate(batch, gate_override=gate_override)
        return logits

    def forward_with_gate(
        self, batch: Batch, gate_override: Optional[np.ndarray] = None
    ) -> Tuple[Tensor, Tensor]:
        """Return ``(logits, g)`` reusing one gate forward pass.

        The trainer uses the returned gate tensor as the anchor
        representation for the contrastive loss, exactly as the paper
        imposes the InfoNCE loss on the gate-network output (§III-D).
        """
        v_imp = self.input_network(batch)
        scores = self.experts(v_imp)  # (B, K)
        if gate_override is None:
            gate = self.gate(batch)  # (B, K)
        else:
            gate = self._coerce_gate(gate_override)
        logits = (gate * scores).sum(axis=1)
        return logits, gate

    def forward_with_gate_views(
        self, batch: Batch, extra_masks: Sequence[np.ndarray]
    ) -> Tuple[Tensor, List[Tensor]]:
        """Ranking logits plus the gate under several behaviour-mask views.

        Returns ``(logits, gates)`` where ``gates[0]`` is the anchor gate
        (the one the logits use, under the batch's own mask) and
        ``gates[1:]`` correspond to ``extra_masks``.  The training fast path
        uses this to obtain the contrastive anchor *and* positive from one
        shared gate trunk (:meth:`GateNetwork.forward_views`) instead of two
        full gate forward passes per step.
        """
        v_imp = self.input_network(batch)
        scores = self.experts(v_imp)  # (B, K)
        gates = self.gate.forward_views(batch, [None, *extra_masks])
        logits = (gates[0] * scores).sum(axis=1)
        return logits, gates

    @staticmethod
    def _coerce_gate(gate_override: np.ndarray) -> Tensor:
        """Wrap a cached gate matrix for use in the forward pass."""
        return Tensor(np.asarray(gate_override, dtype=np.float32))

    @property
    def gate_is_candidate_independent(self) -> bool:
        """Whether ``g`` depends only on the user/query, not the candidate.

        True in search mode, where the gate key is the query (§III-F1: the
        deployed design computes the gate once per session).  In
        recommendation mode the target item is the gate key, so the gate
        must run per candidate and session-level caching is unsound.
        """
        return self.config.task == "search"

    def gate_vector(self, batch: Batch, mask_override: Optional[np.ndarray] = None) -> Tensor:
        """Gate output ``g``; with ``mask_override`` this is ``g(u')``."""
        return self.gate(batch, mask_override=mask_override)

    def serving_gate(self, batch: Batch) -> np.ndarray:
        """The gate the forward pass *applies*, as plain arrays.

        This is what the serving cache stores and later feeds back through
        ``gate_override``; subclasses that post-process the gate (e.g. the
        sparse top-K extension) override this so cached vectors match their
        forward semantics exactly.
        """
        return self.gate_outputs(batch)

    # ------------------------------------------------------------------
    # analysis helpers
    # ------------------------------------------------------------------
    def gate_outputs(self, batch: Batch) -> np.ndarray:
        """Gate vectors as plain arrays (used by the Fig. 7 t-SNE study)."""
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                return self.gate(batch).numpy()
        finally:
            if was_training:
                self.train()

    def expert_scores(self, batch: Batch) -> np.ndarray:
        """Per-expert scores ``s`` as plain arrays (expert-utilization study)."""
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                return self.experts(self.input_network(batch)).numpy()
        finally:
            if was_training:
                self.train()
