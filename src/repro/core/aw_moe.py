"""AW-MoE: Attention Weighted Mixture of Experts (paper §III-C, Fig. 3).

The model composes three parts:

1. the **input network** turns the raw impression into ``v_imp`` (Eq. 2–4);
2. **K expert networks** each score ``v_imp`` (Eq. 5);
3. the **attention-weighted gate network** reads the behaviour sequence and
   the query (or target item in reco mode) and emits the per-user expert
   activation vector ``g`` (Eq. 6–8).

The final prediction is the gate-weighted sum of expert scores passed through
a sigmoid so that ``ŷ ∈ (0, 1)`` as required by the log-loss of Eq. 1:

    ŷ = σ( Σ_k g_k · s_k )                                (Eq. 9)

The user behaviour sequence is deliberately consumed **twice** — once by the
input network (feature interactions) and once by the gate network (expert
activation) — which the paper identifies as its key architectural idea.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.config import ModelConfig
from repro.core.expert import ExpertPool
from repro.core.gate_network import GateNetwork
from repro.core.input_network import FeatureEmbedder, InputNetwork
from repro.core.ranking_model import RankingModel
from repro.data.schema import Batch, DatasetMeta
from repro.nn import Tensor, no_grad

__all__ = ["AWMoE"]


class AWMoE(RankingModel):
    """The paper's proposed model (Algorithm 1)."""

    supports_contrastive = True

    def __init__(self, config: ModelConfig, meta: DatasetMeta, rng: np.random.Generator) -> None:
        super().__init__()
        if config.task != meta.task:
            raise ValueError(
                f"model task {config.task!r} does not match dataset task {meta.task!r}"
            )
        self.config = config
        self.embedder = FeatureEmbedder(config, meta, rng)
        self.input_network = InputNetwork(config, meta, self.embedder, rng, pooling="attention")
        self.experts = ExpertPool(
            self.input_network.output_dim,
            config.expert_hidden,
            config.num_experts,
            rng,
            dropout=config.dropout,
        )
        self.gate = GateNetwork(config, meta, self.embedder, rng)

    # ------------------------------------------------------------------
    # forward passes
    # ------------------------------------------------------------------
    def forward(self, batch: Batch) -> Tensor:
        """Ranking logits ``Σ_k g_k s_k`` with shape ``(B,)``."""
        logits, _ = self.forward_with_gate(batch)
        return logits

    def forward_with_gate(self, batch: Batch) -> Tuple[Tensor, Tensor]:
        """Return ``(logits, g)`` reusing one gate forward pass.

        The trainer uses the returned gate tensor as the anchor
        representation for the contrastive loss, exactly as the paper
        imposes the InfoNCE loss on the gate-network output (§III-D).
        """
        v_imp = self.input_network(batch)
        scores = self.experts(v_imp)  # (B, K)
        gate = self.gate(batch)  # (B, K)
        logits = (gate * scores).sum(axis=1)
        return logits, gate

    def gate_vector(self, batch: Batch, mask_override: Optional[np.ndarray] = None) -> Tensor:
        """Gate output ``g``; with ``mask_override`` this is ``g(u')``."""
        return self.gate(batch, mask_override=mask_override)

    # ------------------------------------------------------------------
    # analysis helpers
    # ------------------------------------------------------------------
    def gate_outputs(self, batch: Batch) -> np.ndarray:
        """Gate vectors as plain arrays (used by the Fig. 7 t-SNE study)."""
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                return self.gate(batch).numpy()
        finally:
            if was_training:
                self.train()

    def expert_scores(self, batch: Batch) -> np.ndarray:
        """Per-expert scores ``s`` as plain arrays (expert-utilization study)."""
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                return self.experts(self.input_network(batch)).numpy()
        finally:
            if was_training:
                self.train()
