"""``repro.core`` — the paper's contribution and the compared models.

``build_model(name, ...)`` constructs any model from the paper's comparison
(Tables II–V) by name: ``"dnn"``, ``"din"``, ``"category_moe"``, ``"aw_moe"``
(``"aw_moe_cl"`` is the same architecture; the contrastive loss is a training
flag, see :class:`repro.core.config.TrainConfig`).
"""

from __future__ import annotations

import numpy as np

from repro.core.activation_unit import ActivationUnit
from repro.core.aw_moe import AWMoE
from repro.core.baselines import DIN, DNN, CategoryMoE, MMoE
from repro.core.config import ModelConfig, TrainConfig
from repro.core.contrastive import ContrastiveStrategy
from repro.core.expert import Expert, ExpertPool
from repro.core.gate_network import GateNetwork
from repro.core.gate_unit import GateUnit
from repro.core.input_network import FeatureEmbedder, InputNetwork
from repro.core.ranking_model import RankingModel
from repro.core.trainer import build_optimizers, build_strategy, train_model, train_step
from repro.data.schema import DatasetMeta
from repro.utils.registry import Registry

__all__ = [
    "ActivationUnit",
    "AWMoE",
    "CategoryMoE",
    "ContrastiveStrategy",
    "DIN",
    "DNN",
    "DatasetMeta",
    "Expert",
    "ExpertPool",
    "FeatureEmbedder",
    "GateNetwork",
    "GateUnit",
    "InputNetwork",
    "MMoE",
    "ModelConfig",
    "RankingModel",
    "TrainConfig",
    "MODEL_REGISTRY",
    "build_model",
    "build_optimizers",
    "build_strategy",
    "train_model",
    "train_step",
]

MODEL_REGISTRY = Registry("ranking model")


@MODEL_REGISTRY.register("dnn")
def _build_dnn(config: ModelConfig, meta: DatasetMeta, rng: np.random.Generator) -> DNN:
    return DNN(config, meta, rng)


@MODEL_REGISTRY.register("din")
def _build_din(config: ModelConfig, meta: DatasetMeta, rng: np.random.Generator) -> DIN:
    return DIN(config, meta, rng)


@MODEL_REGISTRY.register("category_moe")
def _build_category_moe(
    config: ModelConfig, meta: DatasetMeta, rng: np.random.Generator
) -> CategoryMoE:
    return CategoryMoE(config, meta, rng)


@MODEL_REGISTRY.register("aw_moe")
def _build_aw_moe(config: ModelConfig, meta: DatasetMeta, rng: np.random.Generator) -> AWMoE:
    return AWMoE(config, meta, rng)


@MODEL_REGISTRY.register("mmoe")
def _build_mmoe(config: ModelConfig, meta: DatasetMeta, rng: np.random.Generator) -> MMoE:
    return MMoE(config, meta, rng)


def build_model(
    name: str, config: ModelConfig, meta: DatasetMeta, rng: np.random.Generator
) -> RankingModel:
    """Instantiate a registered ranking model by name."""
    return MODEL_REGISTRY.get(name)(config, meta, rng)
