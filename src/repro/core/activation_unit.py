"""The activation unit Φ (paper Fig. 4a).

Given the hidden vector of one behaviour item and the hidden vector of a
"key" (the target item in the input network, the query in the gate network),
the activation unit scores how strongly the item should be attended to:

    Φ(h_b, h_key) = MLP([h_b ‖ h_b ⊙ h_key ‖ h_key])  →  scalar weight

The element-wise product is the "product" box in Fig. 4a.  The ReLU noted in
Fig. 4a is the MLP's hidden activation; the output weight is linear and
unnormalized, as in DIN (no softmax over the sequence).  A ReLU output is
available via ``output_activation`` but collapses to dead all-zero gates at
small scale (see DESIGN.md fidelity notes).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn import MLP, Module, Tensor, concat

__all__ = ["ActivationUnit"]


class ActivationUnit(Module):
    """Attention scorer producing one weight per behaviour item."""

    def __init__(
        self,
        hidden_dim: int,
        unit_hidden: Tuple[int, ...],
        rng: np.random.Generator,
        output_activation: str = "linear",
    ) -> None:
        super().__init__()
        self.hidden_dim = hidden_dim
        self.mlp = MLP(
            3 * hidden_dim,
            list(unit_hidden) + [1],
            rng,
            activation="relu",
            output_activation=output_activation,
        )
        if output_activation == "relu":
            # Nudge the output bias positive so a ReLU output does not start
            # dead (all-zero attention would zero every gradient).
            last = getattr(self.mlp, f"fc{len(unit_hidden)}")
            if last.bias is not None:
                last.bias.data[:] = 0.1

    def raw_scores(self, h_seq: Tensor, h_key: Tensor) -> Tensor:
        """Mask-independent attention scores ``(B, M)``.

        The validity mask enters the unit only as the final multiply, so
        shared-trunk evaluations (the contrastive fast path scores one
        behaviour sequence under several masks) compute this once and apply
        each mask downstream.
        """
        batch, seq_len, hidden = h_seq.shape
        if h_key.shape != (batch, hidden):
            raise ValueError(f"key shape {h_key.shape} incompatible with sequence {h_seq.shape}")
        key = h_key.expand_dims(1).broadcast_to((batch, seq_len, hidden))
        pairwise = concat([h_seq, h_seq * key, key], axis=-1)
        return self.mlp(pairwise).squeeze(2)

    def forward(self, h_seq: Tensor, h_key: Tensor, mask: np.ndarray) -> Tensor:
        """Score every sequence position against the key.

        Parameters
        ----------
        h_seq:
            Hidden behaviour vectors, shape ``(B, M, H)``.
        h_key:
            Hidden key vector (target item or query), shape ``(B, H)``.
        mask:
            Float validity mask ``(B, M)``; padded positions score 0.

        Returns
        -------
        Attention weights ``(B, M)``, zero at padded positions.
        """
        return self.raw_scores(h_seq, h_key) * np.asarray(mask, dtype=np.float32)
