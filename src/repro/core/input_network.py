"""The input network (paper §III-B, Fig. 3b).

Embeds every raw feature group, projects each through an MLP, pools the
behaviour sequence into a target-aware user vector ``v_u`` (Eq. 3, DIN-style
attention), and concatenates everything into the impression representation
``v_imp`` (Eq. 4).

The same module also serves the DNN baseline (``pooling="sum"``), which
replaces the attention with plain sum pooling as in YouTube-DNN.
"""

from __future__ import annotations

import numpy as np

from repro.core.activation_unit import ActivationUnit
from repro.core.config import ModelConfig
from repro.data.schema import Batch, DatasetMeta
from repro.nn import MLP, Embedding, Module, Tensor, concat

__all__ = ["InputNetwork", "FeatureEmbedder"]


class FeatureEmbedder(Module):
    """Shared embedding tables for items, categories and queries.

    The paper shares one embedding layer between the input network and the
    gate network (§III-C2: "using the embedding layer same as that in the
    input network"); instantiate this once per model and pass it to both.
    """

    def __init__(self, config: ModelConfig, meta: DatasetMeta, rng: np.random.Generator) -> None:
        super().__init__()
        self.item = Embedding(meta.num_items, config.item_embed_dim, rng)
        self.category = Embedding(meta.num_categories, config.category_embed_dim, rng)
        self.query = Embedding(meta.num_queries, config.query_embed_dim, rng)
        self.item_repr_dim = (
            config.item_embed_dim + config.category_embed_dim + meta.num_item_dense
        )
        self.query_repr_dim = config.query_embed_dim

    def behavior(self, batch: Batch) -> Tensor:
        """Behaviour item representations ``(B, M, item_repr_dim)``.

        Each behaviour item is represented by its id embedding, its category
        embedding, and its dense profile features (price / popularity /
        quality) — the side information production systems attach to
        sequence items.
        """
        items = self.item(batch["behavior_items"])
        categories = self.category(batch["behavior_categories"])
        dense = Tensor(batch["behavior_dense"])
        return concat([items, categories, dense], axis=-1)

    def target(self, batch: Batch) -> Tensor:
        """Target item representations ``(B, item_repr_dim)``."""
        items = self.item(batch["target_item"])
        categories = self.category(batch["target_category"])
        dense = Tensor(batch["target_dense"])
        return concat([items, categories, dense], axis=-1)

    def query_repr(self, batch: Batch) -> Tensor:
        """Query representations ``(B, query_repr_dim)``."""
        return self.query(batch["query"])


class InputNetwork(Module):
    """Produce the impression representation ``v_imp`` (Eq. 2–4)."""

    def __init__(
        self,
        config: ModelConfig,
        meta: DatasetMeta,
        embedder: FeatureEmbedder,
        rng: np.random.Generator,
        pooling: str = "attention",
    ) -> None:
        super().__init__()
        if pooling not in ("attention", "sum"):
            raise ValueError(f"pooling must be 'attention' or 'sum', got {pooling!r}")
        self.config = config
        self.pooling = pooling
        self.embedder = embedder
        hidden = config.input_hidden
        self.hidden_dim = hidden[-1]
        # MLP^I shared by behaviour items and the target item (they live in
        # the same representation space so the attention can compare them).
        self.behavior_mlp = MLP(embedder.item_repr_dim, hidden, rng, activation="relu")
        self.other_mlp = MLP(meta.num_features, hidden, rng, activation="relu")
        if config.task == "search":
            self.query_mlp = MLP(embedder.query_repr_dim, hidden, rng, activation="relu")
        else:
            self.query_mlp = None
        if pooling == "attention":
            self.attention = ActivationUnit(self.hidden_dim, config.unit_hidden, rng)
        else:
            self.attention = None
        components = 3 if config.task == "search" else 2
        self.output_dim = (components + 1) * self.hidden_dim

    def user_vector(self, batch: Batch, h_target: Tensor) -> Tensor:
        """Target-aware user representation ``v_u`` (Eq. 3), shape (B, H)."""
        h_behavior = self.behavior_mlp(self.embedder.behavior(batch))
        mask = batch["behavior_mask"]
        if self.pooling == "attention":
            weights = self.attention(h_behavior, h_target, mask)  # (B, M)
            weighted = h_behavior * weights.expand_dims(2)
        else:
            weighted = h_behavior * np.asarray(mask, dtype=np.float32)[:, :, None]
        return weighted.sum(axis=1)

    def forward(self, batch: Batch) -> Tensor:
        """Impression representation ``v_imp`` (Eq. 4), shape (B, output_dim)."""
        h_target = self.behavior_mlp(self.embedder.target(batch))
        v_user = self.user_vector(batch, h_target)
        h_other = self.other_mlp(Tensor(batch["other_features"]))
        parts = [v_user, h_target]
        if self.query_mlp is not None:
            parts.append(self.query_mlp(self.embedder.query_repr(batch)))
        parts.append(h_other)
        return concat(parts, axis=-1)
