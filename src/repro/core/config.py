"""Configuration dataclasses for models and training.

``ModelConfig.paper()`` reproduces the layer sizes of the paper's Fig. 3–4
(input MLP 64x32, activation/gate units 32x16, experts 512x256x1, K = 4);
``ModelConfig.small()`` shrinks the experts for CPU-scale runs while keeping
every architectural choice identical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

__all__ = ["ModelConfig", "TrainConfig"]


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyper-parameters shared by AW-MoE and all baselines."""

    # Embedding dimensions (shared tables: input network and gate network use
    # the same embedding layer, §III-C2).
    item_embed_dim: int = 12
    category_embed_dim: int = 8
    query_embed_dim: int = 12
    # Input network MLP^I hidden sizes (Fig. 3b: "MLP (64x32)").
    input_hidden: Tuple[int, ...] = (64, 32)
    # Activation unit Phi and gate unit Theta hidden sizes (Fig. 4a/4c:
    # "MLP (32x16x{1,K})"); the final width (1 or K) is implied.
    unit_hidden: Tuple[int, ...] = (32, 16)
    # Expert network Psi hidden sizes (Fig. 4b: "MLP (512x256x1)").
    expert_hidden: Tuple[int, ...] = (64, 32)
    # Number of experts K (§IV-D: K = 4).
    num_experts: int = 4
    # "search": the gate reads (behaviour, query); "reco": no query exists,
    # the gate reads (behaviour, target item) instead (§IV-A2).
    task: str = "search"
    # Table VI ablation switches: gate unit (GU) and activation unit (AU).
    gate_use_gate_unit: bool = True
    gate_use_activation_unit: bool = True
    # Learned prior over experts added to the attention sum.  Necessary so
    # users with empty behaviour sequences ("new users", Fig. 7) still
    # produce a non-degenerate mixture; documented in DESIGN.md.
    gate_bias: bool = True
    # Softmax-normalize the gate output over experts.  The paper's AW gate is
    # unnormalized (Eq. 8); Category-MoE [34] uses a softmax gate.
    normalize_gate: bool = False
    # Dropout on expert hidden layers.
    dropout: float = 0.0

    @staticmethod
    def paper(task: str = "search") -> "ModelConfig":
        """Layer sizes exactly as printed in the paper's figures."""
        return ModelConfig(expert_hidden=(512, 256), task=task)

    @staticmethod
    def small(task: str = "search") -> "ModelConfig":
        """CPU-scale preset used by tests, examples, and benchmarks."""
        return ModelConfig(task=task)

    @staticmethod
    def unit(task: str = "search") -> "ModelConfig":
        """Tiny preset for unit tests."""
        return ModelConfig(
            item_embed_dim=6,
            category_embed_dim=4,
            query_embed_dim=6,
            input_hidden=(16, 8),
            unit_hidden=(8, 4),
            expert_hidden=(16, 8),
            task=task,
        )

    def with_gate_ablation(self, use_gate_unit: bool, use_activation_unit: bool) -> "ModelConfig":
        """Return a copy with Table VI's GU/AU switches set."""
        return replace(
            self,
            gate_use_gate_unit=use_gate_unit,
            gate_use_activation_unit=use_activation_unit,
        )

    def __post_init__(self) -> None:
        if self.task not in ("search", "reco"):
            raise ValueError(f"task must be 'search' or 'reco', got {self.task!r}")
        if self.num_experts < 1:
            raise ValueError(f"num_experts must be >= 1, got {self.num_experts}")


@dataclass(frozen=True)
class TrainConfig:
    """Optimization and contrastive-learning hyper-parameters (§III-D, §IV-D)."""

    epochs: int = 3
    batch_size: int = 256
    # The paper uses AdamW at 1e-4 on a billion-scale dataset; our datasets
    # are 4-5 orders of magnitude smaller, so the default is higher.
    learning_rate: float = 2e-3
    weight_decay: float = 0.01
    grad_clip: float = 5.0
    # Learning-rate multiplier for the gate network's parameters (1.0 = off).
    # Small-scale MoE training benefits from a faster gate; see trainer docs.
    gate_lr_multiplier: float = 1.0
    # Contrastive learning (§III-D).  Paper-tuned values: p=0.1, l=3, λ=0.05.
    contrastive: bool = False
    mask_prob: float = 0.1
    num_negatives: int = 3
    cl_weight: float = 0.05
    # Behaviour-sequence augmentation: "mask" (paper), "reorder" or "crop"
    # (future-work extensions, §V).
    augmentation: str = "mask"
    log_every: int = 0
    # Train through the fused fast path: packed-expert GEMMs, fused
    # linear+bias+activation kernels, shared-trunk contrastive views, and a
    # recycled gradient-buffer arena.  ``False`` selects the eager reference
    # path — op for op the original implementation, with bitwise-reproducible
    # loss curves — which the fast path is parity-tested against.
    fast_path: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.mask_prob <= 1.0:
            raise ValueError(f"mask_prob must be in [0, 1], got {self.mask_prob}")
        if self.num_negatives < 1:
            raise ValueError(f"num_negatives must be >= 1, got {self.num_negatives}")
        if self.augmentation not in ("mask", "reorder", "crop"):
            raise ValueError(f"unknown augmentation {self.augmentation!r}")

    def with_contrastive(self, **overrides) -> "TrainConfig":
        """Copy with contrastive learning enabled (Fig. 8 sweeps use this)."""
        merged = {"contrastive": True}
        merged.update(overrides)
        return replace(self, **merged)
