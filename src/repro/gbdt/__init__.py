"""``repro.gbdt`` — gradient-boosted trees (XGBoost stand-in for Fig. 2)."""

from repro.gbdt.boosting import GBDTParams, GradientBoostedTrees
from repro.gbdt.tree import RegressionTree, TreeParams

__all__ = ["GBDTParams", "GradientBoostedTrees", "RegressionTree", "TreeParams"]
