"""Regression trees for gradient boosting (XGBoost-style second-order fit).

Each tree is grown greedily on (gradient, hessian) statistics with the exact
split-gain formula of XGBoost:

    gain = 1/2 [ G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ) ] − γ

The per-feature *total gain* accumulated over all splits is the feature
importance the paper reads off XGBoost for Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

__all__ = ["TreeParams", "RegressionTree"]


@dataclass(frozen=True)
class TreeParams:
    """Growth hyper-parameters for one tree."""

    max_depth: int = 3
    min_child_weight: float = 1.0
    reg_lambda: float = 1.0
    gamma: float = 0.0
    min_split_gain: float = 1e-7

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {self.max_depth}")
        if self.reg_lambda < 0:
            raise ValueError("reg_lambda must be non-negative")


class _Node:
    """Internal tree node; leaves carry ``value``, splits carry children."""

    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self) -> None:
        self.feature: int = -1
        self.threshold: float = 0.0
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """One boosted tree fit to (gradient, hessian) statistics."""

    def __init__(self, params: TreeParams) -> None:
        self.params = params
        self._root: Optional[_Node] = None
        #: Total split gain accumulated per feature index.
        self.feature_gain: Dict[int, float] = {}
        #: Number of splits per feature index.
        self.feature_splits: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, grad: np.ndarray, hess: np.ndarray) -> "RegressionTree":
        """Grow the tree on ``features`` (N, F) with per-row grad/hess."""
        features = np.asarray(features, dtype=np.float64)
        grad = np.asarray(grad, dtype=np.float64)
        hess = np.asarray(hess, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {features.shape}")
        if not (len(features) == len(grad) == len(hess)):
            raise ValueError("features, grad and hess must have equal length")
        self._root = self._grow(features, grad, hess, np.arange(len(grad)), depth=0)
        return self

    def _leaf_value(self, grad_sum: float, hess_sum: float) -> float:
        return -grad_sum / (hess_sum + self.params.reg_lambda)

    def _grow(
        self,
        features: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        rows: np.ndarray,
        depth: int,
    ) -> _Node:
        node = _Node()
        g_total = float(grad[rows].sum())
        h_total = float(hess[rows].sum())
        node.value = self._leaf_value(g_total, h_total)
        if depth >= self.params.max_depth or rows.size < 2:
            return node

        best = self._best_split(features, grad, hess, rows, g_total, h_total)
        if best is None:
            return node
        gain, feature, threshold = best
        node.feature = feature
        node.threshold = threshold
        self.feature_gain[feature] = self.feature_gain.get(feature, 0.0) + gain
        self.feature_splits[feature] = self.feature_splits.get(feature, 0) + 1

        goes_left = features[rows, feature] <= threshold
        node.left = self._grow(features, grad, hess, rows[goes_left], depth + 1)
        node.right = self._grow(features, grad, hess, rows[~goes_left], depth + 1)
        return node

    def _best_split(
        self,
        features: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        rows: np.ndarray,
        g_total: float,
        h_total: float,
    ):
        """Exact greedy search over all features and cut points."""
        params = self.params
        lam = params.reg_lambda
        parent_score = g_total * g_total / (h_total + lam)
        best_gain = params.min_split_gain
        best = None
        for feature in range(features.shape[1]):
            values = features[rows, feature]
            order = np.argsort(values, kind="stable")
            sorted_values = values[order]
            g_sorted = grad[rows][order]
            h_sorted = hess[rows][order]
            g_cum = np.cumsum(g_sorted)
            h_cum = np.cumsum(h_sorted)
            # Candidate cuts between distinct consecutive values.
            distinct = np.flatnonzero(np.diff(sorted_values) > 0)
            if distinct.size == 0:
                continue
            g_left = g_cum[distinct]
            h_left = h_cum[distinct]
            g_right = g_total - g_left
            h_right = h_total - h_left
            valid = (h_left >= params.min_child_weight) & (h_right >= params.min_child_weight)
            if not valid.any():
                continue
            gains = (
                0.5
                * (
                    g_left**2 / (h_left + lam)
                    + g_right**2 / (h_right + lam)
                    - parent_score
                )
                - params.gamma
            )
            gains = np.where(valid, gains, -np.inf)
            pick = int(np.argmax(gains))
            if gains[pick] > best_gain:
                best_gain = float(gains[pick])
                cut = distinct[pick]
                threshold = 0.5 * (sorted_values[cut] + sorted_values[cut + 1])
                best = (best_gain, feature, float(threshold))
        return best

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Leaf values for each row of ``features``."""
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        features = np.asarray(features, dtype=np.float64)
        out = np.empty(len(features))
        for i in range(len(features)):
            node = self._root
            while not node.is_leaf:
                if features[i, node.feature] <= node.threshold:
                    node = node.left
                else:
                    node = node.right
            out[i] = node.value
        return out

    def depth(self) -> int:
        """Actual depth of the fitted tree."""

        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)
