"""Gradient-boosted trees with logistic loss (the paper's XGBoost stand-in).

Implements ``binary:logistic`` boosting: each round fits a
:class:`repro.gbdt.tree.RegressionTree` to the first/second-order statistics
of the log-loss, exactly as XGBoost does.  Feature importances (total split
gain / split counts) power the Fig. 2 reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.gbdt.tree import RegressionTree, TreeParams

__all__ = ["GBDTParams", "GradientBoostedTrees"]


@dataclass(frozen=True)
class GBDTParams:
    """Boosting hyper-parameters."""

    num_rounds: int = 30
    learning_rate: float = 0.2
    max_depth: int = 3
    min_child_weight: float = 1.0
    reg_lambda: float = 1.0
    gamma: float = 0.0
    subsample: float = 1.0

    def tree_params(self) -> TreeParams:
        return TreeParams(
            max_depth=self.max_depth,
            min_child_weight=self.min_child_weight,
            reg_lambda=self.reg_lambda,
            gamma=self.gamma,
        )

    def __post_init__(self) -> None:
        if self.num_rounds < 1:
            raise ValueError("num_rounds must be >= 1")
        if not 0.0 < self.subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")


class GradientBoostedTrees:
    """Binary classifier: sigmoid over a sum of boosted regression trees."""

    def __init__(self, params: GBDTParams, rng: Optional[np.random.Generator] = None) -> None:
        self.params = params
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._trees: List[RegressionTree] = []
        self._base_score: float = 0.0
        self.num_features: Optional[int] = None

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "GradientBoostedTrees":
        """Fit on binary ``labels`` in {0, 1}."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        if set(np.unique(labels)) - {0.0, 1.0}:
            raise ValueError("labels must be binary {0, 1}")
        self.num_features = features.shape[1]
        positive_rate = np.clip(labels.mean(), 1e-6, 1 - 1e-6)
        self._base_score = float(np.log(positive_rate / (1 - positive_rate)))
        margins = np.full(len(labels), self._base_score)
        n = len(labels)

        for _ in range(self.params.num_rounds):
            probs = 1.0 / (1.0 + np.exp(-margins))
            grad = probs - labels
            hess = probs * (1.0 - probs)
            if self.params.subsample < 1.0:
                rows = self._rng.random(n) < self.params.subsample
                sample_grad = np.where(rows, grad, 0.0)
                sample_hess = np.where(rows, hess, 0.0)
            else:
                sample_grad, sample_hess = grad, hess
            tree = RegressionTree(self.params.tree_params())
            tree.fit(features, sample_grad, sample_hess)
            self._trees.append(tree)
            margins = margins + self.params.learning_rate * tree.predict(features)
        return self

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def predict_margin(self, features: np.ndarray) -> np.ndarray:
        """Raw additive margin (log-odds)."""
        if not self._trees:
            raise RuntimeError("model is not fitted")
        features = np.asarray(features, dtype=np.float64)
        margins = np.full(len(features), self._base_score)
        for tree in self._trees:
            margins += self.params.learning_rate * tree.predict(features)
        return margins

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Predicted P(label = 1)."""
        return 1.0 / (1.0 + np.exp(-self.predict_margin(features)))

    # ------------------------------------------------------------------
    # importances (Fig. 2)
    # ------------------------------------------------------------------
    def feature_importances(self, kind: str = "gain", normalize: bool = True) -> np.ndarray:
        """Per-feature importance: total split ``"gain"`` or ``"splits"``.

        Normalized to sum to 1 by default, like the relative importances the
        paper plots in Fig. 2.
        """
        if self.num_features is None:
            raise RuntimeError("model is not fitted")
        totals = np.zeros(self.num_features)
        for tree in self._trees:
            source = tree.feature_gain if kind == "gain" else tree.feature_splits
            if kind not in ("gain", "splits"):
                raise ValueError(f"kind must be 'gain' or 'splits', got {kind!r}")
            for feature, value in source.items():
                totals[feature] += value
        if normalize and totals.sum() > 0:
            totals = totals / totals.sum()
        return totals

    def __len__(self) -> int:
        return len(self._trees)
