"""Dataset schema shared by generators, models, and the evaluation stack.

An *impression* is one (user, item, context) row (§III-A).  A batch is a plain
dict of NumPy arrays — integer id arrays for embedding lookups, float arrays
for dense features — matching the model input contract documented on
:class:`repro.core.aw_moe.AWMoE`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

__all__ = ["FEATURE_NAMES", "FIG2_FEATURES", "DatasetMeta", "Batch", "batch_size_of"]

#: Dense ("other") feature vector layout, in order.  The six starred names are
#: the features plotted in the paper's Fig. 2.
FEATURE_NAMES: Tuple[str, ...] = (
    "user_log_activity",
    "age_young",
    "age_mid",
    "age_elderly",
    "price",  # * Fig. 2 "Price"
    "sales",  # * Fig. 2 "Sales"
    "popularity",  # * Fig. 2 "Popularity"
    "quality",
    "query_item_match",
    "query_specificity",
    "item_click_cnt",  # * Fig. 2 "Item_click_cnt"
    "brand_click_cnt",
    "shop_click_cnt",  # * Fig. 2 "Shop_click_cnt"
    "category_click_cnt",
    "brand_click_time_diff",  # * Fig. 2 "Brand_click_time_diff"
    "price_gap",
)

#: The six features the paper's Fig. 2 reports, in the paper's order.
FIG2_FEATURES: Tuple[str, ...] = (
    "sales",
    "popularity",
    "price",
    "item_click_cnt",
    "brand_click_time_diff",
    "shop_click_cnt",
)

#: Per-item dense profile features attached to behaviour/target items (real
#: ranking systems embed item side-information alongside the id; these are
#: what the latent archetypes and style preferences react to).
ITEM_DENSE_NAMES: Tuple[str, ...] = ("price", "popularity", "quality", "style")

Batch = Dict[str, np.ndarray]

#: Array keys every ranking batch must carry.
BATCH_KEYS: Tuple[str, ...] = (
    "behavior_items",
    "behavior_categories",
    "behavior_dense",
    "behavior_mask",
    "target_item",
    "target_category",
    "target_dense",
    "query",
    "query_category",
    "other_features",
    "label",
    "session_id",
    "user_id",
)


@dataclass(frozen=True)
class DatasetMeta:
    """Vocabulary sizes and shapes a model needs to size its embeddings.

    Id 0 is reserved for padding in every vocabulary.
    """

    num_items: int
    num_categories: int
    num_queries: int
    num_brands: int
    num_shops: int
    max_seq_len: int
    feature_names: Tuple[str, ...] = FEATURE_NAMES
    item_dense_names: Tuple[str, ...] = ITEM_DENSE_NAMES
    task: str = "search"  # "search" (query available) or "reco" (no query)

    @property
    def num_features(self) -> int:
        return len(self.feature_names)

    @property
    def num_item_dense(self) -> int:
        return len(self.item_dense_names)

    def feature_index(self, name: str) -> int:
        """Index of a dense feature by name; raises on unknown names."""
        try:
            return self.feature_names.index(name)
        except ValueError:
            raise KeyError(f"unknown feature {name!r}; known: {self.feature_names}")


def batch_size_of(batch: Batch) -> int:
    """Number of impressions in a batch."""
    return int(batch["label"].shape[0])


def validate_batch(batch: Batch) -> None:
    """Raise if a batch is missing keys or has inconsistent shapes."""
    missing = [key for key in BATCH_KEYS if key not in batch]
    if missing:
        raise KeyError(f"batch missing keys: {missing}")
    n = batch_size_of(batch)
    for key in BATCH_KEYS:
        if batch[key].shape[0] != n:
            raise ValueError(
                f"batch key {key!r} has leading dim {batch[key].shape[0]}, expected {n}"
            )
    if batch["behavior_items"].shape != batch["behavior_mask"].shape:
        raise ValueError("behavior_items and behavior_mask shapes differ")
