"""Dataset statistics in the layout of the paper's Table I."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.data.dataset import RankingDataset

__all__ = ["dataset_statistics", "table1_rows"]

_ROW_ORDER: Tuple[str, ...] = (
    "# Sessions",
    "# Users",
    "# Queries",
    "# Examples",
    "Pos : Neg",
    "# Examples / # Sessions",
)


def dataset_statistics(dataset: RankingDataset) -> Dict[str, str]:
    """One Table I column for one dataset split."""
    ratio = dataset.pos_neg_ratio()
    return {
        "# Sessions": f"{dataset.num_sessions():,}",
        "# Users": f"{dataset.num_users():,}",
        "# Queries": f"{dataset.num_queries():,}",
        "# Examples": f"{len(dataset):,}",
        "Pos : Neg": f"1 : {ratio:.0f}" if ratio >= 1.5 else "1 : 1",
        "# Examples / # Sessions": f"{dataset.examples_per_session():.1f}",
    }


def table1_rows(splits: Dict[str, RankingDataset]) -> List[List[str]]:
    """Rows of Table I: one statistic per row, one split per column."""
    columns = {name: dataset_statistics(ds) for name, ds in splits.items()}
    rows: List[List[str]] = []
    for statistic in _ROW_ORDER:
        row = [statistic]
        row.extend(columns[name][statistic] for name in splits)
        rows.append(row)
    return rows
