"""Test-set splits (paper §IV-A1, Table I).

From the full test set the paper selects two long-tail user subsets:

* **Long-tail test set 1** — users with few historical behaviours;
* **Long-tail test set 2** — elderly users (who in our world, as in the
  paper's, have systematically shorter histories).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.data.dataset import RankingDataset
from repro.data.schema import FEATURE_NAMES

__all__ = ["long_tail_by_history", "long_tail_elderly", "standard_test_splits"]

_ELDERLY_FEATURE = FEATURE_NAMES.index("age_elderly")


def long_tail_by_history(dataset: RankingDataset, max_behaviors: int = 3) -> RankingDataset:
    """Impressions of users with at most ``max_behaviors`` history items."""
    lengths = dataset.behavior_lengths()
    return dataset.subset(np.flatnonzero(lengths <= max_behaviors))


def long_tail_elderly(dataset: RankingDataset) -> RankingDataset:
    """Impressions of elderly users (age one-hot from the dense features)."""
    elderly = dataset.other_features[:, _ELDERLY_FEATURE] == 1.0
    return dataset.subset(np.flatnonzero(elderly))


def standard_test_splits(
    test: RankingDataset, max_behaviors: int = 3
) -> Dict[str, RankingDataset]:
    """The paper's three evaluation sets, keyed like Table I's columns."""
    return {
        "full": test,
        "long_tail_1": long_tail_by_history(test, max_behaviors=max_behaviors),
        "long_tail_2": long_tail_elderly(test),
    }
