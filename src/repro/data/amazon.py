"""Synthetic Amazon-review-like recommendation dataset (paper §IV-A2).

The public Amazon review corpus cannot be downloaded in this offline
environment, so this module generates a review log and applies the *exact
evaluation protocol* the paper uses (following [34]):

* review events are grouped per user and ordered chronologically;
* the task is to predict each user's **last** reviewed item;
* one negative item is sampled uniformly from all other items (1:1);
* users are split 90% / 10% into train / test;
* there is **no query** — AW-MoE's gate reads the *target item* instead
  (§IV-A2), which is the ``task="reco"`` code path of the models.

The underlying world reuses :mod:`repro.data.synthetic`: the same archetype /
style / interest structure drives which items a user reviews, so the
recommendation experiment exercises the same personalization machinery as the
search experiment, matching the paper's argument that its conclusions carry
over.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Tuple

import numpy as np

from repro.data.dataset import RankingDataset
from repro.data.schema import FEATURE_NAMES, DatasetMeta
from repro.data.features import item_dense as _item_dense
from repro.data.synthetic import World, WorldConfig, generate_world
from repro.utils.rng import SeedBank

__all__ = ["make_amazon_datasets", "amazon_meta"]


def amazon_meta(world: World) -> DatasetMeta:
    """Dataset metadata for the reco task (query vocabulary collapses to 1)."""
    base = world.meta()
    return replace(base, task="reco", num_queries=1)


def _review_features(world: World, user: int, history: np.ndarray, item: int) -> np.ndarray:
    """Dense feature vector for a (user, candidate item) pair.

    Reuses the search-feature layout; query-dependent entries are zero
    because the recommendation scenario has no query.
    """
    features = np.zeros(len(FEATURE_NAMES), dtype=np.float32)
    h = len(history)
    features[0] = np.log1p(h) / np.log1p(world.config.max_seq_len)
    features[1 + world.user_age[user]] = 1.0
    features[4] = world.item_price_pct[item]
    features[5] = world.item_sales[item]
    features[6] = world.item_popularity[item]
    features[7] = world.item_quality[item]
    if h:
        hist_brands = world.item_brand[history]
        hist_shops = world.item_shop[history]
        hist_cats = world.item_category[history]
        features[10] = min(int((history == item).sum()), 3) / 3.0
        features[11] = min(int((hist_brands == world.item_brand[item]).sum()), 5) / 5.0
        features[12] = min(int((hist_shops == world.item_shop[item]).sum()), 5) / 5.0
        cat_hits = hist_cats == world.item_category[item]
        features[13] = min(int(cat_hits.sum()), 8) / 8.0
        brand_positions = np.flatnonzero(hist_brands == world.item_brand[item])
        if brand_positions.size:
            features[14] = (h - 1 - brand_positions[-1]) / max(h, 1)
        else:
            features[14] = 1.0
        if cat_hits.any():
            mean_price = world.item_price_pct[history[cat_hits]].mean()
            features[15] = world.item_price_pct[item] - mean_price
    else:
        features[14] = 1.0
    return features


def _encode_history(
    world: World, history: np.ndarray, max_len: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    items = np.zeros(max_len, dtype=np.int32)
    cats = np.zeros(max_len, dtype=np.int32)
    dense = np.zeros((max_len, 4), dtype=np.float32)
    mask = np.zeros(max_len, dtype=np.float32)
    recent = history[-max_len:]
    n = len(recent)
    if n:
        items[:n] = recent + 1
        cats[:n] = world.item_category[recent] + 1
        dense[:n] = _item_dense(world, recent)
        mask[:n] = 1.0
    return items, cats, dense, mask


def _build_rows(
    world: World, users: np.ndarray, rng: np.random.Generator, meta: DatasetMeta
) -> RankingDataset:
    """Leave-one-out rows: per user, last review positive + 1 random negative."""
    max_len = world.config.max_seq_len
    n_items = world.num_items
    rows: List[Tuple] = []
    for user in users:
        history = world.histories[user]
        if len(history) < 2:
            continue  # need at least one behaviour plus the held-out review
        target_pos = int(history[-1])
        prefix = history[:-1]
        negative = int(rng.integers(0, n_items))
        while negative == target_pos:
            negative = int(rng.integers(0, n_items))
        encoded = _encode_history(world, prefix, max_len)
        for item, label in ((target_pos, 1.0), (negative, 0.0)):
            rows.append((user, item, label, encoded))
    if not rows:
        raise ValueError("no users with enough history; increase world size")

    count = len(rows)
    behavior_items = np.stack([r[3][0] for r in rows])
    behavior_cats = np.stack([r[3][1] for r in rows])
    behavior_dense = np.stack([r[3][2] for r in rows])
    behavior_mask = np.stack([r[3][3] for r in rows])
    user_col = np.asarray([r[0] for r in rows], dtype=np.int64)
    item_col = np.asarray([r[1] for r in rows], dtype=np.int64)
    label_col = np.asarray([r[2] for r in rows], dtype=np.float32)
    features = np.stack(
        [
            _review_features(world, int(r[0]), world.histories[int(r[0])][:-1], int(r[1]))
            for r in rows
        ]
    ).astype(np.float32)

    return RankingDataset(
        behavior_items=behavior_items,
        behavior_categories=behavior_cats,
        behavior_dense=behavior_dense,
        behavior_mask=behavior_mask,
        target_item=(item_col + 1).astype(np.int32),
        target_category=(world.item_category[item_col] + 1).astype(np.int32),
        target_dense=_item_dense(world, item_col),
        query=np.zeros(count, dtype=np.int32),
        query_category=np.zeros(count, dtype=np.int32),
        other_features=features,
        label=label_col,
        # Each user is one "session": the paper computes only the overall
        # AUC here, which with 1 pos + 1 neg per user coincides with the
        # session-averaged pairwise metric.
        session_id=user_col.copy(),
        user_id=user_col,
        meta=meta,
    )


def make_amazon_datasets(
    config: WorldConfig, seed: int = 0, train_fraction: float = 0.9
) -> Tuple[World, RankingDataset, RankingDataset]:
    """Generate the reco-mode world and its 90/10 user-split datasets.

    The label model is implicit: the *actually reviewed* last item is the
    positive, exactly as in the paper's protocol — no separate label
    function is involved.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
    bank = SeedBank(seed)
    world = generate_world(config, bank.child("amazon-world"))
    meta = amazon_meta(world)
    users = bank.child("user-split").permutation(world.num_users)
    cut = int(round(train_fraction * world.num_users))
    train = _build_rows(world, users[:cut], bank.child("train-negatives"), meta)
    test = _build_rows(world, users[cut:], bank.child("test-negatives"), meta)
    return world, train, test
