"""Synthetic JD-search-like world generator.

The paper's in-house dataset is proprietary, so this module builds a
generative stand-in that plants exactly the structure the paper's method
exploits:

* **Personalized feature-interaction patterns** — every user has a latent
  *archetype* (price-sensitive, brand-loyal, trend-follower, quality-seeker).
  The ground-truth purchase probability combines features *differently per
  archetype*, and the archetype is **not** exposed as an input feature: it is
  only recoverable from the user's behaviour sequence.  A single shared FFN
  therefore cannot represent the label function well, while a mixture whose
  gate reads the behaviour sequence (AW-MoE) can — this is Fig. 1's argument.
* **Category-new vs category-old behaviour (Fig. 2)** — when the user has no
  history in the target item's category, the label depends on popularity and
  price (following the general trend); with history it depends on the
  archetype-specific and two-sided features.  This mirrors the paper's
  XGBoost feature-importance observation.
* **Long-tail users (§III-D)** — activity is heavy-tailed and correlated with
  an age group; elderly users have systematically shorter histories.  This
  yields the two long-tail test sets of Tables III–IV.
* **Style affinity** — every item has a 1-D style coordinate; every user a
  preferred style that shapes their history.  The label rewards target items
  whose style matches the user's, and the preference is *only* recoverable
  from the behaviour sequence (it is not a cross feature) — this is the
  signal target-aware attention (DIN, Eq. 3) extracts better than sum
  pooling.
* **Per-category interaction weights** — the popularity/price effects are
  modulated by category-specific weights, giving the category-specialized
  experts of Category-MoE [34] their advantage over single-FFN models, as in
  the paper's Tables II–V ordering.

Everything is deterministic given the ``numpy.random.Generator`` passed in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.data.dataset import RankingDataset
from repro.data.features import (
    UserState,
    cross_features,
    encode_behavior,
    impression_features,
    item_dense,
)
from repro.data.schema import FEATURE_NAMES, DatasetMeta

__all__ = [
    "ARCHETYPES",
    "AGE_GROUPS",
    "WorldConfig",
    "World",
    "SearchLog",
    "generate_world",
    "simulate_search_log",
    "build_train_dataset",
    "build_test_dataset",
    "make_search_datasets",
    "true_relevance",
    "drift_world",
]

#: Latent user archetypes; the ground-truth label model weights features
#: differently per archetype (the personalization signal AW-MoE's gate learns).
ARCHETYPES: Tuple[str, ...] = ("price_sensitive", "brand_loyal", "trend_follower", "quality_seeker")

#: Age groups; "elderly" users have shorter histories (long-tail test set 2).
AGE_GROUPS: Tuple[str, ...] = ("young", "mid", "elderly")

_PRICE, _BRAND, _TREND, _QUALITY = range(4)
_YOUNG, _MID, _ELDERLY = range(3)


@dataclass(frozen=True)
class WorldConfig:
    """Size and behaviour knobs of the synthetic world."""

    num_users: int = 3000
    num_items: int = 800
    num_categories: int = 20
    brands_per_category: int = 6
    num_shops: int = 120
    num_query_specificities: int = 3
    max_seq_len: int = 20
    #: Mean history length by age group (heavy-tailed around these).
    mean_history: Tuple[float, float, float] = (10.0, 8.0, 2.0)
    #: Fraction of users with empty histories ("new users" in Fig. 7).
    new_user_fraction: float = 0.08
    #: Age group probabilities (young, mid, elderly).
    age_probs: Tuple[float, float, float] = (0.35, 0.45, 0.20)
    #: Candidates shown per search session.
    items_per_session: int = 12
    #: Global intercept of the label model; tuned for ~10% positive rate.
    label_bias: float = -4.4
    #: Std of the label-model noise.
    label_noise: float = 0.3

    @staticmethod
    def unit() -> "WorldConfig":
        """Tiny world for unit tests."""
        return WorldConfig(
            num_users=200,
            num_items=120,
            num_categories=8,
            brands_per_category=3,
            num_shops=20,
            max_seq_len=8,
            items_per_session=8,
        )

    @staticmethod
    def small() -> "WorldConfig":
        """Benchmark/example scale (CPU-friendly)."""
        return WorldConfig()

    @staticmethod
    def full() -> "WorldConfig":
        """Larger scale for the recorded EXPERIMENTS.md runs."""
        return WorldConfig(
            num_users=30000,
            num_items=5000,
            num_categories=40,
            brands_per_category=8,
            num_shops=600,
            max_seq_len=30,
        )

    @staticmethod
    def large_catalog(num_items: int = 120_000, num_categories: int = 12) -> "WorldConfig":
        """Catalog-dominated scale for the retrieval-cascade benchmarks.

        Items outnumber users by orders of magnitude (the e-commerce regime
        the cascade exists for): ~10k items per category, so exhaustive
        full-model scoring of one query category is visibly linear while
        the ANN index + prefilter stays sublinear.  User count and history
        length stay modest — the cost under test is the catalog scan, not
        behaviour encoding.
        """
        return WorldConfig(
            num_users=3000,
            num_items=num_items,
            num_categories=num_categories,
            brands_per_category=40,
            num_shops=2000,
            max_seq_len=12,
            items_per_session=12,
        )


@dataclass
class World:
    """Generated entities; all entity ids are 0-based (padding added later)."""

    config: WorldConfig
    # items
    item_category: np.ndarray  # (I,) int
    item_brand: np.ndarray  # (I,) int, global brand ids
    item_shop: np.ndarray  # (I,) int
    item_price_pct: np.ndarray  # (I,) float in [0, 1], percentile within category
    item_popularity: np.ndarray  # (I,) float in [0, 1]
    item_sales: np.ndarray  # (I,) float in [0, 1], noisy proxy of popularity
    item_quality: np.ndarray  # (I,) float in [0, 1]
    item_style: np.ndarray  # (I,) float in [0, 1], 1-D style coordinate
    # categories
    category_trend_weight: np.ndarray  # (C,) popularity-effect modulation
    category_price_weight: np.ndarray  # (C,) price-effect modulation
    # users
    user_archetype: np.ndarray  # (U,) int in [0, 4)
    user_age: np.ndarray  # (U,) int in [0, 3)
    user_interests: np.ndarray  # (U, C) rows sum to 1
    user_style: np.ndarray  # (U,) float in [0, 1], preferred style
    histories: List[np.ndarray]  # per user: chronological item ids, oldest first

    @property
    def num_items(self) -> int:
        return len(self.item_category)

    @property
    def num_users(self) -> int:
        return len(self.user_archetype)

    @property
    def num_categories(self) -> int:
        return self.config.num_categories

    @property
    def num_brands(self) -> int:
        return self.config.num_categories * self.config.brands_per_category

    def history_length(self, user: int) -> int:
        return len(self.histories[user])

    def meta(self) -> DatasetMeta:
        """Dataset metadata; +1 everywhere for the padding id 0."""
        cfg = self.config
        return DatasetMeta(
            num_items=self.num_items + 1,
            num_categories=cfg.num_categories + 1,
            num_queries=cfg.num_categories * cfg.num_query_specificities + 1,
            num_brands=self.num_brands + 1,
            num_shops=cfg.num_shops + 1,
            max_seq_len=cfg.max_seq_len,
            task="search",
        )


def generate_world(config: WorldConfig, rng: np.random.Generator) -> World:
    """Sample a full world: items, users, and user behaviour histories."""
    cfg = config
    n_items, n_cats = cfg.num_items, cfg.num_categories

    item_category = rng.integers(0, n_cats, size=n_items)
    brand_within = rng.integers(0, cfg.brands_per_category, size=n_items)
    item_brand = item_category * cfg.brands_per_category + brand_within
    item_shop = rng.integers(0, cfg.num_shops, size=n_items)

    # Price percentile within each category; quality weakly tracks price.
    item_price_pct = np.empty(n_items)
    for cat in range(n_cats):
        members = np.flatnonzero(item_category == cat)
        if members.size:
            ranks = rng.permutation(members.size)
            item_price_pct[members] = (ranks + 0.5) / members.size
    item_quality = np.clip(
        0.55 * item_price_pct + 0.45 * rng.beta(5, 2, size=n_items), 0.0, 1.0
    )

    # Zipf-like popularity within category.
    item_popularity = np.empty(n_items)
    for cat in range(n_cats):
        members = np.flatnonzero(item_category == cat)
        if members.size:
            ranks = rng.permutation(members.size) + 1
            pop = 1.0 / ranks ** 0.8
            item_popularity[members] = pop / pop.max()
    item_sales = np.clip(item_popularity + rng.normal(0, 0.08, size=n_items), 0.0, 1.0)
    item_style = rng.random(n_items)

    category_trend_weight = rng.uniform(0.5, 1.5, size=n_cats)
    category_price_weight = rng.uniform(0.5, 1.5, size=n_cats)

    n_users = cfg.num_users
    user_archetype = rng.integers(0, len(ARCHETYPES), size=n_users)
    user_age = rng.choice(len(AGE_GROUPS), size=n_users, p=cfg.age_probs)
    user_interests = rng.dirichlet(np.full(n_cats, 0.3), size=n_users)
    user_style = rng.random(n_users)

    histories = _sample_histories(
        cfg, rng, user_archetype, user_age, user_interests, user_style,
        item_category, item_brand, item_price_pct, item_popularity, item_quality,
        item_style,
    )

    return World(
        config=cfg,
        item_category=item_category,
        item_brand=item_brand,
        item_shop=item_shop,
        item_price_pct=item_price_pct,
        item_popularity=item_popularity,
        item_sales=item_sales,
        item_quality=item_quality,
        item_style=item_style,
        category_trend_weight=category_trend_weight,
        category_price_weight=category_price_weight,
        user_archetype=user_archetype,
        user_age=user_age,
        user_interests=user_interests,
        user_style=user_style,
        histories=histories,
    )


def _sample_histories(
    cfg: WorldConfig,
    rng: np.random.Generator,
    archetype: np.ndarray,
    age: np.ndarray,
    interests: np.ndarray,
    user_style: np.ndarray,
    item_category: np.ndarray,
    item_brand: np.ndarray,
    item_price_pct: np.ndarray,
    item_popularity: np.ndarray,
    item_quality: np.ndarray,
    item_style: np.ndarray,
) -> List[np.ndarray]:
    """Sample per-user chronological behaviour sequences.

    Item choice within a category follows the user's archetype and style, so
    the sequence *reveals* both latent traits: cheap items for
    price-sensitive users, one dominant brand for brand-loyal users, popular
    items for trend-followers, high-quality items for quality-seekers — all
    concentrated near the user's style coordinate.
    """
    n_cats = cfg.num_categories
    by_category = [np.flatnonzero(item_category == cat) for cat in range(n_cats)]
    histories: List[np.ndarray] = []
    means = np.asarray(cfg.mean_history)

    for user in range(len(archetype)):
        if rng.random() < cfg.new_user_fraction:
            histories.append(np.empty(0, dtype=np.int64))
            continue
        length = int(min(cfg.max_seq_len, 1 + rng.poisson(max(means[age[user]] - 1, 0.1))))
        chosen: List[int] = []
        favourite_brand: Dict[int, int] = {}
        for _ in range(length):
            cat = int(rng.choice(n_cats, p=interests[user]))
            members = by_category[cat]
            if members.size == 0:
                continue
            logits = -4.0 * np.abs(item_style[members] - user_style[user])
            kind = archetype[user]
            if kind == _PRICE:
                logits = logits - 3.0 * item_price_pct[members]
            elif kind == _BRAND:
                if cat in favourite_brand:
                    logits = logits + 2.5 * (item_brand[members] == favourite_brand[cat])
            elif kind == _TREND:
                logits = logits + 3.0 * item_popularity[members]
            else:  # quality seeker
                logits = logits + 3.0 * item_quality[members]
            probs = np.exp(logits - logits.max())
            probs /= probs.sum()
            pick = int(rng.choice(members, p=probs))
            chosen.append(pick)
            if kind == _BRAND and cat not in favourite_brand:
                favourite_brand[cat] = int(item_brand[pick])
        histories.append(np.asarray(chosen, dtype=np.int64))
    return histories


def true_relevance(
    world: World, user: int, candidates: np.ndarray, query_category: int
) -> np.ndarray:
    """Ground-truth purchase probability for each candidate (0-based ids).

    This is the sigmoid of the label model's log-odds — the same quantity
    :func:`simulate_search_log` thresholds to produce purchase labels.  The
    online-loop click simulator (:mod:`repro.online.click_model`) uses it as
    the relevance term of the position-biased click model, so simulated
    clicks carry exactly the signal the offline labels carry.
    """
    candidates = np.asarray(candidates)
    state = UserState(world, user)
    cross = cross_features(state, world, candidates)
    z = _true_logits(world, user, candidates, query_category, cross)
    return 1.0 / (1.0 + np.exp(-z))


def drift_world(
    world: World,
    rng: np.random.Generator,
    interest_drift: float = 0.2,
    trend_drift: float = 0.15,
) -> None:
    """Shift the world's preference structure in place (concept drift).

    Models the non-stationarity a deployed ranker faces between refresh
    cycles: user category interests blend toward a freshly sampled profile
    (``interest_drift`` is the mixing weight) and the per-category
    popularity/price effect weights random-walk (``trend_drift`` scale,
    clipped to the generator's [0.5, 1.5] range).  Features and labels both
    read these arrays live, so serving, click simulation, and evaluation all
    see the drifted world consistently — no retraining-time skew.
    """
    if not 0.0 <= interest_drift <= 1.0:
        raise ValueError(f"interest_drift must be in [0, 1], got {interest_drift}")
    cfg = world.config
    fresh = rng.dirichlet(np.full(cfg.num_categories, 0.3), size=world.num_users)
    world.user_interests *= 1.0 - interest_drift
    world.user_interests += interest_drift * fresh
    world.user_interests /= world.user_interests.sum(axis=1, keepdims=True)
    for weights in (world.category_trend_weight, world.category_price_weight):
        weights += rng.normal(0.0, trend_drift, size=weights.shape)
        np.clip(weights, 0.5, 1.5, out=weights)


# ----------------------------------------------------------------------
# session simulation
# ----------------------------------------------------------------------
@dataclass
class SearchLog:
    """Impression-level log of simulated search sessions (pre-sampling)."""

    world: World
    session_id: np.ndarray  # (N,)
    user_id: np.ndarray  # (N,)
    query: np.ndarray  # (N,) 1-based query ids
    query_category: np.ndarray  # (N,) 1-based category ids
    target_item: np.ndarray  # (N,) 1-based item ids
    label: np.ndarray  # (N,) float {0, 1}
    other_features: np.ndarray  # (N, F) float32
    behavior_items: np.ndarray  # (N, M) 1-based, 0-padded
    behavior_categories: np.ndarray  # (N, M)
    behavior_dense: np.ndarray  # (N, M, D)
    behavior_mask: np.ndarray  # (N, M)

    def __len__(self) -> int:
        return len(self.label)


def _true_logits(
    world: World,
    user: int,
    candidates: np.ndarray,
    query_cat: int,
    cross: Dict[str, np.ndarray],
) -> np.ndarray:
    """Ground-truth purchase log-odds for each candidate (the label model).

    Category-new impressions (no history in the item's category) are driven
    by popularity and price — with *category-specific* weights (the structure
    Category-MoE exploits); category-old impressions by the archetype's
    preferred features plus two-sided history features (the structure
    AW-MoE's user-oriented gate exploits) — matching the paper's Fig. 2.
    A style-match term rewards items near the user's latent style, which is
    only recoverable from the behaviour sequence (DIN's attention signal).
    """
    cfg = world.config
    cats = world.item_category[candidates]
    interest = world.user_interests[user, cats]
    rel = (cats == query_cat).astype(float)
    pop = world.item_popularity[candidates]
    price = world.item_price_pct[candidates]
    quality = world.item_quality[candidates]
    style_match = 1.0 - 3.0 * np.abs(world.item_style[candidates] - world.user_style[user])

    z = cfg.label_bias + 1.4 * rel + 1.2 * interest + 1.2 * style_match

    cat_old = cross["category_click_cnt"] > 0
    # Category-new behaviour: follow the trend, anchor on price; effect sizes
    # are modulated per category.
    trend_w = world.category_trend_weight[cats]
    price_w = world.category_price_weight[cats]
    z = z + np.where(cat_old, 0.0, 1.7 * trend_w * pop - 1.1 * price_w * (price - 0.5))

    # Category-old behaviour: archetype-specific interactions.
    kind = world.user_archetype[user]
    if kind == _PRICE:
        habit = 2.6 * (0.5 - price) * price_w
    elif kind == _BRAND:
        brand_seen = cross["brand_click_cnt"] > 0
        habit = 2.2 * brand_seen + 0.8 * np.minimum(cross["brand_click_cnt"], 4) / 4.0
        habit = habit - 0.6 * np.where(brand_seen, cross["brand_click_time_diff"], 0.0)
    elif kind == _TREND:
        habit = 2.6 * pop * trend_w
    else:
        habit = 2.6 * (quality - 0.5)
    two_sided = (
        0.8 * np.minimum(cross["item_click_cnt"], 2) / 2.0
        + 0.4 * np.minimum(cross["shop_click_cnt"], 4) / 4.0
    )
    z = z + np.where(cat_old, habit + two_sided, 0.0)
    return z


def simulate_search_log(
    world: World,
    num_sessions: int,
    rng: np.random.Generator,
    start_session_id: int = 0,
) -> SearchLog:
    """Simulate search sessions: query issue, candidate retrieval, purchases.

    Users are sampled proportionally to activity (active users search more,
    as in a real log); the retrieval step is popularity-biased within the
    query category, mimicking an engine's candidate generator.
    """
    cfg = world.config
    n_users = world.num_users
    lengths = np.asarray([len(h) for h in world.histories], dtype=float)
    user_probs = (lengths + 1.0) / (lengths + 1.0).sum()

    n_cats = cfg.num_categories
    by_category = [np.flatnonzero(world.item_category == cat) for cat in range(n_cats)]
    all_items = np.arange(world.num_items)

    rows_session: List[int] = []
    rows_user: List[int] = []
    rows_query: List[int] = []
    rows_query_cat: List[int] = []
    rows_item: List[np.ndarray] = []
    rows_label: List[np.ndarray] = []
    rows_features: List[np.ndarray] = []
    behavior_rows: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []

    states: Dict[int, UserState] = {}
    feature_count = len(FEATURE_NAMES)

    for s in range(num_sessions):
        user = int(rng.choice(n_users, p=user_probs))
        state = states.get(user)
        if state is None:
            state = UserState(world, user)
            states[user] = state

        # Query: mostly driven by interests, with exploration.
        if rng.random() < 0.7:
            query_cat = int(rng.choice(n_cats, p=world.user_interests[user]))
        else:
            query_cat = int(rng.integers(0, n_cats))
        spec = int(rng.integers(0, cfg.num_query_specificities))
        query_id = query_cat * cfg.num_query_specificities + spec + 1

        # Retrieval: popularity-biased within category, a few off-category.
        members = by_category[query_cat]
        k_in = min(members.size, max(1, int(round(cfg.items_per_session * 0.9))))
        weights = world.item_popularity[members] ** 0.7 + 1e-3
        weights = weights / weights.sum()
        in_cat = rng.choice(members, size=k_in, replace=False, p=weights)
        k_out = cfg.items_per_session - k_in
        if k_out > 0:
            out_cat = rng.choice(all_items, size=k_out, replace=False)
            candidates = np.unique(np.concatenate([in_cat, out_cat]))
        else:
            candidates = np.unique(in_cat)

        cross = cross_features(state, world, candidates)
        logits = _true_logits(world, user, candidates, query_cat, cross)
        logits = logits + rng.normal(0, cfg.label_noise, size=logits.size)
        labels = (rng.random(logits.size) < 1.0 / (1.0 + np.exp(-logits))).astype(np.float32)

        features = impression_features(world, user, candidates, query_cat, spec, cross, state)
        assert features.shape[1] == feature_count

        rows_session.append(start_session_id + s)
        rows_user.append(user)
        rows_query.append(query_id)
        rows_query_cat.append(query_cat + 1)
        rows_item.append(candidates + 1)
        rows_label.append(labels)
        rows_features.append(features)
        behavior_rows.append(encode_behavior(world, user, cfg.max_seq_len))

    counts = [len(items) for items in rows_item]
    session_col = np.repeat(np.asarray(rows_session, dtype=np.int64), counts)
    user_col = np.repeat(np.asarray(rows_user, dtype=np.int64), counts)
    query_col = np.repeat(np.asarray(rows_query, dtype=np.int32), counts)
    query_cat_col = np.repeat(np.asarray(rows_query_cat, dtype=np.int32), counts)
    item_col = np.concatenate(rows_item).astype(np.int32)
    label_col = np.concatenate(rows_label).astype(np.float32)
    features_col = np.concatenate(rows_features).astype(np.float32)
    behavior_items = np.repeat(
        np.stack([row[0] for row in behavior_rows]), counts, axis=0
    )
    behavior_cats = np.repeat(
        np.stack([row[1] for row in behavior_rows]), counts, axis=0
    )
    behavior_dense = np.repeat(
        np.stack([row[2] for row in behavior_rows]), counts, axis=0
    )
    behavior_mask = np.repeat(
        np.stack([row[3] for row in behavior_rows]), counts, axis=0
    )

    return SearchLog(
        world=world,
        session_id=session_col,
        user_id=user_col,
        query=query_col,
        query_category=query_cat_col,
        target_item=item_col,
        label=label_col,
        other_features=features_col,
        behavior_items=behavior_items,
        behavior_categories=behavior_cats,
        behavior_dense=behavior_dense,
        behavior_mask=behavior_mask,
    )


# ----------------------------------------------------------------------
# log -> dataset
# ----------------------------------------------------------------------
def _dataset_from_rows(log: SearchLog, rows: np.ndarray) -> RankingDataset:
    return RankingDataset(
        behavior_items=log.behavior_items[rows],
        behavior_categories=log.behavior_categories[rows],
        behavior_dense=log.behavior_dense[rows],
        behavior_mask=log.behavior_mask[rows],
        target_item=log.target_item[rows],
        target_category=(log.world.item_category[log.target_item[rows] - 1] + 1).astype(np.int32),
        target_dense=item_dense(log.world, log.target_item[rows] - 1),
        query=log.query[rows],
        query_category=log.query_category[rows],
        other_features=log.other_features[rows],
        label=log.label[rows],
        session_id=log.session_id[rows],
        user_id=log.user_id[rows],
        meta=log.world.meta(),
    )


def build_train_dataset(log: SearchLog, rng: np.random.Generator) -> RankingDataset:
    """Training split per §IV-A1: purchased items positive, an equal number
    of sampled non-purchased impressions negative (1:1), per session."""
    keep: List[np.ndarray] = []
    for _, rows in _sessions(log):
        positives = rows[log.label[rows] == 1]
        negatives = rows[log.label[rows] == 0]
        if positives.size == 0 or negatives.size == 0:
            continue
        count = min(positives.size, negatives.size)
        sampled = rng.choice(negatives, size=count, replace=False)
        keep.append(positives)
        keep.append(sampled)
    if not keep:
        raise ValueError("no sessions with both positives and negatives; increase sessions")
    rows = np.sort(np.concatenate(keep))
    return _dataset_from_rows(log, rows)


def build_test_dataset(log: SearchLog) -> RankingDataset:
    """Test split per §IV-A1: all impressions of sessions that contain at
    least one purchase and one non-purchase."""
    keep: List[np.ndarray] = []
    for _, rows in _sessions(log):
        labels = log.label[rows]
        if labels.max() == 1 and labels.min() == 0:
            keep.append(rows)
    if not keep:
        raise ValueError("no evaluable sessions; increase sessions")
    rows = np.sort(np.concatenate(keep))
    return _dataset_from_rows(log, rows)


def _sessions(log: SearchLog):
    """Yield (session_id, row_indices) pairs; rows are contiguous by build."""
    boundaries = np.flatnonzero(np.diff(log.session_id)) + 1
    starts = np.concatenate([[0], boundaries])
    stops = np.concatenate([boundaries, [len(log.session_id)]])
    for start, stop in zip(starts, stops):
        yield int(log.session_id[start]), np.arange(start, stop)


def make_search_datasets(
    config: WorldConfig,
    num_train_sessions: int,
    num_test_sessions: int,
    seed: int = 0,
) -> Tuple[World, RankingDataset, RankingDataset]:
    """One-call pipeline: world → logs → (train 1:1, test full) datasets."""
    from repro.utils.rng import SeedBank

    bank = SeedBank(seed)
    world = generate_world(config, bank.child("world"))
    train_log = simulate_search_log(world, num_train_sessions, bank.child("train-sessions"))
    test_log = simulate_search_log(
        world, num_test_sessions, bank.child("test-sessions"), start_session_id=num_train_sessions
    )
    train = build_train_dataset(train_log, bank.child("negative-sampling"))
    test = build_test_dataset(test_log)
    return world, train, test
