"""Public feature-assembly API shared by offline generation and online serving.

The synthetic log generator (:mod:`repro.data.synthetic`) and the serving
stack (:mod:`repro.serving`) must compute *exactly* the same features for an
impression, otherwise offline training and online scoring drift apart — the
classic training/serving skew problem.  This module is the single source of
truth for that computation:

* :class:`UserState` — cached per-user history arrays;
* :func:`cross_features` — two-sided user x item counters (Fig. 2 features);
* :func:`impression_features` — the dense ``other_features`` matrix in
  :data:`repro.data.schema.FEATURE_NAMES` order;
* :func:`encode_behavior` — the padded behaviour-sequence arrays consumed by
  the attention layers;
* :func:`item_dense` — per-item dense profiles (price/popularity/quality/style);
* :func:`assemble_candidate_batch` — the full feature dump of Fig. 6: one
  model-ready :data:`~repro.data.schema.Batch` for a (user, query, candidates)
  triple.

Everything here is deterministic and free of random state, so the serving
cache (:mod:`repro.serving.cache`) may store and reuse any of these outputs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from repro.data.schema import FEATURE_NAMES, Batch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (synthetic imports us)
    from repro.data.synthetic import World

__all__ = [
    "UserState",
    "BehaviorEncoding",
    "cross_features",
    "encode_behavior",
    "impression_features",
    "item_dense",
    "assemble_candidate_batch",
]

#: ``(items, categories, dense, mask)`` rows returned by :func:`encode_behavior`.
BehaviorEncoding = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


class UserState:
    """Cached per-user history arrays for fast cross-feature computation."""

    __slots__ = ("items", "categories", "brands", "shops", "prices", "length")

    def __init__(self, world: "World", user: int) -> None:
        history = world.histories[user]
        self.items = history
        self.categories = world.item_category[history]
        self.brands = world.item_brand[history]
        self.shops = world.item_shop[history]
        self.prices = world.item_price_pct[history]
        self.length = len(history)


def cross_features(
    state: UserState, world: "World", candidates: np.ndarray
) -> Dict[str, np.ndarray]:
    """Two-sided user-item features for a session's candidate set (C,)."""
    c = candidates.size
    if state.length == 0:
        zero = np.zeros(c)
        return {
            "item_click_cnt": zero,
            "brand_click_cnt": zero.copy(),
            "shop_click_cnt": zero.copy(),
            "category_click_cnt": zero.copy(),
            "brand_click_time_diff": np.ones(c),
            "price_gap": zero.copy(),
        }
    cand_brand = world.item_brand[candidates][:, None]
    cand_shop = world.item_shop[candidates][:, None]
    cand_cat = world.item_category[candidates][:, None]
    cand_item = candidates[:, None]

    item_hits = state.items[None, :] == cand_item  # (C, H)
    brand_hits = state.brands[None, :] == cand_brand
    shop_hits = state.shops[None, :] == cand_shop
    cat_hits = state.categories[None, :] == cand_cat

    h = state.length
    # Recency of the last same-brand interaction, normalized to [0, 1];
    # 1.0 when the brand never occurs (matches "Brand_click_time_diff").
    positions = np.arange(h)
    last_brand_pos = np.where(
        brand_hits.any(axis=1), (brand_hits * (positions + 1)).max(axis=1) - 1, -1
    )
    brand_time_diff = np.where(
        last_brand_pos >= 0, (h - 1 - last_brand_pos) / max(h, 1), 1.0
    )

    cat_counts = cat_hits.sum(axis=1)
    with np.errstate(invalid="ignore"):
        mean_cat_price = np.where(
            cat_counts > 0,
            (cat_hits * state.prices[None, :]).sum(axis=1) / np.maximum(cat_counts, 1),
            0.0,
        )
    price_gap = np.where(cat_counts > 0, world.item_price_pct[candidates] - mean_cat_price, 0.0)

    return {
        "item_click_cnt": item_hits.sum(axis=1).astype(float),
        "brand_click_cnt": brand_hits.sum(axis=1).astype(float),
        "shop_click_cnt": shop_hits.sum(axis=1).astype(float),
        "category_click_cnt": cat_counts.astype(float),
        "brand_click_time_diff": brand_time_diff,
        "price_gap": price_gap,
    }


def item_dense(world: "World", items: np.ndarray) -> np.ndarray:
    """Per-item dense profile (price, popularity, quality, style)."""
    return np.stack(
        [
            world.item_price_pct[items],
            world.item_popularity[items],
            world.item_quality[items],
            world.item_style[items],
        ],
        axis=-1,
    ).astype(np.float32)


def encode_behavior(world: "World", user: int, max_len: int) -> BehaviorEncoding:
    """Left-aligned, 0-padded (items, categories, dense, mask) rows."""
    history = world.histories[user][-max_len:]
    items = np.zeros(max_len, dtype=np.int32)
    cats = np.zeros(max_len, dtype=np.int32)
    dense = np.zeros((max_len, 4), dtype=np.float32)
    mask = np.zeros(max_len, dtype=np.float32)
    n = len(history)
    if n:
        items[:n] = history + 1
        cats[:n] = world.item_category[history] + 1
        dense[:n] = item_dense(world, history)
        mask[:n] = 1.0
    return items, cats, dense, mask


def impression_features(
    world: "World",
    user: int,
    candidates: np.ndarray,
    query_cat: int,
    spec: int,
    cross: Dict[str, np.ndarray],
    state: UserState,
) -> np.ndarray:
    """Dense feature matrix (C, F) following ``FEATURE_NAMES`` order."""
    cfg = world.config
    c = candidates.size
    features = np.zeros((c, len(FEATURE_NAMES)), dtype=np.float32)
    features[:, 0] = np.log1p(state.length) / np.log1p(cfg.max_seq_len)
    features[:, 1 + world.user_age[user]] = 1.0
    features[:, 4] = world.item_price_pct[candidates]
    features[:, 5] = world.item_sales[candidates]
    features[:, 6] = world.item_popularity[candidates]
    features[:, 7] = world.item_quality[candidates]
    features[:, 8] = (world.item_category[candidates] == query_cat).astype(np.float32)
    features[:, 9] = spec / max(cfg.num_query_specificities - 1, 1)
    features[:, 10] = np.minimum(cross["item_click_cnt"], 3) / 3.0
    features[:, 11] = np.minimum(cross["brand_click_cnt"], 5) / 5.0
    features[:, 12] = np.minimum(cross["shop_click_cnt"], 5) / 5.0
    features[:, 13] = np.minimum(cross["category_click_cnt"], 8) / 8.0
    features[:, 14] = cross["brand_click_time_diff"]
    features[:, 15] = cross["price_gap"]
    return features


def assemble_candidate_batch(
    world: "World",
    user: int,
    query_category: int,
    candidates: np.ndarray,
    spec: int = 1,
    behavior: Optional[BehaviorEncoding] = None,
    state: Optional[UserState] = None,
) -> Batch:
    """Model-ready batch for scoring ``candidates`` against one (user, query).

    This is the "feature dump" step of the paper's Fig. 6 serving diagram.
    ``behavior`` and ``state`` accept precomputed values (the serving session
    cache stores the behaviour encoding) so hot users skip re-encoding.
    """
    if state is None:
        state = UserState(world, user)
    cross = cross_features(state, world, candidates)
    features = impression_features(world, user, candidates, query_category, spec, cross, state)
    if behavior is None:
        behavior = encode_behavior(world, user, world.config.max_seq_len)
    items, cats, dense, mask = behavior
    count = candidates.size
    query_id = query_category * world.config.num_query_specificities + spec + 1
    return {
        "behavior_items": np.tile(items, (count, 1)),
        "behavior_categories": np.tile(cats, (count, 1)),
        "behavior_dense": np.tile(dense, (count, 1, 1)),
        "behavior_mask": np.tile(mask, (count, 1)),
        "target_item": (candidates + 1).astype(np.int32),
        "target_category": (world.item_category[candidates] + 1).astype(np.int32),
        "target_dense": item_dense(world, candidates),
        "query": np.full(count, query_id, dtype=np.int32),
        "query_category": np.full(count, query_category + 1, dtype=np.int32),
        "other_features": features.astype(np.float32),
        "label": np.zeros(count, dtype=np.float32),
        "session_id": np.zeros(count, dtype=np.int64),
        "user_id": np.full(count, user, dtype=np.int64),
    }
