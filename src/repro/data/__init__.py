"""``repro.data`` — dataset generators, batching, splits, augmentations."""

from repro.data.dataset import RankingDataset, iterate_batches
from repro.data.features import (
    UserState,
    assemble_candidate_batch,
    cross_features,
    encode_behavior,
    impression_features,
    item_dense,
)
from repro.data.masking import (
    augment_mask,
    random_crop,
    random_mask,
    random_reorder,
    sample_in_batch_negatives,
)
from repro.data.schema import FEATURE_NAMES, FIG2_FEATURES, Batch, DatasetMeta
from repro.data.synthetic import (
    AGE_GROUPS,
    ARCHETYPES,
    SearchLog,
    World,
    WorldConfig,
    build_test_dataset,
    build_train_dataset,
    generate_world,
    drift_world,
    make_search_datasets,
    simulate_search_log,
    true_relevance,
)

__all__ = [
    "RankingDataset",
    "iterate_batches",
    "UserState",
    "assemble_candidate_batch",
    "cross_features",
    "encode_behavior",
    "impression_features",
    "item_dense",
    "augment_mask",
    "random_crop",
    "random_mask",
    "random_reorder",
    "sample_in_batch_negatives",
    "FEATURE_NAMES",
    "FIG2_FEATURES",
    "Batch",
    "DatasetMeta",
    "AGE_GROUPS",
    "ARCHETYPES",
    "SearchLog",
    "World",
    "WorldConfig",
    "build_test_dataset",
    "build_train_dataset",
    "generate_world",
    "drift_world",
    "make_search_datasets",
    "simulate_search_log",
    "true_relevance",
]
