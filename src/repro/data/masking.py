"""Behaviour-sequence augmentations for contrastive learning (§III-D, §V).

The paper's strategy randomly *masks* items in the behaviour sequence with
probability ``p`` to simulate long-tail users.  The future-work section (§V)
mentions *reordering*; *cropping* is the third standard augmentation from the
contrastive sequential-recommendation literature the paper cites [43], [44].

All augmentations operate on the ``(B, M)`` validity mask (and, for reorder,
the id arrays) without touching the underlying dataset; models consume the
augmented view through the ``mask_override`` hook of the gate network.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.schema import Batch

__all__ = [
    "random_mask",
    "random_crop",
    "random_reorder",
    "augment_mask",
    "sample_in_batch_negatives",
]


def random_mask(mask: np.ndarray, rng: np.random.Generator, p: float) -> np.ndarray:
    """Zero each valid position independently with probability ``p``.

    This is the paper's augmentation: the masked sequence simulates a
    long-tail user with fewer historical behaviours.  Masking may empty a
    sequence entirely, which simulates a brand-new user — a valid and useful
    extreme (Fig. 7's "new user" group).
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"mask probability must be in [0, 1], got {p}")
    mask = np.asarray(mask, dtype=np.float32)
    keep = rng.random(mask.shape) >= p
    return mask * keep


def random_crop(mask: np.ndarray, rng: np.random.Generator, ratio: float = 0.8) -> np.ndarray:
    """Keep a random contiguous window covering ``ratio`` of valid items.

    Unlike masking, cropping preserves local order/recency structure.

    The window is chosen per row but computed for the whole batch at once:
    every position gets a rank among its row's valid entries, one vectorised
    draw picks each row's window start, and the crop is two broadcast
    comparisons — no per-sample Python loop on the contrastive hot path.
    """
    if not 0.0 < ratio <= 1.0:
        raise ValueError(f"crop ratio must be in (0, 1], got {ratio}")
    mask = np.asarray(mask, dtype=np.float32)
    valid = mask > 0
    # Rank of each valid position within its row (0-based, in order).
    rank = np.cumsum(valid, axis=1) - 1
    counts = valid.sum(axis=1)  # valid items per row
    window = np.maximum(1, np.rint(counts * ratio).astype(np.int64))
    # Uniform start in [0, counts - window]; empty rows draw a dummy 0.
    span = np.maximum(counts - window + 1, 1)
    start = rng.integers(0, span)
    keep = valid & (rank >= start[:, None]) & (rank < (start + window)[:, None])
    return np.where(keep, mask, 0.0).astype(np.float32)


def random_reorder(
    items: np.ndarray,
    categories: np.ndarray,
    mask: np.ndarray,
    rng: np.random.Generator,
    p: float = 0.2,
) -> Tuple[np.ndarray, np.ndarray]:
    """Shuffle a random fraction ``p`` of valid positions (future work §V).

    Returns reordered copies of ``(items, categories)``.  Note the AW-MoE
    gate is permutation-invariant over the sequence, so reordering only
    perturbs models/features sensitive to order; it is provided for the
    augmentation-ablation benchmark.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"reorder probability must be in [0, 1], got {p}")
    items = np.array(items, copy=True)
    categories = np.array(categories, copy=True)
    for row in range(items.shape[0]):
        valid = np.flatnonzero(mask[row] > 0)
        chosen = valid[rng.random(valid.size) < p]
        if chosen.size > 1:
            permuted = rng.permutation(chosen)
            items[row, chosen] = items[row, permuted]
            categories[row, chosen] = categories[row, permuted]
    return items, categories


def augment_mask(
    batch: Batch,
    rng: np.random.Generator,
    strategy: str,
    p: float,
) -> np.ndarray:
    """Return the positive-view mask for the requested strategy.

    ``"mask"`` follows the paper; ``"crop"`` keeps a contiguous window of
    size ``1 - p``; ``"reorder"`` permutes ids in place and returns the
    original mask (the batch's id arrays are replaced by reordered copies).
    """
    mask = batch["behavior_mask"]
    if strategy == "mask":
        return random_mask(mask, rng, p)
    if strategy == "crop":
        return random_crop(mask, rng, ratio=max(1.0 - p, 0.05))
    if strategy == "reorder":
        items, categories = random_reorder(
            batch["behavior_items"], batch["behavior_categories"], mask, rng, p=max(p, 0.2)
        )
        batch["behavior_items"] = items
        batch["behavior_categories"] = categories
        return np.asarray(mask, dtype=np.float32)
    raise ValueError(f"unknown augmentation strategy {strategy!r}")


def sample_in_batch_negatives(
    batch_size: int, num_negatives: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``l`` in-batch negative row indices per anchor, excluding self.

    Returns an ``(batch_size, l)`` integer array.  Requires at least two rows
    (otherwise no valid negative exists).
    """
    if batch_size < 2:
        raise ValueError("in-batch negatives require batch_size >= 2")
    draws = rng.integers(0, batch_size - 1, size=(batch_size, num_negatives))
    anchors = np.arange(batch_size)[:, None]
    # Shift draws >= anchor by one: uniform over {0..B-1} \ {anchor}.
    return draws + (draws >= anchors)
