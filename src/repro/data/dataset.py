"""In-memory ranking dataset (struct-of-arrays) and mini-batch iteration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.data.schema import Batch, DatasetMeta

__all__ = ["RankingDataset", "iterate_batches"]


@dataclass
class RankingDataset:
    """All impressions of one split, stored column-wise.

    Attributes mirror the batch contract (see ``repro.data.schema``): integer
    id columns feed embedding tables, ``other_features`` is the dense vector,
    ``session_id`` groups impressions into search sessions for the
    session-level AUC/NDCG metrics (Eq. 12–13).
    """

    behavior_items: np.ndarray  # (N, M) int32, 0-padded
    behavior_categories: np.ndarray  # (N, M) int32, 0-padded
    behavior_dense: np.ndarray  # (N, M, D) float32 item profile features
    behavior_mask: np.ndarray  # (N, M) float32 in {0, 1}
    target_item: np.ndarray  # (N,) int32
    target_category: np.ndarray  # (N,) int32
    target_dense: np.ndarray  # (N, D) float32 item profile features
    query: np.ndarray  # (N,) int32 (0 when task == "reco")
    query_category: np.ndarray  # (N,) int32
    other_features: np.ndarray  # (N, F) float32
    label: np.ndarray  # (N,) float32 in {0, 1}
    session_id: np.ndarray  # (N,) int64
    user_id: np.ndarray  # (N,) int64
    meta: DatasetMeta

    def __post_init__(self) -> None:
        n = len(self.label)
        for name in (
            "behavior_items",
            "behavior_categories",
            "behavior_dense",
            "behavior_mask",
            "target_item",
            "target_category",
            "target_dense",
            "query",
            "query_category",
            "other_features",
            "session_id",
            "user_id",
        ):
            column = getattr(self, name)
            if column.shape[0] != n:
                raise ValueError(f"column {name!r} has {column.shape[0]} rows, expected {n}")

    def __len__(self) -> int:
        return int(self.label.shape[0])

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def subset(self, indices: np.ndarray) -> "RankingDataset":
        """Return a new dataset holding only ``indices`` (copy-free views)."""
        indices = np.asarray(indices)
        return RankingDataset(
            behavior_items=self.behavior_items[indices],
            behavior_categories=self.behavior_categories[indices],
            behavior_dense=self.behavior_dense[indices],
            behavior_mask=self.behavior_mask[indices],
            target_item=self.target_item[indices],
            target_category=self.target_category[indices],
            target_dense=self.target_dense[indices],
            query=self.query[indices],
            query_category=self.query_category[indices],
            other_features=self.other_features[indices],
            label=self.label[indices],
            session_id=self.session_id[indices],
            user_id=self.user_id[indices],
            meta=self.meta,
        )

    def batch_at(self, indices: np.ndarray) -> Batch:
        """Materialize a batch dict for the given row indices."""
        return {
            "behavior_items": self.behavior_items[indices],
            "behavior_categories": self.behavior_categories[indices],
            "behavior_dense": self.behavior_dense[indices],
            "behavior_mask": self.behavior_mask[indices],
            "target_item": self.target_item[indices],
            "target_category": self.target_category[indices],
            "target_dense": self.target_dense[indices],
            "query": self.query[indices],
            "query_category": self.query_category[indices],
            "other_features": self.other_features[indices],
            "label": self.label[indices],
            "session_id": self.session_id[indices],
            "user_id": self.user_id[indices],
        }

    # ------------------------------------------------------------------
    # summary statistics (Table I)
    # ------------------------------------------------------------------
    def num_sessions(self) -> int:
        return int(np.unique(self.session_id).size)

    def num_users(self) -> int:
        return int(np.unique(self.user_id).size)

    def num_queries(self) -> int:
        present = self.query[self.query > 0]
        return int(np.unique(present).size)

    def positive_count(self) -> int:
        return int(self.label.sum())

    def negative_count(self) -> int:
        return int(len(self) - self.label.sum())

    def pos_neg_ratio(self) -> float:
        """Negatives per positive (Table I reports "1 : <this>")."""
        positives = self.positive_count()
        if positives == 0:
            return float("inf")
        return self.negative_count() / positives

    def examples_per_session(self) -> float:
        sessions = self.num_sessions()
        return len(self) / sessions if sessions else 0.0

    def behavior_lengths(self) -> np.ndarray:
        """Valid behaviour-sequence length per impression."""
        return self.behavior_mask.sum(axis=1).astype(np.int64)


def iterate_batches(
    dataset: RankingDataset,
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
    drop_last: bool = False,
) -> Iterator[Batch]:
    """Yield mini-batches; shuffles when an ``rng`` is supplied.

    ``drop_last`` discards a trailing partial batch — used in training so the
    in-batch negative sampling of the contrastive loss always has enough
    rows.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    order = np.arange(len(dataset))
    if rng is not None:
        rng.shuffle(order)
    for start in range(0, len(order), batch_size):
        chunk = order[start : start + batch_size]
        if drop_last and len(chunk) < batch_size:
            return
        yield dataset.batch_at(chunk)
